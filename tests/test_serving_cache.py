"""Cache-correctness property tests for the serving layer.

Two properties over seeded random delta streams:

* **Snapshot fidelity** — for every generation some session still pins,
  every cached answer equals a from-scratch recomputation on a shadow
  graph captured at that generation (``graph.copy()`` per publish —
  affordable at test scale, which is exactly why the serving layer
  itself does not do it).
* **Invalidation is delta-driven, not wholesale** — a batch invalidates
  only the views its routed sub-delta touches: entries for skipped
  views survive (subsequent reads are cache *hits*, observable in
  :meth:`Repository.cache_stats`), while routed views re-miss exactly
  once at the new version.
"""

import random

import pytest

from repro import Delta, DiGraph, Engine, Repository, delete, insert
from repro.iso import ISOIndex, Pattern, vf2_matches
from repro.kws import KWSIndex, KWSQuery, batch_kws
from repro.rpq import RPQIndex, matches_only
from repro.scc import SCCIndex, tarjan_scc

STREAMS = 6
STEPS = 16
LABELS = ["a", "b", "c", "d"]

KWS_QUERY = KWSQuery(("a", "b"), bound=2)
RPQ_QUERY = "a . (b + c)* . c"
ISO_PATTERN = Pattern.from_edges({0: "a", 1: "b"}, [(0, 1)])

SURFACE = (
    ("kws", "roots"),
    ("rpq", "matches"),
    ("scc", "components"),
    ("iso", "matches"),
)


def four_view_engine(graph):
    engine = Engine(graph)
    engine.register("kws", lambda g, m: KWSIndex(g, KWS_QUERY, meter=m))
    engine.register("rpq", lambda g, m: RPQIndex(g, RPQ_QUERY, meter=m))
    engine.register("scc", lambda g, m: SCCIndex(g, meter=m))
    engine.register("iso", lambda g, m: ISOIndex(g, ISO_PATTERN, meter=m))
    return engine


def scratch_answers(graph):
    return {
        ("kws", "roots"): frozenset(batch_kws(graph, KWS_QUERY)),
        ("rpq", "matches"): frozenset(matches_only(graph, RPQ_QUERY)),
        ("scc", "components"): frozenset(tarjan_scc(graph).partition()),
        ("iso", "matches"): frozenset(vf2_matches(graph, ISO_PATTERN)),
    }


def random_graph(rng):
    size = rng.randint(5, 8)
    graph = DiGraph(labels={node: rng.choice(LABELS) for node in range(size)})
    pairs = [(s, t) for s in range(size) for t in range(size) if s != t]
    for edge in rng.sample(pairs, k=min(len(pairs), 2 * size)):
        graph.add_edge(*edge)
    return graph


def random_batch(rng, graph, next_node):
    edges = list(graph.edges())
    nodes = list(graph.nodes())
    non_edges = [
        (s, t)
        for s in nodes
        for t in nodes
        if s != t and not graph.has_edge(s, t)
    ]
    updates = []
    for edge in rng.sample(edges, k=min(len(edges), rng.randint(0, 2))):
        updates.append(delete(*edge))
    for edge in rng.sample(non_edges, k=min(len(non_edges), rng.randint(0, 3))):
        updates.append(insert(*edge))
    if rng.random() < 0.3 and nodes:
        fresh = next_node[0]
        next_node[0] += 1
        updates.append(
            insert(rng.choice(nodes), fresh, target_label=rng.choice(LABELS))
        )
    rng.shuffle(updates)
    return Delta(updates)


@pytest.mark.parametrize(
    "seed", range(STREAMS), ids=[f"stream-{seed}" for seed in range(STREAMS)]
)
def test_cached_answers_equal_fresh_recompute_at_pinned_generation(seed):
    rng = random.Random(0xCAC4E + seed)
    graph = random_graph(rng)
    repo = Repository(four_view_engine(graph), max_sessions=STEPS + 2)
    # generation -> an independent copy of the graph at that generation.
    snapshots = {0: graph.copy()}
    pinned = []  # (session, generation), held open across later batches
    next_node = [5000 + seed * 100]

    for _ in range(STEPS):
        if rng.random() < 0.4 or not pinned:
            pinned.append((repo.session(), repo.generation))
        batch = random_batch(rng, repo.engine.graph, next_node)
        if not batch:
            continue
        repo.apply(batch)
        shadow = snapshots[repo.generation - 1].copy()
        batch.apply_to(shadow)
        snapshots[repo.generation] = shadow
        # Mid-stream: every held session answers at its own generation.
        if rng.random() < 0.5:
            session, generation = rng.choice(pinned)
            expected = scratch_answers(snapshots[generation])
            view, query = rng.choice(SURFACE)
            assert session.read(view, query) == expected[(view, query)]

    # Final sweep: read the whole surface through every pinned session
    # twice — first read may compute/freeze, second must hit the cache —
    # and both must equal from-scratch recomputation at that generation.
    for session, generation in pinned:
        expected = scratch_answers(snapshots[generation])
        for view, query in SURFACE:
            first = session.read(view, query)
            before = repo.cache_stats()
            second = session.read(view, query)
            after = repo.cache_stats()
            assert first == second == expected[(view, query)]
            assert after.hits == before.hits + 1  # second read is a hit
    latest = scratch_answers(snapshots[repo.generation])
    for view, query in SURFACE:
        assert repo.read_latest(view, query) == latest[(view, query)]
    for session, _ in pinned:
        session.close()
    assert repo.poisoned is None


def test_entries_untouched_by_routed_subdelta_survive_invalidation():
    """A batch routed away from a view leaves that view's cache entries
    live (hits keep landing, no recompute); the views the sub-delta
    reaches re-miss exactly at the new version."""
    graph = DiGraph(
        labels={1: "a", 2: "b", 3: "c", 4: "c"}, edges=[(1, 2)]
    )
    repo = Repository(four_view_engine(graph))
    baseline = {
        (view, query): repo.read_latest(view, query) for view, query in SURFACE
    }
    warmed = repo.cache_stats()
    assert warmed.misses == len(SURFACE)

    # c→c among existing nodes: no keyword can reach through it and the
    # ISO pattern needs a→b, so kws and iso are routed *away*; scc
    # subscribes to everything and rpq's automaton consumes b/c edges.
    report = repo.apply([insert(3, 4)])
    assert not report.views["kws"].changed
    assert not report.views["iso"].changed
    assert report.views["scc"].changed

    for view, query in (("kws", "roots"), ("iso", "matches")):
        before = repo.cache_stats()
        assert repo.read_latest(view, query) == baseline[(view, query)]
        after = repo.cache_stats()
        assert after.hits == before.hits + 1, (
            f"{view} entry did not survive a batch routed away from it"
        )
        assert after.misses == before.misses
    # The changed view re-misses once at its new version, then hits.
    before = repo.cache_stats()
    repo.read_latest("scc", "components")
    assert repo.cache_stats().misses == before.misses + 1
    repo.read_latest("scc", "components")
    assert repo.cache_stats().misses == before.misses + 1


def test_invalidation_counts_track_routed_views_only():
    graph = DiGraph(labels={1: "a", 2: "b", 3: "c", 4: "c"}, edges=[(1, 2)])
    repo = Repository(four_view_engine(graph))
    report = repo.apply([insert(3, 4)])
    routed = sum(1 for view in report.views.values() if view.changed)
    assert 0 < routed < len(SURFACE)  # genuinely partial routing
    assert repo.cache_stats().invalidations == routed

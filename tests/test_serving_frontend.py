"""Wire tests for the asyncio front door: protocol ops, session
ownership per connection, and load-shedding with retry-after.

Each test drives a real TCP socket on a loopback ephemeral port via
``asyncio.run`` — no third-party async test plugin needed."""

import asyncio
import json
import threading

from repro import DiGraph, Engine, Repository
from repro.kws import KWSIndex, KWSQuery
from repro.scc import SCCIndex
from repro.serving import ServingFrontend, jsonable


def make_repo(**kwargs):
    engine = Engine(
        DiGraph(labels={1: "a", 2: "b", 3: "c"}, edges=[(1, 2), (2, 3)])
    )
    engine.register("scc", lambda g, m: SCCIndex(g, meter=m))
    engine.register(
        "kws", lambda g, m: KWSIndex(g, KWSQuery(("a", "b"), 2), meter=m)
    )
    return Repository(engine, **kwargs)


class Client:
    """One NDJSON connection: ``await client.rpc({...})`` round-trips."""

    def __init__(self, port):
        self.port = port
        self.reader = None
        self.writer = None

    async def __aenter__(self):
        self.reader, self.writer = await asyncio.open_connection(
            "127.0.0.1", self.port
        )
        return self

    async def __aexit__(self, *exc_info):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def send(self, request):
        self.writer.write(json.dumps(request).encode() + b"\n")
        await self.writer.drain()

    async def recv(self):
        return json.loads(await self.reader.readline())

    async def rpc(self, request):
        await self.send(request)
        return await self.recv()


def test_protocol_roundtrip():
    repo = make_repo()

    async def scenario():
        async with ServingFrontend(repo, port=0) as frontend:
            async with Client(frontend.port) as client:
                opened = await client.rpc({"op": "open"})
                assert opened["ok"] and opened["generation"] == 0
                session = opened["session"]

                read = await client.rpc(
                    {"op": "read", "session": session, "id": 42,
                     "view": "scc", "query": "components"}
                )
                assert read == {
                    "ok": True, "generation": 0, "id": 42,
                    "answer": [[1], [2], [3]],
                }

                applied = await client.rpc(
                    {"op": "apply", "updates": [["insert", 3, 1]]}
                )
                assert applied["ok"] and applied["generation"] == 1
                assert "scc" in applied["routed"]

                # The pinned session still answers at generation 0...
                again = await client.rpc(
                    {"op": "read", "session": session,
                     "view": "scc", "query": "components"}
                )
                assert again["answer"] == [[1], [2], [3]]
                # ...while a session-less read sees the new generation.
                latest = await client.rpc(
                    {"op": "read", "view": "scc", "query": "components"}
                )
                assert latest["generation"] == 1
                assert latest["answer"] == [[1, 2, 3]]

                assert (await client.rpc({"op": "close",
                                          "session": session}))["ok"]
                stats = await client.rpc({"op": "stats"})
                assert stats["stats"]["generation"] == 1
                assert stats["stats"]["frontend"]["max_inflight"] == 128

    asyncio.run(scenario())
    assert repo.open_sessions == 0


def test_errors_are_structured_not_fatal():
    repo = make_repo()

    async def scenario():
        async with ServingFrontend(repo, port=0) as frontend:
            async with Client(frontend.port) as client:
                bad = await client.rpc({"op": "read", "view": "nope",
                                        "query": "x"})
                assert bad == {"ok": False, "error": "unknown_query",
                               "message": bad["message"]}
                assert (await client.rpc({"op": "bogus"}))["error"] == (
                    "bad_request"
                )
                assert (await client.rpc({"not": "a request"}))["error"] == (
                    "bad_request"
                )
                assert (await client.rpc(
                    {"op": "apply", "updates": [["noop", 1]]}
                ))["error"] == "bad_request"
                assert (await client.rpc(
                    {"op": "read", "session": 99,
                     "view": "scc", "query": "components"}
                ))["error"] == "session_closed"
                # An invalid batch surfaces as serving_error, and the
                # connection keeps working afterwards.
                invalid = await client.rpc(
                    {"op": "apply", "updates": [["delete", 9, 9]]}
                )
                assert invalid["error"] == "serving_error"
                assert (await client.rpc({"op": "stats"}))["ok"]

    asyncio.run(scenario())


def test_disconnect_releases_the_connections_sessions():
    repo = make_repo(max_sessions=2)

    async def scenario():
        async with ServingFrontend(repo, port=0) as frontend:
            async with Client(frontend.port) as client:
                assert (await client.rpc({"op": "open"}))["ok"]
                assert (await client.rpc({"op": "open"}))["ok"]
                assert repo.open_sessions == 2
            # Client gone: its pool slots must come back without
            # waiting for any lease.
            for _ in range(50):
                if repo.open_sessions == 0:
                    break
                await asyncio.sleep(0.01)
            assert repo.open_sessions == 0
            async with Client(frontend.port) as client:
                assert (await client.rpc({"op": "open"}))["ok"]

    asyncio.run(scenario())


def test_stop_waits_for_connection_cleanup():
    """``stop()``'s contract: it disconnects still-open clients and
    returns only after their sessions are released — no polling."""
    repo = make_repo()

    async def scenario():
        frontend = ServingFrontend(repo, port=0)
        await frontend.start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", frontend.port
        )
        writer.write(json.dumps({"op": "open"}).encode() + b"\n")
        await writer.drain()
        assert json.loads(await reader.readline())["ok"]
        assert repo.open_sessions == 1
        await frontend.stop()  # client never disconnected
        assert repo.open_sessions == 0
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    asyncio.run(scenario())


def test_overload_sheds_with_retry_after():
    repo = make_repo()
    release = threading.Event()
    started = threading.Event()

    def slow_query(view):
        started.set()
        release.wait(10)
        return view.components()

    repo.register_query("scc", "slow", slow_query)

    async def scenario():
        async with ServingFrontend(repo, port=0, max_inflight=1,
                                   retry_after=0.25) as frontend:
            async with Client(frontend.port) as stuck, \
                    Client(frontend.port) as shed:
                await stuck.send({"op": "read", "view": "scc",
                                  "query": "slow"})
                # The slow read is genuinely executing (not merely
                # buffered) before the second request arrives.
                await asyncio.get_running_loop().run_in_executor(
                    None, started.wait, 10
                )
                refused = await shed.rpc({"op": "read", "view": "scc",
                                          "query": "components"})
                assert refused["ok"] is False
                assert refused["error"] == "overloaded"
                assert refused["retry_after"] == 0.25
                assert frontend.shed_count == 1

                release.set()
                answer = await stuck.recv()
                assert answer["ok"] and answer["answer"] == [[1], [2], [3]]
                # Capacity is back: the shed client's retry succeeds.
                retried = await shed.rpc({"op": "read", "view": "scc",
                                          "query": "components"})
                assert retried["ok"]

    asyncio.run(scenario())


def test_jsonable_is_deterministic_over_frozen_answers():
    nested = frozenset({frozenset({3, 1}), frozenset({2})})
    assert jsonable(nested) == [[1, 3], [2]]
    assert jsonable((1, (2, 3))) == [1, [2, 3]]
    assert jsonable({"k": frozenset({2, 1})}) == {"k": [1, 2]}

"""Persistence tests: delta-log durability semantics, per-view
snapshot/restore equivalence, full SnapshotStore recovery (snapshot +
replayed tail equals the uninterrupted session), per-view replay cursors
and ``%graphdiff`` incremental graph sections (format v2, with v1
read-compat), relevance-aware log compaction equivalence, engine view
lifecycle (deregister / lazy build), and the save→load→replay property
against from-scratch recomputation after randomized batches (mirroring
``test_engine.py``'s consistency harness)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Delta, DiGraph, Engine, EngineError, delete, insert
from repro.iso import ISOIndex, Pattern, vf2_matches
from repro.kws import KWSIndex, KWSQuery, batch_kws
from repro.persist import (
    DeltaLog,
    PersistFormatError,
    SnapshotStore,
    load_session,
    save_session,
    split_snapshot_sections,
)
from repro.rpq import RPQIndex, matches_only, rpq_nfa
from repro.scc import SCCIndex, tarjan_scc

LABELS = ["a", "b", "c"]
KWS_QUERY = KWSQuery(("a", "b"), bound=2)
RPQ_QUERY = "a . (b + c)* . c"
ISO_PATTERN = Pattern.from_edges({0: "a", 1: "b"}, [(0, 1)])


def sample_graph() -> DiGraph:
    return DiGraph(
        labels={1: "a", 2: "b", 3: "c", 4: "a", 5: "b"},
        edges=[(1, 2), (2, 3), (3, 1), (4, 5)],
    )


def four_view_engine(graph: DiGraph) -> Engine:
    engine = Engine(graph)
    engine.register("kws", lambda g, m: KWSIndex(g, KWS_QUERY, meter=m))
    engine.register("rpq", lambda g, m: RPQIndex(g, RPQ_QUERY, meter=m))
    engine.register("scc", lambda g, m: SCCIndex(g, meter=m))
    engine.register("iso", lambda g, m: ISOIndex(g, ISO_PATTERN, meter=m))
    return engine


def assert_views_match_recompute(engine: Engine) -> None:
    graph = engine.graph
    assert engine["kws"].roots() == set(batch_kws(graph, KWS_QUERY))
    assert engine["rpq"].matches == matches_only(graph, RPQ_QUERY)
    assert engine["scc"].components() == tarjan_scc(graph).partition()
    assert engine["iso"].matches == vf2_matches(graph, ISO_PATTERN)
    engine["scc"].check_consistency()
    engine["iso"].check_consistency()


def assert_sessions_equal(recovered: Engine, reference: Engine) -> None:
    """Graph, view outputs, and query answers all agree."""
    assert recovered.graph == reference.graph
    assert set(recovered.names()) == set(reference.names())
    assert recovered["kws"].roots() == reference["kws"].roots()
    assert recovered["kws"].profile() == reference["kws"].profile()
    assert recovered["rpq"].matches == reference["rpq"].matches
    assert recovered["scc"].components() == reference["scc"].components()
    assert recovered["iso"].matches == reference["iso"].matches


# ----------------------------------------------------------------------
# DeltaLog
# ----------------------------------------------------------------------


class TestDeltaLog:
    def test_append_and_read_back(self, tmp_path):
        log = DeltaLog(tmp_path / "deltas.log")
        first = Delta([insert(1, 2, "a", "b"), delete(3, 4)])
        second = Delta([insert("spaced node", 'quo"ted', "x y", "")])
        assert log.append(first) == 1
        assert log.append(second) == 2
        entries = log.entries()
        assert [entry.seq for entry in entries] == [1, 2]
        assert entries[0].delta.updates == first.updates
        assert entries[1].delta.updates == second.updates

    def test_after_filter_and_last_seq(self, tmp_path):
        log = DeltaLog(tmp_path / "deltas.log")
        assert log.last_seq() == 0
        for k in range(3):
            log.append(Delta([insert(k, k + 1)]))
        assert log.last_seq() == 3
        assert [entry.seq for entry in log.entries(after=2)] == [3]

    def test_seq_survives_reopen(self, tmp_path):
        path = tmp_path / "deltas.log"
        DeltaLog(path).append(Delta([insert(1, 2)]))
        assert DeltaLog(path).append(Delta([insert(2, 3)])) == 2

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "deltas.log"
        log = DeltaLog(path)
        log.append(Delta([insert(1, 2)]))
        with open(path, "a", encoding="utf-8") as stream:
            stream.write("%batch 2\n+ 5 6")  # crash: no %commit, no newline
        assert [entry.seq for entry in DeltaLog(path).entries()] == [1]

    @pytest.mark.parametrize(
        "torn", ["%bat", "%batch", "%comm", '%batch "'],
        ids=["directive-prefix", "seq-missing", "commit-prefix", "mid-token"],
    )
    def test_torn_directive_tail_is_dropped(self, tmp_path, torn):
        """A crash can tear the framing directives themselves; every torn
        shape at EOF must be recoverable, not fatal."""
        path = tmp_path / "deltas.log"
        DeltaLog(path).append(Delta([insert(1, 2)]))
        with open(path, "a", encoding="utf-8") as stream:
            stream.write(torn)
        assert [entry.seq for entry in DeltaLog(path).entries()] == [1]

    def test_unserializable_batch_leaves_no_torn_entry(self, tmp_path):
        from repro.graph.io_tokens import SerializationError

        log = DeltaLog(tmp_path / "deltas.log")
        log.append(Delta([insert(1, 2)]))
        with pytest.raises(SerializationError):
            log.append(Delta([insert(3, 4, source_label=("tu", "ple"))]))
        assert [entry.seq for entry in DeltaLog(log.path).entries()] == [1]

    def test_append_after_torn_tail_does_not_reuse_seq(self, tmp_path):
        path = tmp_path / "deltas.log"
        DeltaLog(path).append(Delta([insert(1, 2)]))
        with open(path, "a", encoding="utf-8") as stream:
            stream.write("%batch 2\n")  # torn entry claims seq 2
        fresh = DeltaLog(path)
        assert fresh.append(Delta([insert(2, 3)])) == 3
        assert [entry.seq for entry in fresh.entries()] == [1, 3]

    def test_corrupt_committed_entry_raises(self, tmp_path):
        """A %commit whose records did not parse is corruption of
        acknowledged data, not a torn fragment — it must raise."""
        path = tmp_path / "deltas.log"
        path.write_text(
            "%batch 1\n? 1 2\n%commit\n%batch 2\n+ 2 3\n%commit\n",
            encoding="utf-8",
        )
        with pytest.raises(PersistFormatError, match="corrupt committed data"):
            DeltaLog(path).entries()

    def test_mid_file_torn_entry_is_skipped(self, tmp_path):
        """A torn entry prefix that a later (healed) append wrote past —
        the realistic mid-file crash residue — is skipped, and the
        committed entries around it survive."""
        path = tmp_path / "deltas.log"
        log = DeltaLog(path)
        log.append(Delta([insert(1, 2)]))
        with open(path, "a", encoding="utf-8") as stream:
            stream.write("%batch 2\n- 1 ")  # crash mid-record, no commit
        fresh = DeltaLog(path)
        assert fresh.append(Delta([insert(5, 6)])) == 3
        assert [entry.seq for entry in fresh.entries()] == [1, 3]

    def test_non_increasing_seq_raises(self, tmp_path):
        path = tmp_path / "deltas.log"
        path.write_text(
            "%batch 2\n%commit\n%batch 1\n%commit\n", encoding="utf-8"
        )
        with pytest.raises(PersistFormatError, match="does not increase"):
            DeltaLog(path).entries()

    def test_compact_drops_covered_entries(self, tmp_path):
        log = DeltaLog(tmp_path / "deltas.log")
        for k in range(4):
            log.append(Delta([insert(k, k + 1)]))
        assert log.compact(after=2) == 2
        assert [entry.seq for entry in log.entries()] == [3, 4]
        # seqs keep increasing after compaction
        assert DeltaLog(log.path).append(Delta([insert(9, 10)])) == 5

    def test_compact_floor_survives_fresh_process(self, tmp_path):
        """A fully compacted (empty) log must not reset seq allocation
        below the snapshot stamp — later appends would be invisible to
        the next recovery's entries(after=stamp)."""
        log = DeltaLog(tmp_path / "deltas.log")
        log.append(Delta([insert(1, 2)]))
        log.append(Delta([insert(2, 3)]))
        log.compact(after=2)  # snapshot covered everything
        fresh = DeltaLog(log.path)  # a new process
        assert fresh.last_seq() == 2
        assert fresh.append(Delta([insert(3, 4)])) == 3
        assert [entry.seq for entry in fresh.entries(after=2)] == [3]

    def test_append_heals_missing_trailing_newline(self, tmp_path):
        """A torn final line without a newline must not glue onto the
        next entry's %batch directive."""
        path = tmp_path / "deltas.log"
        log = DeltaLog(path)
        log.append(Delta([insert(1, 2)]))
        with open(path, "a", encoding="utf-8") as stream:
            stream.write("%batch 2\n- 1 ")  # crash mid-record, no newline
        fresh = DeltaLog(path)
        assert fresh.append(Delta([insert(5, 6)])) == 3
        assert [entry.seq for entry in fresh.entries()] == [1, 3]

    def test_skipped_entries_are_not_parsed(self, tmp_path):
        """entries(after=N) must not tokenize records of covered entries
        (recovery reads are tail-sized)."""
        import repro.persist.deltalog as deltalog_module

        log = DeltaLog(tmp_path / "deltas.log")
        for k in range(3):
            log.append(Delta([insert(k, k + 1)]))
        calls = []
        original = deltalog_module.update_from_fields
        deltalog_module.update_from_fields = lambda fields: (
            calls.append(1),
            original(fields),
        )[1]
        try:
            tail = log.entries(after=2)
        finally:
            deltalog_module.update_from_fields = original
        assert [entry.seq for entry in tail] == [3]
        assert len(calls) == 1  # only the tail entry's single record


# ----------------------------------------------------------------------
# Per-view snapshot/restore
# ----------------------------------------------------------------------


class TestViewSnapshots:
    """restore(graph, index.snapshot()) must be behaviorally identical to
    the index itself — same answers now, same ΔO under further updates."""

    FOLLOW_UP = Delta([delete(1, 2), insert(5, 3), insert(2, 4)])

    def _roundtrip(self, make_index):
        graph = sample_graph()
        original = make_index(graph)
        twin_graph = graph.copy()
        restored = type(original).restore(twin_graph, original.snapshot())
        first = original.apply(self.FOLLOW_UP)
        second = restored.apply(self.FOLLOW_UP)
        assert first == second
        return original, restored

    def test_kws(self):
        original, restored = self._roundtrip(lambda g: KWSIndex(g, KWS_QUERY))
        assert restored.profile() == original.profile()
        assert restored.roots() == set(batch_kws(restored.graph, KWS_QUERY))

    def test_rpq(self):
        original, restored = self._roundtrip(lambda g: RPQIndex(g, RPQ_QUERY))
        assert restored.matches == matches_only(restored.graph, RPQ_QUERY)
        # the derived cpre/mpre must equal the incrementally maintained ones
        for source in original.markings.sources():
            marks = original.markings.get(source)
            mirror_marks = restored.markings.get(source)
            for node, states in marks.by_node.items():
                for state, entry in states.items():
                    mirror = mirror_marks.get(node, state)
                    assert mirror is not None
                    assert mirror.dist == entry.dist
                    assert mirror.cpre == entry.cpre
                    assert mirror.mpre == entry.mpre

    def test_scc(self):
        original, restored = self._roundtrip(lambda g: SCCIndex(g))
        assert restored.components() == tarjan_scc(restored.graph).partition()
        restored.check_consistency()

    def test_iso(self):
        original, restored = self._roundtrip(lambda g: ISOIndex(g, ISO_PATTERN))
        assert restored.pattern.shape() == original.pattern.shape()
        restored.check_consistency()

    def test_wrong_kind_rejected(self):
        graph = sample_graph()
        state = SCCIndex(graph).snapshot()
        with pytest.raises(ValueError, match="expected a 'kws' snapshot"):
            KWSIndex.restore(graph, state)


# ----------------------------------------------------------------------
# SnapshotStore recovery
# ----------------------------------------------------------------------

PRE_BATCHES = [
    Delta([delete(3, 1), insert(5, 4)]),
    Delta([insert(3, 5, "c", "b")]),
]
POST_BATCHES = [
    Delta([delete(1, 2)]),
    Delta([insert(6, 1, "b", "a"), delete(4, 5)]),
]


class TestSnapshotStore:
    def test_recovery_equals_uninterrupted_session(self, tmp_path):
        reference = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path / "store")
        store.attach(reference)
        for batch in PRE_BATCHES:
            reference.apply(batch)
        store.save(reference)
        for batch in POST_BATCHES:
            reference.apply(batch)  # journaled tail, not snapshotted

        recovered = store.load()  # the process was "discarded"
        assert_sessions_equal(recovered, reference)
        assert_views_match_recompute(recovered)

        # the recovered session keeps evolving identically
        follow_up = Delta([insert(4, 2), delete(2, 3)])
        assert (
            recovered.apply(follow_up).output("scc")
            == reference.apply(follow_up).output("scc")
        )
        assert_sessions_equal(recovered, reference)

    def test_load_without_tail(self, tmp_path):
        reference = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path / "store")
        store.save(reference)
        assert_sessions_equal(store.load(), reference)

    def test_recovered_session_journals_and_chains(self, tmp_path):
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path / "store")
        store.save(engine)
        store.attach(engine)
        engine.apply(PRE_BATCHES[0])

        second = store.load()  # journal re-attached by default
        second.apply(PRE_BATCHES[1])
        third = store.load()
        engine.apply(PRE_BATCHES[1])
        assert_sessions_equal(third, engine)

    def test_save_compact_drops_replayed_tail(self, tmp_path):
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path / "store")
        store.attach(engine)
        for batch in PRE_BATCHES:
            engine.apply(batch)
        store.save(engine, compact=True)
        assert store.log.entries() == []
        engine.apply(POST_BATCHES[0])
        assert_sessions_equal(store.load(), engine)

    def test_rollback_is_journaled(self, tmp_path):
        reference = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path / "store")
        store.save(reference)
        store.attach(reference)
        mark = reference.checkpoint()
        for batch in PRE_BATCHES:
            reference.apply(batch)
        reference.rollback(mark)
        recovered = store.load()
        assert_sessions_equal(recovered, reference)

    def test_lazy_views_are_materialized_by_save(self, tmp_path):
        engine = Engine(sample_graph())
        engine.register(
            "scc", lambda g, m: SCCIndex(g, meter=m), build="on_first_apply"
        )
        store = SnapshotStore(tmp_path / "store")
        store.save(engine)
        recovered = store.load()
        assert recovered["scc"].components() == engine["scc"].components()

    def test_missing_snapshot_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no snapshot"):
            SnapshotStore(tmp_path / "store").load()

    def test_version_mismatch_raises(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        store.snapshot_path.write_text(
            "%repro-snapshot 99\n%end\n", encoding="utf-8"
        )
        with pytest.raises(PersistFormatError, match="unsupported snapshot version"):
            store.load()

    def test_truncated_snapshot_raises(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        store.snapshot_path.write_text(
            "%repro-snapshot 1\n%section graph\nn 1 a\n", encoding="utf-8"
        )
        with pytest.raises(PersistFormatError, match="truncated snapshot"):
            store.load()

    def test_unknown_view_kind_raises(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        store.snapshot_path.write_text(
            "%repro-snapshot 1\n%section view w weird\n%config\n%end\n",
            encoding="utf-8",
        )
        with pytest.raises(PersistFormatError, match="unknown view kind"):
            store.load()

    def test_directive_like_labels_round_trip(self, tmp_path):
        """A node id or label starting with '%' must not masquerade as a
        directive line (the writer quotes it)."""
        graph = DiGraph(labels={"%cash": "%end", 2: "b"}, edges=[("%cash", 2)])
        engine = Engine(graph)
        engine.register("kws", lambda g, m: KWSIndex(g, KWSQuery(("%end", "b"), 2), meter=m))
        engine.register("scc", lambda g, m: SCCIndex(g, meter=m))
        store = SnapshotStore(tmp_path / "store")
        store.save(engine)
        recovered = store.load()
        assert recovered.graph == engine.graph
        assert recovered["kws"].roots() == engine["kws"].roots()

    def test_unjournalable_batch_fails_before_mutation(self, tmp_path):
        """Write-ahead ordering: a batch the journal cannot serialize is
        rejected with graph, views, and log all untouched."""
        from repro.graph.io_tokens import SerializationError

        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path / "store")
        store.save(engine)
        store.attach(engine)
        edges_before = set(engine.graph.edges())
        roots_before = set(engine["kws"].roots())
        with pytest.raises(SerializationError):
            engine.apply(Delta([insert(9, 10, source_label=("tu", "ple"))]))
        assert set(engine.graph.edges()) == edges_before
        assert set(engine["kws"].roots()) == roots_before
        assert store.log.entries() == []
        engine.apply(PRE_BATCHES[0])  # journaling still works afterwards
        assert_sessions_equal(store.load(), engine)

    def test_convenience_wrappers(self, tmp_path):
        engine = four_view_engine(sample_graph())
        save_session(engine, tmp_path / "store")
        engine.apply(PRE_BATCHES[0])  # journaled by save_session's attach
        assert_sessions_equal(load_session(tmp_path / "store"), engine)


# ----------------------------------------------------------------------
# Per-view replay cursors, %graphdiff, and compaction equivalences
# ----------------------------------------------------------------------


def canonical_save(engine: Engine, root) -> bytes:
    """A canonical full snapshot of ``engine``: fresh store, no log, so
    the bytes depend only on view state (canonical sorted records) and
    graph content."""
    probe = SnapshotStore(root)
    probe.save(engine)
    return probe.snapshot_path.read_bytes()


class TestReplayCursors:
    def test_fresh_sections_record_the_log_stamp(self, tmp_path):
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path / "store")
        store.attach(engine)
        engine.apply(PRE_BATCHES[0])
        store.save(engine)
        with open(store.snapshot_path, encoding="utf-8") as stream:
            sections = split_snapshot_sections(stream)
        assert sections.last_seq == 1
        assert {s.cursor for s in sections.views.values()} == {1}

    def test_carried_sections_keep_their_serialization_cursor(self, tmp_path):
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path / "store")
        store.attach(engine)
        store.save(engine)
        engine.apply(Delta([delete(2, 3)]))  # b→c edge: no a→b match dies
        store.save(engine, incremental=True)
        with open(store.snapshot_path, encoding="utf-8") as stream:
            sections = split_snapshot_sections(stream)
        assert sections.last_seq == 1
        assert sections.views["iso"].cursor == 0  # carried from the first save
        assert sections.views["scc"].cursor == 1  # re-serialized fresh

    def test_cursor_replay_equals_full_tail_broadcast_replay(self, tmp_path):
        """Per-view cursor-driven routed replay and full-tail broadcast
        replay must recover byte-identical sessions (canonical
        snapshots)."""
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path / "store")
        store.attach(engine)
        engine.apply(PRE_BATCHES[0])
        store.save(engine, incremental=True)
        for batch in POST_BATCHES:
            engine.apply(batch)  # the replayed tail
        routed = store.load(attach_journal=False)
        broadcast = store.load(attach_journal=False, routed=False)
        assert_sessions_equal(routed, engine)
        assert_sessions_equal(broadcast, engine)
        assert canonical_save(routed, tmp_path / "probe-r") == canonical_save(
            broadcast, tmp_path / "probe-b"
        )

    def test_divergent_cursor_file_loads_and_lagging_views_catch_up(
        self, tmp_path
    ):
        """An incremental save after batches irrelevant to some views
        leaves those views' cursors behind the graph stamp; load must
        deliver the lagging window through the relevance filters (which
        route it empty) and still recover the exact session."""
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path / "store")
        store.attach(engine)
        store.save(engine)
        engine.apply(Delta([delete(2, 3)]))  # iso stays clean
        store.save(engine, incremental=True)
        with open(store.snapshot_path, encoding="utf-8") as stream:
            sections = split_snapshot_sections(stream)
        assert sections.views["iso"].cursor < sections.last_seq
        recovered = store.load(attach_journal=False)
        assert_sessions_equal(recovered, engine)
        assert_views_match_recompute(recovered)

    def test_inconsistent_cursor_raises(self, tmp_path):
        """A file whose cursor claims a view is stale across entries its
        filter *wants* is a snapshot/log contradiction — load must raise,
        not corrupt the view."""
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path / "store")
        store.attach(engine)
        engine.apply(Delta([insert(5, 1)]))  # b→a: relevant to scc (all)
        store.save(engine)
        text = store.snapshot_path.read_text(encoding="utf-8")
        assert "%section view scc scc 1\n" in text
        store.snapshot_path.write_text(
            text.replace("%section view scc scc 1\n", "%section view scc scc 0\n"),
            encoding="utf-8",
        )
        with pytest.raises(PersistFormatError, match="disagree"):
            store.load()

    def test_negative_cursor_rejected(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        store.snapshot_path.write_text(
            "%repro-snapshot 2\n%meta last-seq 0\n%section graph\n"
            "%section view w scc -1\n%config 1\n%end\n",
            encoding="utf-8",
        )
        with pytest.raises(PersistFormatError, match="cursor"):
            store.load()


class TestGraphDiff:
    def test_incremental_save_appends_a_graphdiff_chunk(self, tmp_path):
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path / "store")
        store.attach(engine)
        store.save(engine)
        engine.apply(PRE_BATCHES[0])
        store.save(engine, incremental=True)
        text = store.snapshot_path.read_text(encoding="utf-8")
        assert text.count("%graphdiff") == 1
        recovered = store.load(attach_journal=False)
        assert recovered.graph == engine.graph
        assert_sessions_equal(recovered, engine)

    def test_new_node_whose_edge_was_deleted_survives_the_diff(self, tmp_path):
        """The net delta alone would lose a node introduced by an insert
        that a later batch deleted; the chunk's ``n`` records must keep
        it (deletion never removes endpoints)."""
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path / "store")
        store.attach(engine)
        store.save(engine)
        engine.apply(Delta([insert(1, 99, "a", "c")]))
        engine.apply(Delta([delete(1, 99)]))
        store.save(engine, incremental=True)
        assert "%graphdiff" in store.snapshot_path.read_text(encoding="utf-8")
        recovered = store.load(attach_journal=False)
        assert recovered.graph.has_node(99)
        assert recovered.graph.label(99) == "c"
        assert recovered.graph == engine.graph

    def test_chunks_consolidate_at_the_limit(self, tmp_path):
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path / "store", graphdiff_limit=2)
        store.attach(engine)
        store.save(engine)
        chunk_counts = []
        for step in range(5):
            engine.apply(Delta([insert(100 + step, 1, "c", "a")]))
            store.save(engine, incremental=True)
            text = store.snapshot_path.read_text(encoding="utf-8")
            chunk_counts.append(text.count("%graphdiff"))
        assert max(chunk_counts) == 2  # never exceeds the limit
        assert 0 in chunk_counts[1:]  # a consolidation produced a fresh base
        recovered = store.load(attach_journal=False)
        assert recovered.graph == engine.graph
        assert_views_match_recompute(recovered)

    def test_rollback_window_diffs_correctly(self, tmp_path):
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path / "store")
        store.attach(engine)
        store.save(engine)
        mark = engine.checkpoint()
        engine.apply(PRE_BATCHES[0])
        engine.apply(PRE_BATCHES[1])
        engine.rollback(mark)
        store.save(engine, incremental=True)
        recovered = store.load(attach_journal=False)
        assert recovered.graph == engine.graph
        assert_sessions_equal(recovered, engine)

    def test_journal_swap_forces_a_full_graph_write(self, tmp_path):
        """Batches journaled elsewhere make the store's log tail an
        incomplete diff source; the epoch tripwire must force a full
        rewrite instead of a wrong diff."""
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path / "store")
        store.attach(engine)
        store.save(engine)
        elsewhere = DeltaLog(tmp_path / "elsewhere.log")
        engine.set_journal(elsewhere)
        engine.apply(PRE_BATCHES[0])  # invisible to store.log
        engine.set_journal(store.log)
        store.save(engine, incremental=True)
        assert "%graphdiff" not in store.snapshot_path.read_text(encoding="utf-8")
        recovered = store.load(attach_journal=False)
        assert recovered.graph == engine.graph

    def test_out_of_band_relabel_forces_a_full_graph_write(self, tmp_path):
        """Regression: a relabel through the public DiGraph API flows
        through no journaled delta, so a log-derived %graphdiff would
        silently drop it — the graph's out-of-band tripwire must force
        a full base rewrite that captures the new label."""
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path / "store")
        store.attach(engine)
        store.save(engine)
        engine.graph.set_label(3, "b")  # no batch can express this
        engine.apply(PRE_BATCHES[0])
        store.save(engine, incremental=True)
        assert "%graphdiff" not in store.snapshot_path.read_text(encoding="utf-8")
        recovered = store.load(attach_journal=False)
        assert recovered.graph.label(3) == "b"
        assert recovered.graph == engine.graph

    def test_v1_snapshot_still_loads(self, tmp_path):
        """v1 read-compat: strip the v2 constructs from a current file
        (downgrade header, drop cursors) and the reader must accept it —
        cursors default to the file's last-seq."""
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path / "store")
        store.attach(engine)
        engine.apply(PRE_BATCHES[0])
        store.save(engine)
        engine.apply(POST_BATCHES[0])  # journaled tail past the snapshot
        from repro.persist import FORMAT_VERSION

        text = store.snapshot_path.read_text(encoding="utf-8")
        downgraded = text.replace(
            f"%repro-snapshot {FORMAT_VERSION}\n", "%repro-snapshot 1\n"
        )
        for name in engine.names():
            kind = {"kws": "kws", "rpq": "rpq", "scc": "scc", "iso": "iso"}[name]
            downgraded = downgraded.replace(
                f"%section view {name} {kind} 1\n",
                f"%section view {name} {kind}\n",
            )
        assert "%repro-snapshot 1" in downgraded
        store.snapshot_path.write_text(downgraded, encoding="utf-8")
        recovered = SnapshotStore(tmp_path / "store").load(attach_journal=False)
        assert_sessions_equal(recovered, engine)
        assert_views_match_recompute(recovered)

    def test_graphdiff_in_v1_file_rejected(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        store.snapshot_path.write_text(
            "%repro-snapshot 1\n%section graph\nn 1 a\n%graphdiff 1\n%end\n",
            encoding="utf-8",
        )
        with pytest.raises(PersistFormatError, match="version-2 construct"):
            store.load()


class TestCompactionEquivalence:
    def test_save_compact_load_equals_save_load(self, tmp_path):
        """save→compact→load ≡ save→load, byte-compared via canonical
        re-saves of the recovered sessions."""
        engine = four_view_engine(sample_graph())
        plain_root = tmp_path / "plain"
        compact_root = tmp_path / "compacted"
        snapshots = {}
        for root, compact in ((plain_root, False), (compact_root, True)):
            twin = four_view_engine(sample_graph())
            store = SnapshotStore(root)
            store.attach(twin)
            for batch in PRE_BATCHES:
                twin.apply(batch)
            store.save(twin, compact=compact)
            for batch in POST_BATCHES:
                twin.apply(batch)
            recovered = store.load(attach_journal=False)
            assert_sessions_equal(recovered, twin)
            snapshots[compact] = canonical_save(
                recovered, tmp_path / f"probe-{compact}"
            )
        assert snapshots[False] == snapshots[True]

    def test_net_cancellation_preserves_recovery(self, tmp_path):
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path / "store")
        store.attach(engine)
        store.save(engine)
        engine.apply(Delta([insert(1, 4)]))
        engine.apply(Delta([delete(1, 4)]))   # cancels with the insert
        engine.apply(Delta([insert(2, 99, "b", "c")]))
        engine.apply(Delta([delete(2, 99)]))  # NOT cancellable: 99 is new
        store.compact_log(engine)
        sizes = [len(entry.delta) for entry in store.log.entries()]
        assert sizes == [0, 0, 1, 1]  # frames kept, seqs preserved
        recovered = store.load(attach_journal=False)
        assert recovered.graph.has_node(99)
        assert_sessions_equal(recovered, engine)
        assert_views_match_recompute(recovered)

    def test_compaction_respects_lagging_cursors(self, tmp_path):
        """With a carried (lagging) section on disk, compaction must
        keep any entry the lagging view's filter still wants — and may
        drop the ones it provably does not."""
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path / "store")
        store.attach(engine)
        store.save(engine)
        engine.apply(Delta([delete(2, 3)]))  # irrelevant to iso
        store.save(engine, incremental=True)  # iso carried, cursor lags
        kept = store.compact_log(engine)
        assert kept == 0  # the lagging window was provably irrelevant
        recovered = store.load(attach_journal=False)
        assert_sessions_equal(recovered, engine)

    def test_selective_retention_never_shrinks_the_watermark(self, tmp_path):
        """Regression: lagging retention that keeps only a middle entry
        must not lower the %truncated watermark below the dropped
        covered seqs — a fresh process would re-allocate them, and the
        reused seq would read as snapshot-covered on the next recovery
        (the batch would never reach the graph)."""

        class OnlyEntryTwo:
            def wants_update(self, update, source_label, target_label):
                return update.source == 1  # seq 2 inserts (1, 2)

            def wants_node(self, node, label):
                return False

        log = DeltaLog(tmp_path / "deltas.log")
        for k in range(4):
            log.append(Delta([insert(k, k + 1)]))
        log.compact(after=4, lagging=[(0, OnlyEntryTwo())], label_of=lambda n: "")
        assert [entry.seq for entry in log.entries()] == [2]
        fresh = DeltaLog(log.path)  # a fresh process
        assert fresh.last_seq() == 4  # covered seqs stay spoken for
        assert fresh.append(Delta([insert(9, 9)])) == 5  # never re-allocates 3/4

    def test_policy_compaction_trigger(self, tmp_path):
        from repro.persist import SnapshotPolicy

        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path / "store")
        store.save(engine)
        policy = SnapshotPolicy(every_batches=2, compact_every_batches=3)
        store.attach(engine, policy=policy)
        engine.apply(Delta([delete(4, 5)]))
        engine.apply(Delta([insert(5, 4)]))
        assert policy.saves == 1 and policy.compactions == 0
        engine.apply(Delta([delete(5, 4)]))
        assert policy.compactions == 1
        # entries covered by the policy's own incremental save are gone
        assert [entry.seq for entry in store.log.entries()] == [3]
        recovered = store.load(attach_journal=False)
        assert_sessions_equal(recovered, engine)


# ----------------------------------------------------------------------
# Engine view lifecycle
# ----------------------------------------------------------------------


class TestLifecycle:
    def test_deregister_stops_fanout_and_frees_name(self):
        engine = four_view_engine(sample_graph())
        view = engine.deregister("iso")
        assert "iso" not in engine and len(engine) == 3
        report = engine.apply(Delta([delete(3, 1)]))
        assert "iso" not in report.views
        assert view.matches == vf2_matches(view.graph, ISO_PATTERN)
        engine.register("iso", lambda g, m: ISOIndex(g, ISO_PATTERN, meter=m))
        assert engine["iso"].matches == vf2_matches(engine.graph, ISO_PATTERN)

    def test_deregister_unknown_name(self):
        with pytest.raises(EngineError, match="no view named"):
            Engine(sample_graph()).deregister("nope")

    def test_lazy_register_defers_the_build(self):
        calls = []
        engine = Engine(sample_graph())

        def factory(graph, meter):
            calls.append("built")
            return SCCIndex(graph, meter=meter)

        assert engine.register("scc", factory, build="on_first_apply") is None
        assert "scc" in engine and len(engine) == 1 and calls == []
        report = engine.apply(Delta([delete(3, 1)]))
        assert calls == ["built"]
        # built on the pre-batch graph, then absorbed the batch
        gained, lost = report.output("scc")
        assert lost == {frozenset({1, 2, 3})}
        assert engine["scc"].components() == tarjan_scc(engine.graph).partition()

    def test_lazy_register_builds_on_first_access(self):
        engine = Engine(sample_graph())
        engine.register(
            "scc", lambda g, m: SCCIndex(g, meter=m), build="on_first_apply"
        )
        assert engine["scc"].components() == tarjan_scc(engine.graph).partition()
        assert engine.meter("scc").total() > 0

    def test_lazy_deregister_before_build(self):
        calls = []
        engine = Engine(sample_graph())
        engine.register(
            "scc",
            lambda g, m: calls.append("built") or SCCIndex(g, meter=m),
            build="on_first_apply",
        )
        assert engine.deregister("scc") is None
        engine.apply(Delta([delete(3, 1)]))
        assert calls == []

    def test_unknown_build_mode(self):
        with pytest.raises(EngineError, match="unknown build mode"):
            Engine(sample_graph()).register(
                "scc", lambda g, m: SCCIndex(g, meter=m), build="later"
            )

    def test_lazy_name_collision_still_rejected(self):
        engine = Engine(sample_graph())
        engine.register(
            "scc", lambda g, m: SCCIndex(g, meter=m), build="on_first_apply"
        )
        with pytest.raises(EngineError, match="already registered"):
            engine.register("scc", lambda g, m: SCCIndex(g, meter=m))


# ----------------------------------------------------------------------
# Property: save → load → replay ≡ from-scratch recomputation after
# randomized batches (mirrors test_engine.py's consistency harness).
# ----------------------------------------------------------------------


@st.composite
def persistence_workload(draw):
    """A random labeled graph, batches applied before the snapshot, and
    batches applied after it (the journaled tail)."""
    size = draw(st.integers(min_value=2, max_value=8))
    labels = {node: draw(st.sampled_from(LABELS)) for node in range(size)}
    graph = DiGraph(labels=labels)
    possible = [(s, t) for s in range(size) for t in range(size) if s != t]
    for source, target in draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=3 * size)
    ):
        graph.add_edge(source, target)

    batches = []
    scratch = graph.copy()
    for _ in range(draw(st.integers(min_value=2, max_value=4))):
        edges = list(scratch.edges())
        nodes = list(scratch.nodes())
        non_edges = [
            (s, t)
            for s in nodes
            for t in nodes
            if s != t and not scratch.has_edge(s, t)
        ]
        deletions = draw(
            st.lists(st.sampled_from(edges), unique=True, max_size=3)
            if edges
            else st.just([])
        )
        insertions = draw(
            st.lists(st.sampled_from(non_edges), unique=True, max_size=3)
            if non_edges
            else st.just([])
        )
        updates = [delete(*edge) for edge in deletions]
        updates += [insert(*edge) for edge in insertions]
        if draw(st.booleans()) and nodes:
            new_node = scratch.num_nodes + 100
            updates.append(
                insert(
                    draw(st.sampled_from(nodes)),
                    new_node,
                    target_label=draw(st.sampled_from(LABELS)),
                )
            )
        batch = Delta(list(draw(st.permutations(updates))))
        batch.apply_to(scratch)
        batches.append(batch)
    cut = draw(st.integers(min_value=0, max_value=len(batches)))
    return graph, batches[:cut], batches[cut:]


@settings(max_examples=25, deadline=None)
@given(persistence_workload())
def test_save_load_replay_property(tmp_path_factory, case):
    graph, before, after = case
    root = tmp_path_factory.mktemp("store")
    engine = four_view_engine(graph.copy())
    store = SnapshotStore(root)
    store.attach(engine)
    for batch in before:
        engine.apply(batch)
    store.save(engine)
    for batch in after:
        engine.apply(batch)

    recovered = store.load()
    assert_sessions_equal(recovered, engine)
    assert_views_match_recompute(recovered)


class TestLoadReportFreshness:
    """Regression: ``SnapshotStore.last_load_report`` used to survive a
    *failed* ``load()`` untouched, silently reporting the previous
    successful load's phase breakdown.  It must be reset at entry and
    carry a ``completed`` flag."""

    def test_failed_load_does_not_leave_stale_report(self, tmp_path):
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path / "store")
        store.attach(engine)
        store.save(engine)
        engine.apply(PRE_BATCHES[0])
        store.load(attach_journal=False)
        good = store.last_load_report
        assert good is not None and good.completed
        assert good.entries_replayed == 1

        # corrupt the snapshot; the next load must fail...
        store.snapshot_path.write_text("%repro-snapshot 99\n", encoding="utf-8")
        with pytest.raises(PersistFormatError):
            store.load(attach_journal=False)
        # ...and must NOT leave the previous successful report behind
        stale = store.last_load_report
        assert stale is not good
        assert stale is not None and not stale.completed
        assert stale.entries_replayed == 0 and stale.entries_delivered == 0

    def test_missing_snapshot_also_resets_the_report(self, tmp_path):
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path / "store")
        store.attach(engine)
        store.save(engine)
        store.load(attach_journal=False)
        assert store.last_load_report.completed
        store.snapshot_path.unlink()
        with pytest.raises(FileNotFoundError):
            store.load(attach_journal=False)
        assert store.last_load_report is not None
        assert not store.last_load_report.completed

"""Smoke tests: every example script must run end to end.

The examples contain their own correctness asserts (incremental answers
vs. from-scratch recomputation), so a clean run is a real check, not just
an import test.  Stdout is swallowed to keep test output readable.
"""

import contextlib
import io
import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    path for path in (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    buffer = io.StringIO()
    argv_before = sys.argv
    sys.argv = [str(script)]
    try:
        with contextlib.redirect_stdout(buffer):
            runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = argv_before
    output = buffer.getvalue()
    assert output, f"{script.name} produced no output"


def test_examples_exist():
    names = {path.stem for path in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 4  # quickstart + three domain scenarios

"""Smoke tests: every example script must run end to end.

The examples contain their own correctness asserts (incremental answers
vs. from-scratch recomputation), so a clean run is a real check, not just
an import test.  Stdout is swallowed to keep test output readable.

``quickstart`` (which drives a sharded four-view engine in its finale)
is additionally run under every dispatch strategy — ``serial``,
``threads``, and ``processes`` — via the ``REPRO_ENGINE_EXECUTOR``
environment variable, so the executor matrix is exercised even when the
surrounding test session pins a single strategy.
"""

import contextlib
import io
import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    path for path in (Path(__file__).parent.parent / "examples").glob("*.py")
)
EXECUTORS = ("serial", "threads", "processes")


def run_example(script) -> str:
    buffer = io.StringIO()
    argv_before = sys.argv
    sys.argv = [str(script)]
    try:
        with contextlib.redirect_stdout(buffer):
            runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = argv_before
    return buffer.getvalue()


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    output = run_example(script)
    assert output, f"{script.name} produced no output"


@pytest.mark.parametrize("executor", EXECUTORS)
def test_quickstart_runs_under_every_executor(executor, monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE_EXECUTOR", executor)
    script = next(path for path in EXAMPLES if path.stem == "quickstart")
    output = run_example(script)
    assert f"({executor} dispatch)" in output


def test_examples_exist():
    names = {path.stem for path in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 4  # quickstart + three domain scenarios

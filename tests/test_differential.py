"""Differential oracle torture test.

Seeded random update streams interleave batch applies, bulk loads,
rollbacks, full and incremental snapshots (each stream picks a format
v5 codec, or plaintext), relevance-aware log compactions, online shard
splits (sharded layouts), and mid-stream recoveries; after *every*
mutation the engine's five view answers are compared against
from-scratch recomputation (BLINKS-style
KWS BFS, RPQ_NFA product BFS, Tarjan, VF2, and a brute-force triangle
count for the registered dataflow view) on the materialized graph —
the correctness methodology both Szárnyas (2018) and Dexter et al.
(2019) prescribe for incremental view/log machinery.

Tier-1 runs a reduced stream count; the nightly CI job sets
``REPRO_DIFFERENTIAL_STREAMS=200`` (the acceptance bar) for the full
sweep.  Every stream is an independent seed, so a failure reproduces
with ``-k "stream-<seed>"``.

Every stream runs under **both storage layouts**: a plain ``DiGraph``
with a monolithic delta log, and a ``ShardedGraphStore`` with a
segmented per-shard log (snapshot format v3) — so the sharded path is
held to the same oracle as the monolithic one, recovery included.

Every stream also runs **through the serving layer**: all mutations go
via a :class:`repro.serving.Repository`, and the stream interleaves
pinned read sessions whose expected answers are recorded from-scratch
at admission time and re-checked batches later — the MVCC snapshot at
generation *g* must keep answering exactly what a from-scratch oracle
said at *g*, no matter what the write stream did since.
"""

import os
import random

import pytest

from repro import (
    Delta,
    DiGraph,
    Engine,
    Repository,
    ShardedGraphStore,
    ShardMap,
    delete,
    insert,
)
from repro.dataflow import DataflowView
from repro.iso import ISOIndex, Pattern, vf2_matches
from repro.kws import KWSIndex, KWSQuery, batch_kws
from repro.persist import SnapshotStore, available_codecs
from repro.rpq import RPQIndex, matches_only
from repro.scc import SCCIndex, tarjan_scc
from repro.shardexec import shutdown_pools

STREAMS = int(os.environ.get("REPRO_DIFFERENTIAL_STREAMS", "12"))
STEPS = 14
LABELS = ["a", "b", "c", "d"]
#: Every storage layout runs the identical stream logic: ``plain`` is
#: one DiGraph + monolithic log, ``sharded`` is a 3-shard
#: ShardedGraphStore + segmented per-shard log with per-batch fsync,
#: and ``windowed`` is the same sharded store journaled under the
#: ``workers`` strategy with multi-batch group-commit windows (format
#: v4) — shard worker processes when the interpreter can spawn them,
#: in-process windowed appends when it cannot.
LAYOUTS = ("plain", "sharded", "windowed")
SHARDS = 3
WINDOW = 3

@pytest.fixture(autouse=True)
def _reap_worker_pools():
    """Windowed-layout streams may spawn resident shard workers; none
    outlive their stream (no-op for the other layouts)."""
    yield
    shutdown_pools()


KWS_QUERY = KWSQuery(("a", "b"), bound=2)
RPQ_QUERY = "a . (b + c)* . c"
ISO_PATTERN = Pattern.from_edges({0: "a", 1: "b"}, [(0, 1)])


def four_view_engine(graph: DiGraph) -> Engine:
    """The four paper indexes plus a :class:`DataflowView` (triangle
    count) — the dataflow layer rides every apply/rollback/save/compact/
    mid-stream-load against its own from-scratch oracle."""
    engine = Engine(graph)
    engine.register("kws", lambda g, m: KWSIndex(g, KWS_QUERY, meter=m))
    engine.register("rpq", lambda g, m: RPQIndex(g, RPQ_QUERY, meter=m))
    engine.register("scc", lambda g, m: SCCIndex(g, meter=m))
    engine.register("iso", lambda g, m: ISOIndex(g, ISO_PATTERN, meter=m))
    engine.register(
        "tri", lambda g, m: DataflowView(g, "triangle-count", meter=m)
    )
    return engine


def batch_triangle_count(graph) -> int:
    """From-scratch oracle: the number of directed 3-cycles."""
    third = 0
    for source, target in graph.edges():
        for closer in graph.successors(target):
            if graph.has_edge(closer, source):
                third += 1  # counts every cycle once per rotation
    assert third % 3 == 0
    return third // 3


def serving_surface_answers(graph):
    """From-scratch recomputation of every served (view, query) pair —
    what a session pinned *now* must still answer later."""
    return {
        ("kws", "roots"): frozenset(batch_kws(graph, KWS_QUERY)),
        ("rpq", "matches"): frozenset(matches_only(graph, RPQ_QUERY)),
        ("scc", "components"): frozenset(tarjan_scc(graph).partition()),
        ("iso", "matches"): frozenset(vf2_matches(graph, ISO_PATTERN)),
        ("tri", "value"): batch_triangle_count(graph),
    }


def assert_session_matches(session, expected) -> None:
    for (view, query), answer in expected.items():
        assert session.read(view, query) == answer, (
            f"pinned session at generation {session.generation} diverged "
            f"on {view}.{query}"
        )


def assert_oracle(engine: Engine) -> None:
    """Every view answer equals from-scratch recomputation on G."""
    graph = engine.graph
    assert engine["kws"].roots() == set(batch_kws(graph, KWS_QUERY))
    assert engine["rpq"].matches == matches_only(graph, RPQ_QUERY)
    assert engine["scc"].components() == tarjan_scc(graph).partition()
    assert engine["iso"].matches == vf2_matches(graph, ISO_PATTERN)
    assert engine["tri"].value() == batch_triangle_count(graph)
    engine["scc"].check_consistency()
    engine["iso"].check_consistency()


def assert_sessions_equal(recovered: Engine, reference: Engine) -> None:
    assert recovered.graph == reference.graph
    assert recovered["kws"].roots() == reference["kws"].roots()
    assert recovered["rpq"].matches == reference["rpq"].matches
    assert recovered["scc"].components() == reference["scc"].components()
    assert recovered["iso"].matches == reference["iso"].matches
    assert recovered["tri"].value() == reference["tri"].value()
    assert recovered["tri"].snapshot() == reference["tri"].snapshot()


def random_graph(rng: random.Random) -> DiGraph:
    size = rng.randint(5, 9)
    graph = DiGraph(
        labels={node: rng.choice(LABELS) for node in range(size)}
    )
    pairs = [(s, t) for s in range(size) for t in range(size) if s != t]
    for edge in rng.sample(pairs, k=min(len(pairs), rng.randint(size, 3 * size))):
        graph.add_edge(*edge)
    return graph


def random_batch(rng: random.Random, graph: DiGraph, next_node: list) -> Delta:
    """An applicable batch: deletions, insertions, sometimes a new node."""
    edges = list(graph.edges())
    nodes = list(graph.nodes())
    non_edges = [
        (s, t)
        for s in nodes
        for t in nodes
        if s != t and not graph.has_edge(s, t)
    ]
    updates = []
    for edge in rng.sample(edges, k=min(len(edges), rng.randint(0, 3))):
        updates.append(delete(*edge))
    for edge in rng.sample(non_edges, k=min(len(non_edges), rng.randint(0, 3))):
        updates.append(insert(*edge))
    if rng.random() < 0.35 and nodes:
        fresh = next_node[0]
        next_node[0] += 1
        updates.append(
            insert(
                rng.choice(nodes),
                fresh,
                target_label=rng.choice(LABELS),
            )
        )
    rng.shuffle(updates)
    return Delta(updates)


def random_bulk_edges(rng: random.Random, graph, next_node: list) -> list:
    """An insert-only import: a chain of brand-new nodes hung off an
    existing one (``bulk_load`` refuses deletions by contract)."""
    anchor = rng.choice(list(graph.nodes()))
    prev, prev_label = anchor, graph.label(anchor)
    updates = []
    for _ in range(rng.randint(2, 5)):
        fresh, fresh_label = next_node[0], rng.choice(LABELS)
        next_node[0] += 1
        updates.append(insert(prev, fresh, prev_label, fresh_label))
        prev, prev_label = fresh, fresh_label
    return updates


@pytest.mark.parametrize("layout", LAYOUTS)
@pytest.mark.parametrize(
    "seed", range(STREAMS), ids=[f"stream-{seed}" for seed in range(STREAMS)]
)
def test_differential_stream(seed, layout, tmp_path):
    rng = random.Random(0xD1FF + seed)
    graph = random_graph(rng)
    codec = rng.choice((None,) + available_codecs())
    if layout in ("sharded", "windowed"):
        shard_map = ShardMap(SHARDS)
        graph = ShardedGraphStore.from_digraph(graph, shard_map)
        store = SnapshotStore(
            tmp_path / "store", shard_map=shard_map, codec=codec
        )
    else:
        store = SnapshotStore(tmp_path / "store", codec=codec)
    engine = four_view_engine(graph)
    if layout == "windowed":
        engine.scheduler.executor = "workers"
    store.attach(engine)
    if layout == "windowed":
        store.log.window_size = WINDOW
    store.save(engine)
    # All mutations go through the serving layer, so the stream also
    # tortures MVCC: sessions pinned mid-stream must keep answering
    # what the from-scratch oracle said at their admission generation.
    repo = Repository(engine, max_sessions=8)
    held: list = []  # (session, expected answers at its generation)
    next_node = [1000]
    checkpoints = [repo.checkpoint()]
    mutations = 0
    splits = 0

    for _ in range(STEPS):
        action = rng.random()
        if action < 0.50:
            batch = random_batch(rng, engine.graph, next_node)
            if not batch:
                continue
            repo.apply(batch)
            mutations += 1
            if rng.random() < 0.3:
                checkpoints.append(repo.checkpoint())
        elif action < 0.58:
            repo.bulk_load(random_bulk_edges(rng, engine.graph, next_node))
            mutations += 1
            if rng.random() < 0.3:
                checkpoints.append(repo.checkpoint())
        elif action < 0.68:
            valid = [c for c in checkpoints if c <= engine.applied_count]
            if not valid:
                continue
            repo.rollback(rng.choice(valid))
            mutations += 1
        elif action < 0.72 and layout != "plain" and splits < 2:
            parent = rng.randrange(engine.graph.shard_map.count)
            repo.split_shard(store, parent)
            splits += 1
        elif action < 0.80:
            store.save(engine, incremental=rng.random() < 0.7)
        elif action < 0.90:
            store.compact_log(engine)
        else:
            probe = store.load(attach_journal=False)
            assert_sessions_equal(probe, engine)
            assert_oracle(probe)
        assert_oracle(engine)
        # Serving oracle step: sometimes pin a session (recording the
        # from-scratch surface now), always re-check a random held one.
        if rng.random() < 0.3 and len(held) < 4:
            held.append(
                (repo.session(), serving_surface_answers(engine.graph))
            )
        if held:
            assert_session_matches(*rng.choice(held))

    assert mutations >= 0  # streams with no mutations are legal (and dull)
    assert_oracle(engine)
    for session, expected in held:
        assert_session_matches(session, expected)
        session.close()
    assert repo.poisoned is None
    repo.close()
    recovered = store.load(attach_journal=False)
    assert_sessions_equal(recovered, engine)
    assert_oracle(recovered)
    # a broadcast full-tail replay recovers the identical session
    broadcast = store.load(attach_journal=False, routed=False)
    assert_sessions_equal(broadcast, engine)

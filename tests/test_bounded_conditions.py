"""Tests for the future-work module: measured boundedness on restricted
update classes (per-update cost flat while |G| grows 16x)."""

import pytest

from repro.core.cost import CostMeter
from repro.core.delta import Delta, delete, insert
from repro.graph import DiGraph
from repro.graph.generators import label_alphabet, layered_dag
from repro.kws import KWSIndex, KWSQuery
from repro.scc import SCCIndex, tarjan_scc
from repro.theory.bounded_conditions import (
    classify_scc_stream,
    kws_deletion_is_far,
    scc_update_is_rank_respecting,
    topological_insert_stream,
)

ALPHABET = label_alphabet(4)


class TestClassifiers:
    def test_rank_respecting_detection(self):
        g = DiGraph(labels={i: "x" for i in range(3)}, edges=[(0, 1), (1, 2)])
        index = SCCIndex(g)
        assert scc_update_is_rank_respecting(index, insert(0, 2))
        assert not scc_update_is_rank_respecting(index, insert(2, 0))
        assert scc_update_is_rank_respecting(index, delete(0, 1))

    def test_intra_component_insert_is_bounded(self):
        g = DiGraph(labels={i: "x" for i in range(3)},
                    edges=[(0, 1), (1, 2), (2, 0)])
        index = SCCIndex(g)
        assert scc_update_is_rank_respecting(index, insert(0, 2))

    def test_new_node_insert_is_bounded(self):
        g = DiGraph(labels={0: "x"})
        index = SCCIndex(g)
        assert scc_update_is_rank_respecting(index, insert(0, 99))

    def test_classify_stream_counts(self):
        g = DiGraph(labels={i: "x" for i in range(4)}, edges=[(0, 1), (1, 2)])
        index = SCCIndex(g)
        delta = Delta([insert(0, 2), insert(2, 0), delete(0, 1)])
        bounded, risky = classify_scc_stream(index, delta)
        assert (bounded, risky) == (2, 1)

    def test_far_deletion_detection(self):
        g = DiGraph(labels={0: "x", 1: "x", "t": "a"},
                    edges=[(0, "t"), (0, 1), (1, "t")])
        index = KWSIndex(g, KWSQuery(("a",), 2))
        # chosen path from 0 is the direct edge (tie-break: "t" < 1? the
        # direct edge has dist 1, strictly shorter, so next(0) == "t")
        assert index.kdist.get(0, "a").next == "t"
        assert kws_deletion_is_far(index, delete(0, 1))
        assert not kws_deletion_is_far(index, delete(0, "t"))
        assert not kws_deletion_is_far(index, insert(0, 2))


class TestTopologicalStream:
    def test_stream_is_all_rank_respecting(self):
        dag = layered_dag(4, 4, ALPHABET, seed=3, inter_layer_prob=0.5)
        nodes = list(dag.nodes())
        edges = list(dag.edges())
        node_order, stream = topological_insert_stream(nodes, edges)
        empty = DiGraph()
        for node in node_order:  # sinks first: ranks ascend with position
            empty.add_node(node, label=dag.label(node))
        index = SCCIndex(empty)
        for update in stream:
            assert scc_update_is_rank_respecting(index, update), update
            index.apply(Delta([update]))
        assert index.components() == tarjan_scc(index.graph).partition()
        assert index.graph.num_edges == dag.num_edges

    def test_rejects_cycles(self):
        with pytest.raises(ValueError):
            topological_insert_stream([0, 1], [(0, 1), (1, 0)])


class TestMeasuredBoundedness:
    def test_scc_rank_respecting_stream_cost_flat_in_graph_size(self):
        # Candidate skip-layer edges are *classified* first and only the
        # rank-respecting ones applied (that is the condition under
        # study); their per-update cost must not grow with |G|.
        costs = []
        for layers in (5, 20, 80):
            dag = layered_dag(layers, 5, ALPHABET, seed=7, inter_layer_prob=0.4)
            meter = CostMeter()
            index = SCCIndex(dag, meter=meter)
            meter.reset()
            added = 0
            layer = 0
            while added < 8 and layer + 2 < layers:
                source = layer * 5
                target = (layer + 2) * 5
                update = insert(source, target)
                if (
                    not index.graph.has_edge(source, target)
                    and scc_update_is_rank_respecting(index, update)
                ):
                    index.apply(Delta([update]))
                    added += 1
                layer += 1
            assert added >= 2, f"not enough conforming updates at {layers} layers"
            costs.append(meter.total() / added)
        assert costs[-1] <= max(costs[0], 1) * 3, costs

    def test_kws_far_deletion_cost_flat_in_graph_size(self):
        costs = []
        for scale in (100, 400, 1600):
            # keyword node far from the churn region
            g = DiGraph(labels={i: "x" for i in range(scale)} | {"t": "kw"})
            for i in range(scale - 1):
                g.add_edge(i, i + 1)
            g.add_edge(scale - 1, "t")
            meter = CostMeter()
            index = KWSIndex(g, KWSQuery(("kw",), 2), meter=meter)
            meter.reset()
            # delete+reinsert an edge far from t's 2-neighborhood
            assert kws_deletion_is_far(index, delete(0, 1))
            index.apply(Delta([delete(0, 1)]))
            index.apply(Delta([insert(0, 1)]))
            costs.append(meter.total())
        assert costs[-1] <= max(costs[0], 1) * 3, costs

    def test_ssrp_insert_only_cost_tracks_gain_not_graph(self):
        from repro.core.ssrp import ReachabilityIndex

        costs = []
        for scale in (100, 400, 1600):
            g = DiGraph(labels={i: "x" for i in range(scale)})
            for i in range(scale - 1):
                if i != 10:
                    g.add_edge(i, i + 1)
            # tail beyond node 11 is unreachable; inserting (10, 11) gains
            # a fixed-size window because we cap the regained region
            g.remove_edge(15, 16)
            meter = CostMeter()
            index = ReachabilityIndex(g, 0, meter=meter)
            meter.reset()
            index.apply(Delta([insert(10, 11)]))  # gains nodes 11..15 only
            costs.append(meter.total())
        assert costs[-1] <= max(costs[0], 1) * 2, costs

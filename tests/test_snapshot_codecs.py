"""Property tests for format v5 compressed snapshots (``%packed``).

Three families of properties:

* **Round trips** — packing any section body and expanding it back is
  the identity, and a save→load→re-save cycle through a fresh store is
  byte-identical for every codec (including plaintext), so compression
  never leaks into the logical content.
* **Version gating** — a file *labeled* v4 that smuggles any v5
  construct (``%packed``, ``%meta codec``, ``%meta shard-split``) is
  rejected outright: a pre-v5 reader must refuse rather than mis-parse,
  and the constructs carry explicit version gates so the refusal is a
  clean format error, not a crash downstream.
* **Incremental equivalence** — a compressed incremental save (carried
  ``%packed`` sections copied byte-for-byte plus fresh blocks) loads to
  the same session as a compressed full save: canonically re-saving
  both into fresh stores yields identical bytes.
"""

import pytest

from repro import Delta, DiGraph, Engine, delete, insert
from repro.dataflow import DataflowView
from repro.kws import KWSIndex, KWSQuery
from repro.persist import (
    SNAPSHOT_CODECS,
    PersistFormatError,
    SnapshotStore,
    available_codecs,
)
from repro.persist.format import (
    decode_packed_payload,
    encode_packed_block,
    expand_packed_lines,
)
from repro.scc import SCCIndex

#: Every codec this interpreter can write, plus plaintext.
CODECS = (None,) + available_codecs()
KWS_QUERY = KWSQuery(("a", "b"), bound=2)


def build_engine() -> Engine:
    graph = DiGraph(
        labels={1: "a", 2: "b", 3: "c", 4: "a", 5: "b"},
        edges=[(1, 2), (2, 3), (3, 1), (1, 4), (4, 5)],
    )
    engine = Engine(graph)
    engine.register("kws", lambda g, m: KWSIndex(g, KWS_QUERY, meter=m))
    engine.register("scc", lambda g, m: SCCIndex(g, meter=m))
    engine.register(
        "tri", lambda g, m: DataflowView(g, "triangle-count", meter=m)
    )
    return engine


def test_zlib_is_always_available():
    """The default codec rides the standard library; a v5 writer can
    always compress and every interpreter can always read zlib files."""
    assert "zlib" in available_codecs()
    assert set(available_codecs()) <= set(SNAPSHOT_CODECS)


@pytest.mark.parametrize("codec", available_codecs())
@pytest.mark.parametrize(
    "body",
    [
        [],
        ["one line\n"],
        ["%config a b\n", 'I 1 2 "x" "y"\n'],
        [f"row {index} payload\n" for index in range(300)],
        ["unicode ☃ café\n", "\n", "  indented  \n"],
        ["# looks like a comment\n", "%section looks like a directive\n"],
    ],
    ids=["empty", "single", "records", "long", "unicode", "adversarial"],
)
def test_packed_block_round_trip(codec, body):
    """encode → decode is the identity for any body, including lines
    that would parse as directives or comments if left plaintext."""
    block = encode_packed_block(list(body), codec)
    assert block[0].startswith(f"%packed {codec} ")
    assert decode_packed_payload(codec, block[1:], "<doc>", 1) == body
    # the expander sees the same body, anchored at the directive's line
    raw = ["%repro-snapshot 5\n"] + block
    expanded = expand_packed_lines(raw, source="<doc>")
    assert [line for _, line in expanded[1:]] == body
    assert all(number == 2 for number, _ in expanded[1:])


@pytest.mark.parametrize("codec", CODECS, ids=str)
def test_save_load_resave_is_byte_identical(codec, tmp_path):
    """A snapshot survives a full save→load→re-save cycle byte-for-byte
    under every codec: compression changes the armor, never the
    content, and the writer is deterministic."""
    engine = build_engine()
    store = SnapshotStore(tmp_path / "first", codec=codec)
    store.attach(engine)
    original = store.save(engine).read_text(encoding="utf-8")
    if codec is None:
        assert "%packed" not in original
        assert "%meta codec" not in original
    else:
        assert f"%meta codec {codec}\n" in original
        assert f"%packed {codec} " in original
    # reading is codec-oblivious: a store built with no codec loads it
    revived = SnapshotStore(tmp_path / "first").load(attach_journal=False)
    assert revived.graph == engine.graph
    assert revived["scc"].components() == engine["scc"].components()
    second = SnapshotStore(tmp_path / "second", codec=codec)
    second.attach(revived)
    assert second.save(revived).read_text(encoding="utf-8") == original


@pytest.mark.parametrize("codec", available_codecs())
def test_compressed_incremental_equals_compressed_full(codec, tmp_path):
    """An incremental compressed save (carried ``%packed`` blocks plus
    fresh ones) is logically identical to a full compressed save of the
    same session: canonical re-saves of both load results are
    byte-identical."""
    tail = [
        Delta([insert(5, 1, "b", "a"), delete(2, 3)]),
        Delta([insert(3, 5, "c", "b")]),
    ]

    def build(root):
        engine = build_engine()
        store = SnapshotStore(root, codec=codec)
        store.attach(engine)
        store.save(engine)
        for batch in tail:
            engine.apply(batch)
        return engine, store

    def canonical(root, out):
        revived = SnapshotStore(root).load(attach_journal=False)
        fresh = SnapshotStore(out, codec=codec)
        fresh.attach(revived)
        return fresh.save(revived).read_text(encoding="utf-8")

    incr_engine, incr_store = build(tmp_path / "incr")
    incr_store.save(incr_engine, incremental=True)
    full_engine, full_store = build(tmp_path / "full")
    full_store.save(full_engine)
    assert canonical(tmp_path / "incr", tmp_path / "incr-canon") == canonical(
        tmp_path / "full", tmp_path / "full-canon"
    )


@pytest.mark.parametrize("codec", available_codecs())
def test_incremental_carries_packed_blocks_verbatim(codec, tmp_path):
    """Clean sections of a compressed snapshot are carried into the next
    incremental file as the *same compressed bytes* — compared, copied,
    never re-encoded — so carry cost is proportional to the armor, not
    the decompressed body."""
    engine = build_engine()
    store = SnapshotStore(tmp_path / "store", codec=codec)
    store.attach(engine)
    first = store.save(engine).read_text(encoding="utf-8")
    blocks = []
    lines = first.splitlines(keepends=True)
    for index, line in enumerate(lines):
        if line.startswith("%packed "):
            count = int(line.split()[2])
            blocks.append("".join(lines[index : index + 1 + count]))
    assert blocks  # a compressed save must actually pack its bodies
    # no intervening batch: every section is clean, the incremental save
    # must splice every original block back byte-for-byte
    second = store.save(engine, incremental=True).read_text(encoding="utf-8")
    for block in blocks:
        assert block in second


V4_HEADER = "%repro-snapshot 4\n%meta last-seq 0\n"
V4_BODY = "%section graph\nn 1 a\n%end\n"


@pytest.mark.parametrize(
    "construct",
    [
        "%packed zlib 1\neJzLUzBUSOTKUzBSSOJKBbKNuAAmMAOp\n",
        "%meta codec zlib\n",
        "%meta sharding hash 2\n%meta shard-split 0 2\n",
    ],
    ids=["packed", "codec-meta", "shard-split-meta"],
)
def test_v4_labeled_file_rejects_v5_constructs(construct, tmp_path):
    """A v5 construct inside a file claiming version 4 is a format
    error: pre-v5 readers reject these keywords, so a v5 writer must
    never stamp an older version — and a corrupted or hand-edited
    version line fails loudly instead of mis-parsing."""
    root = tmp_path / "store"
    root.mkdir()
    (root / SnapshotStore.SNAPSHOT_NAME).write_text(
        V4_HEADER + construct + V4_BODY, encoding="utf-8"
    )
    with pytest.raises(PersistFormatError, match="version-5 construct"):
        SnapshotStore(root).load(attach_journal=False)


def test_truncated_packed_block_is_rejected(tmp_path):
    """A ``%packed`` directive promising more payload lines than the
    file holds is a torn write, not a short section."""
    root = tmp_path / "store"
    root.mkdir()
    (root / SnapshotStore.SNAPSHOT_NAME).write_text(
        "%repro-snapshot 5\n%meta last-seq 0\n%section graph\n"
        "%packed zlib 3\neJzLUzBUSOTKUzBSSOJKBbKNuAAmMAOp\n",
        encoding="utf-8",
    )
    with pytest.raises(PersistFormatError, match="truncated %packed"):
        SnapshotStore(root).load(attach_journal=False)


def test_corrupt_packed_payload_is_rejected(tmp_path):
    """Flipped payload bytes fail the base64/decompress step with a
    format error naming the block, never silently decode."""
    root = tmp_path / "store"
    root.mkdir()
    (root / SnapshotStore.SNAPSHOT_NAME).write_text(
        "%repro-snapshot 5\n%meta last-seq 0\n%section graph\n"
        "%packed zlib 1\n!!!! not base64 !!!!\n%end\n",
        encoding="utf-8",
    )
    with pytest.raises(PersistFormatError, match="undecodable %packed"):
        SnapshotStore(root).load(attach_journal=False)


def test_unknown_and_unavailable_codecs_are_refused(tmp_path):
    with pytest.raises(ValueError, match="not available"):
        SnapshotStore(tmp_path / "bad", codec="rot13")
    if "zstd" not in available_codecs():
        with pytest.raises(ValueError, match="not available"):
            SnapshotStore(tmp_path / "zstd", codec="zstd")


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])

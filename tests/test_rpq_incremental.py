"""Tests for IncRPQ (paper Section 5.2, Fig. 5): unit + batch updates,
marking integrity, equivalence with recompute, relative boundedness."""

import pytest

from repro.core.cost import CostMeter
from repro.core.delta import Delta, delete, insert
from repro.graph import DiGraph
from repro.graph.generators import label_alphabet, uniform_random_graph
from repro.graph.updates import random_delta
from repro.rpq import RPQIndex, inc_rpq_n, matches_only, verify_markings

THREE = ["a", "b", "c"]


@pytest.fixture
def chain() -> DiGraph:
    # a -> b -> c, plus a spare c node
    g = DiGraph(labels={0: "a", 1: "b", 2: "c", 3: "c"})
    g.add_edge(0, 1)
    g.add_edge(1, 2)
    return g


class TestUnitInsert:
    def test_new_match_via_insertion(self, chain):
        index = RPQIndex(chain, "a . b . c")
        assert index.matches == {(0, 2)}
        delta_o = index.insert_edge(1, 3)
        assert delta_o.added == {(0, 3)}
        assert delta_o.removed == frozenset()
        assert index.matches == {(0, 2), (0, 3)}
        verify_markings(index.graph, "a . b . c", index.markings)

    def test_shortcut_changes_dist_not_matches(self):
        # a -> b -> b -> c and inserted shortcut a -> b(second)
        g = DiGraph(labels={0: "a", 1: "b", 2: "b", 3: "c"})
        for edge in [(0, 1), (1, 2), (2, 3)]:
            g.add_edge(*edge)
        index = RPQIndex(g, "a . b* . c")
        assert index.matches == {(0, 3)}
        delta_o = index.insert_edge(0, 2)
        assert delta_o.is_empty
        verify_markings(index.graph, "a . b* . c", index.markings)

    def test_insert_new_source_node(self, chain):
        index = RPQIndex(chain, "a . b . c")
        delta_o = index.insert_edge(9, 1, source_label="a")
        assert (9, 2) in delta_o.added
        assert (9, 9) not in index.matches
        verify_markings(index.graph, "a . b . c", index.markings)

    def test_insert_new_match_node_self(self):
        # single-label query: a brand-new node labeled a matches itself.
        g = DiGraph(labels={0: "b"})
        index = RPQIndex(g, "a")
        delta_o = index.insert_edge(0, 7, target_label="a")
        assert delta_o.added == {(7, 7)}
        verify_markings(index.graph, "a", index.markings)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_inserts_match_recompute(self, seed):
        import random

        graph = uniform_random_graph(20, 50, THREE, seed=seed)
        query = "a . (b + c)* . c"
        index = RPQIndex(graph, query)
        rng = random.Random(seed)
        nodes = list(graph.nodes())
        done = 0
        while done < 8:
            s, t = rng.choice(nodes), rng.choice(nodes)
            if s == t or graph.has_edge(s, t):
                continue
            index.insert_edge(s, t)
            done += 1
            assert index.matches == matches_only(index.graph, query)
        verify_markings(index.graph, query, index.markings)


class TestUnitDelete:
    def test_losing_match(self, chain):
        index = RPQIndex(chain, "a . b . c")
        delta_o = index.delete_edge(1, 2)
        assert delta_o.removed == {(0, 2)}
        assert index.matches == set()
        verify_markings(index.graph, "a . b . c", index.markings)

    def test_alternative_path_survives(self):
        # two parallel b-paths from a to c
        g = DiGraph(labels={0: "a", 1: "b", 2: "b", 3: "c"})
        for edge in [(0, 1), (0, 2), (1, 3), (2, 3)]:
            g.add_edge(*edge)
        index = RPQIndex(g, "a . b . c")
        delta_o = index.delete_edge(1, 3)
        assert delta_o.is_empty  # (0,3) still matched via node 2
        assert index.matches == {(0, 3)}
        verify_markings(index.graph, "a . b . c", index.markings)

    def test_dist_increase_without_match_change(self):
        # a -> c direct and a -> b -> ... path: delete the short one.
        g = DiGraph(labels={0: "a", 1: "c", 2: "b"})
        for edge in [(0, 1), (0, 2), (2, 1)]:
            g.add_edge(*edge)
        index = RPQIndex(g, "a . b* . c")
        delta_o = index.delete_edge(0, 1)
        assert delta_o.is_empty
        verify_markings(index.graph, "a . b* . c", index.markings)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_deletes_match_recompute(self, seed):
        import random

        graph = uniform_random_graph(20, 60, THREE, seed=seed)
        query = "a . (b + c)* . c"
        index = RPQIndex(graph, query)
        rng = random.Random(100 + seed)
        for _ in range(8):
            edges = list(index.graph.edges())
            if not edges:
                break
            index.delete_edge(*rng.choice(edges))
            assert index.matches == matches_only(index.graph, query)
        verify_markings(index.graph, query, index.markings)


class TestBatch:
    @pytest.mark.parametrize("seed", range(8))
    def test_batch_matches_recompute(self, seed):
        graph = uniform_random_graph(20, 60, THREE, seed=seed)
        query = "a . (b + c)* . c"
        delta = random_delta(graph, 16, seed=seed)
        expected = matches_only(delta.applied(graph), query)
        index = RPQIndex(graph.copy(), query)
        index.apply(delta)
        assert index.matches == expected
        verify_markings(index.graph, query, index.markings)

    def test_delta_output_equation(self):
        graph = uniform_random_graph(20, 60, THREE, seed=33)
        query = "a . b* . c"
        index = RPQIndex(graph.copy(), query)
        before = set(index.matches)
        delta = random_delta(graph, 14, seed=34)
        delta_o = index.apply(delta)
        assert (before - set(delta_o.removed)) | set(delta_o.added) == index.matches
        assert set(delta_o.removed) <= before
        assert not set(delta_o.added) & before

    def test_paper_example5_style_interleaving(self):
        # Deletion splits a path; insertions restore a different one in the
        # same batch — the match must survive (paper Example 5's point).
        g = DiGraph(labels={0: "a", 1: "b", 2: "b", 3: "c"})
        for edge in [(0, 1), (1, 3)]:
            g.add_edge(*edge)
        index = RPQIndex(g, "a . b . c")
        assert index.matches == {(0, 3)}
        delta = Delta([delete(1, 3), insert(0, 2), insert(2, 3)])
        delta_o = index.apply(delta)
        assert index.matches == {(0, 3)}
        assert delta_o.is_empty  # split path replaced within one batch
        verify_markings(index.graph, "a . b . c", index.markings)

    def test_batch_with_new_nodes(self):
        graph = uniform_random_graph(15, 40, THREE, seed=7)
        query = "a . b* . c"
        delta = random_delta(graph, 12, seed=8, new_node_fraction=0.5, alphabet=THREE)
        expected = matches_only(delta.applied(graph), query)
        index = RPQIndex(graph.copy(), query)
        index.apply(delta)
        assert index.matches == expected
        verify_markings(index.graph, query, index.markings)

    def test_batch_agrees_with_unit_at_a_time(self):
        graph = uniform_random_graph(20, 55, THREE, seed=41)
        query = "a . (b + c)* . c"
        delta = random_delta(graph, 14, seed=42)
        batch_index = RPQIndex(graph.copy(), query)
        batch_delta = batch_index.apply(delta)
        unit_index = RPQIndex(graph.copy(), query)
        unit_delta = inc_rpq_n(unit_index, delta)
        assert batch_index.matches == unit_index.matches
        assert batch_delta.added == unit_delta.added
        assert batch_delta.removed == unit_delta.removed

    @pytest.mark.parametrize("rho", [0.25, 1.0, 4.0])
    def test_rho_variations(self, rho):
        graph = uniform_random_graph(20, 60, THREE, seed=51)
        query = "a . b* . c"
        delta = random_delta(graph, 14, rho=rho, seed=52)
        expected = matches_only(delta.applied(graph), query)
        index = RPQIndex(graph.copy(), query)
        index.apply(delta)
        assert index.matches == expected


class TestRelativeBoundedness:
    def test_far_update_cost_independent_of_graph_size(self):
        # A fixed local perturbation against growing graphs: the measured
        # IncRPQ work must stay flat while |G| grows 16x.
        costs = []
        for scale in (50, 200, 800):
            g = DiGraph(labels={i: "x" for i in range(scale)})
            for i in range(scale - 1):
                g.add_edge(i, i + 1)
            # a small a->b->c gadget attached nowhere near the chain
            g.add_node("ga", label="a")
            g.add_node("gb", label="b")
            g.add_node("gc", label="c")
            g.add_edge("ga", "gb")
            meter = CostMeter()
            index = RPQIndex(g, "a . b . c", meter=meter)
            meter.reset()
            index.insert_edge("gb", "gc")
            index.delete_edge("gb", "gc")
            costs.append(meter.total())
        assert costs[2] <= max(costs[0], 1) * 3

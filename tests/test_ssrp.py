"""Tests for SSRP (paper Section 3): bounded under insertions, deletion
repair correct (and measurably not bounded — the gadget witnesses live in
test_lower_bounds.py)."""

import pytest

from repro.core.cost import CostMeter
from repro.core.delta import Delta, delete, insert
from repro.core.ssrp import ReachabilityIndex, reachable_from
from repro.graph import DiGraph, MissingNodeError


@pytest.fixture
def diamond() -> DiGraph:
    #      1
    #    /   \
    #   0     3 -> 4
    #    \   /
    #      2
    g = DiGraph(labels={i: "x" for i in range(5)})
    for edge in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]:
        g.add_edge(*edge)
    return g


class TestBatchReachability:
    def test_full_reach(self, diamond):
        assert reachable_from(diamond, 0) == {0, 1, 2, 3, 4}

    def test_partial_reach(self, diamond):
        assert reachable_from(diamond, 1) == {1, 3, 4}

    def test_missing_source(self, diamond):
        with pytest.raises(MissingNodeError):
            reachable_from(diamond, 42)


class TestIncrementalInsert:
    def test_gain_propagates(self, diamond):
        diamond.add_node(5, label="x")
        diamond.add_node(6, label="x")
        diamond.add_edge(5, 6)
        index = ReachabilityIndex(diamond, source=0)
        gained, lost = index.apply(Delta([insert(4, 5)]))
        assert gained == {5, 6}
        assert lost == set()
        assert index.answer()[6]

    def test_insert_between_reached_is_noop(self, diamond):
        index = ReachabilityIndex(diamond, source=0)
        meter = CostMeter()
        index.meter = meter
        gained, lost = index.apply(Delta([insert(1, 2)]))
        assert (gained, lost) == (set(), set())
        assert meter.total() == 0  # O(1): no traversal at all

    def test_insert_from_unreached_is_noop(self, diamond):
        diamond.add_node(9, label="x")
        index = ReachabilityIndex(diamond, source=1)
        gained, _ = index.apply(Delta([insert(9, 0)]))
        assert gained == set()
        assert not index.answer()[0]

    def test_insert_cost_bounded_by_gain(self):
        # Long chain beyond the insertion point: cost ~ gained region size,
        # not |G| (the bounded insertion algorithm of [38]).
        g = DiGraph(labels={i: "x" for i in range(1000)})
        for i in range(998):
            if i != 499:
                g.add_edge(i, i + 1)
        index = ReachabilityIndex(g, source=0)
        meter = CostMeter()
        index.meter = meter
        gained, _ = index.apply(Delta([insert(499, 500)]))
        assert len(gained) == 499
        assert meter.node_visits <= len(gained) + 1


class TestIncrementalDelete:
    def test_alternative_path_keeps_reach(self, diamond):
        index = ReachabilityIndex(diamond, source=0)
        gained, lost = index.apply(Delta([delete(1, 3)]))
        assert (gained, lost) == (set(), set())
        assert index.answer()[4]

    def test_losing_only_path(self, diamond):
        index = ReachabilityIndex(diamond, source=0)
        index.apply(Delta([delete(1, 3)]))
        gained, lost = index.apply(Delta([delete(2, 3)]))
        assert lost == {3, 4}
        assert not index.answer()[3]

    def test_mixed_batch_nets_out(self, diamond):
        index = ReachabilityIndex(diamond, source=0)
        # remove both paths to 3, then restore one: 3 and 4 flip twice.
        batch = Delta([delete(1, 3), delete(2, 3), insert(0, 3)])
        gained, lost = index.apply(batch)
        assert gained == set() and lost == set()
        assert index.answer()[4]

    def test_matches_recompute_randomized(self):
        import random

        from repro.graph.generators import label_alphabet, uniform_random_graph
        from repro.graph.updates import random_delta

        for seed in range(6):
            graph = uniform_random_graph(40, 120, label_alphabet(3), seed=seed)
            index = ReachabilityIndex(graph.copy(), source=0)
            delta = random_delta(graph, 30, seed=seed)
            index.apply(delta)
            assert index.reached == reachable_from(index.graph, 0)

"""Tests for d-hop neighborhoods (paper Section 4.1 notation)."""

import pytest

from repro.core.cost import CostMeter
from repro.graph import DiGraph, MissingNodeError
from repro.graph.neighborhood import (
    d_neighborhood,
    neighborhood_of_updates,
    nodes_within,
    undirected_distance,
)
from repro.core.delta import Delta, delete, insert


@pytest.fixture
def chain() -> DiGraph:
    # 0 -> 1 -> 2 -> 3 -> 4, plus a reverse edge 4 -> 0 far away.
    g = DiGraph()
    for node in range(5):
        g.add_node(node, label=str(node))
    for node in range(4):
        g.add_edge(node, node + 1)
    return g


class TestNodesWithin:
    def test_zero_radius_is_sources(self, chain):
        assert nodes_within(chain, [2], 0) == {2}

    def test_undirected_expansion(self, chain):
        # Node 2 sees 1 and 3 at one hop (predecessor and successor alike).
        assert nodes_within(chain, [2], 1) == {1, 2, 3}

    def test_two_hops(self, chain):
        assert nodes_within(chain, [2], 2) == {0, 1, 2, 3, 4}

    def test_union_of_sources(self, chain):
        assert nodes_within(chain, [0, 4], 1) == {0, 1, 3, 4}

    def test_missing_source_raises(self, chain):
        with pytest.raises(MissingNodeError):
            nodes_within(chain, [42], 1)

    def test_negative_radius_raises(self, chain):
        with pytest.raises(ValueError):
            nodes_within(chain, [0], -1)

    def test_meter_counts_visits(self, chain):
        meter = CostMeter()
        nodes_within(chain, [2], 1, meter=meter)
        assert meter.distinct_nodes == 3


class TestDNeighborhood:
    def test_induced_edges(self, chain):
        sub = d_neighborhood(chain, [2], 1)
        assert set(sub.nodes()) == {1, 2, 3}
        assert set(sub.edges()) == {(1, 2), (2, 3)}

    def test_labels_preserved(self, chain):
        sub = d_neighborhood(chain, [0], 1)
        assert sub.label(0) == "0"


class TestNeighborhoodOfUpdates:
    def test_covers_both_endpoints(self, chain):
        delta = Delta([insert(0, 4)])
        region = neighborhood_of_updates(chain, delta.edges(), 1)
        assert set(region.nodes()) == {0, 1, 3, 4}

    def test_skips_absent_endpoints(self, chain):
        region = neighborhood_of_updates(chain, [(0, 99)], 1)
        assert set(region.nodes()) == {0, 1}

    def test_empty_when_nothing_present(self, chain):
        region = neighborhood_of_updates(chain, [(98, 99)], 2)
        assert region.num_nodes == 0

    def test_delete_edges_also_seed(self, chain):
        delta = Delta([delete(1, 2)])
        region = neighborhood_of_updates(chain, delta.edges(), 0)
        assert set(region.nodes()) == {1, 2}


class TestUndirectedDistance:
    def test_zero(self, chain):
        assert undirected_distance(chain, 3, 3) == 0

    def test_direction_blind(self, chain):
        assert undirected_distance(chain, 4, 0) == 4

    def test_disconnected(self):
        g = DiGraph(labels={1: "a", 2: "b"})
        assert undirected_distance(g, 1, 2) is None

    def test_missing_nodes(self, chain):
        with pytest.raises(MissingNodeError):
            undirected_distance(chain, 0, 42)

"""Tests for cost instrumentation and the boundedness measures."""

import pytest

from repro.core.boundedness import changed, check_locality, fit_cost_against
from repro.core.cost import NULL_METER, CostLedger, CostMeter
from repro.core.delta import Delta, delete, insert
from repro.graph import DiGraph


class TestCostMeter:
    def test_counters(self):
        meter = CostMeter()
        meter.visit_node("a")
        meter.visit_node("a")
        meter.visit_node("b")
        meter.traverse_edge(3)
        meter.write()
        meter.pq_op(2)
        assert meter.node_visits == 3
        assert meter.distinct_nodes == 2
        assert meter.edges_traversed == 3
        assert meter.writes == 1
        assert meter.pq_ops == 2
        assert meter.total() == 3 + 3 + 1 + 2

    def test_snapshot_is_frozen(self):
        meter = CostMeter()
        meter.visit_node("a")
        snap = meter.snapshot()
        meter.visit_node("b")
        assert snap.node_visits == 1
        assert snap.total() == 1

    def test_reset(self):
        meter = CostMeter()
        meter.visit_node("a")
        meter.reset()
        assert meter.total() == 0
        assert meter.distinct_nodes == 0

    def test_null_meter_discards_everything(self):
        NULL_METER.visit_node("a")
        NULL_METER.traverse_edge()
        NULL_METER.write()
        NULL_METER.pq_op()
        assert NULL_METER.total() == 0

    def test_repr_mentions_counts(self):
        meter = CostMeter()
        meter.visit_node("a")
        assert "nodes=1" in repr(meter)


class TestCostLedger:
    def test_record_and_aggregate(self):
        ledger = CostLedger()
        meter = CostMeter()
        meter.visit_node("a")
        ledger.record("run", meter)
        meter.visit_node("b")
        ledger.record("run", meter)
        assert ledger.mean_total("run") == pytest.approx(1.5)
        assert ledger.max_total("run") == 2

    def test_empty_names(self):
        ledger = CostLedger()
        assert ledger.mean_total("nothing") == 0.0
        assert ledger.max_total("nothing") == 0


class TestChanged:
    def test_changed_formula(self):
        delta = Delta([insert(1, 2), delete(3, 4)])
        assert changed(delta, 7) == 9


class TestCheckLocality:
    @pytest.fixture
    def path(self):
        g = DiGraph()
        for i in range(6):
            g.add_node(i, label="x")
        for i in range(5):
            g.add_edge(i, i + 1)
        return g

    def test_local_run_passes(self, path):
        meter = CostMeter()
        meter.visit_node(2)
        meter.visit_node(3)
        report = check_locality(path, Delta([delete(2, 3)]), meter, radius=1)
        assert report.is_local
        assert report.escaped == frozenset()

    def test_escaping_run_fails(self, path):
        meter = CostMeter()
        meter.visit_node(5)  # far away from the update
        report = check_locality(path, Delta([delete(2, 3)]), meter, radius=1)
        assert not report.is_local
        assert 5 in report.escaped

    def test_non_graph_touches_ignored(self, path):
        meter = CostMeter()
        meter.visit_node(("comp", 3))  # bookkeeping key, not a graph node
        report = check_locality(path, Delta([delete(2, 3)]), meter, radius=0)
        assert report.is_local

    def test_extra_allowed(self, path):
        meter = CostMeter()
        meter.visit_node(5)
        report = check_locality(
            path, Delta([delete(2, 3)]), meter, radius=1, extra_allowed=frozenset({5})
        )
        assert report.is_local


class TestFitCost:
    def test_flat_series_is_size_independent(self):
        report = fit_cost_against([100, 1000, 10000], [40, 42, 44])
        assert report.is_size_independent
        assert report.growth_ratio < 1.2

    def test_growing_series_is_not(self):
        report = fit_cost_against([100, 1000, 10000], [100, 1000, 10000])
        assert not report.is_size_independent

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_cost_against([1, 2], [1])
        with pytest.raises(ValueError):
            fit_cost_against([], [])

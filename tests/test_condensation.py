"""Focused tests for the contracted graph G_c: merge-into-host, split
with host-keeping counters, rank interpolation and renumbering."""

import pytest

from repro.graph import DiGraph
from repro.scc import Condensation, CondensationError, tarjan_scc


def build(graph: DiGraph) -> Condensation:
    return Condensation.from_tarjan(graph, tarjan_scc(graph))


@pytest.fixture
def two_comps() -> tuple[DiGraph, Condensation]:
    # {0,1} <-> cycle, {2} sink, two parallel edges across.
    g = DiGraph(labels={i: "x" for i in range(3)},
                edges=[(0, 1), (1, 0), (0, 2), (1, 2)])
    return g, build(g)


class TestCounters:
    def test_initial_counter_aggregation(self, two_comps):
        graph, cond = two_comps
        big = cond.component(0)
        sink = cond.component(2)
        assert cond.succ[big][sink] == 2
        cond.check_against(graph)

    def test_add_and_remove_inter_edge(self, two_comps):
        graph, cond = two_comps
        big, sink = cond.component(0), cond.component(2)
        graph.add_edge(2, 0)  # now 2 -> 0 as well... wait: that merges!
        # undo: use a fresh pair to exercise counters without cycles
        graph.remove_edge(2, 0)
        assert cond.remove_inter_edge(big, sink) == 1
        graph.remove_edge(0, 2)
        assert cond.remove_inter_edge(big, sink) == 0
        graph.remove_edge(1, 2)
        with pytest.raises(CondensationError):
            cond.remove_inter_edge(big, sink)

    def test_intra_edge_rejected(self, two_comps):
        _, cond = two_comps
        comp = cond.component(0)
        with pytest.raises(CondensationError):
            cond.add_inter_edge(comp, comp)


class TestMerge:
    def test_merge_keeps_largest_id(self):
        g = DiGraph(labels={i: "x" for i in range(4)},
                    edges=[(0, 1), (1, 0), (0, 2), (2, 3)])
        cond = build(g)
        big = cond.component(0)      # {0, 1}
        mid = cond.component(2)      # {2}
        # simulate merging after inserting (3, 0): cycle over all comps
        g.add_edge(3, 0)
        merged = cond.merge([big, mid, cond.component(3)], new_rank=5.0)
        assert merged == big  # host identity preserved
        assert cond.component_nodes(merged) == {0, 1, 2, 3}
        cond.check_against(g)

    def test_merge_requires_two(self, two_comps):
        _, cond = two_comps
        with pytest.raises(CondensationError):
            cond.merge([cond.component(0)], new_rank=0.0)

    def test_merge_reaggregates_outside_counters(self):
        # comps A={0}, B={1}, C={2}; edges A->C, B->C (x2 via another edge),
        # then merge A,B: merged->C counter must be 3.
        g = DiGraph(labels={i: "x" for i in range(4)},
                    edges=[(0, 2), (1, 2), (1, 3), (3, 2)])
        cond = build(g)
        a, b = cond.component(0), cond.component(1)
        g.add_edge(0, 1)
        g.add_edge(1, 0)
        merged = cond.merge([a, b], new_rank=99.0)
        c = cond.component(2)
        assert cond.succ[merged][c] == 2  # (0,2) and (1,2)
        cond.check_against(g)

    def test_stale_id_raises_after_merge(self):
        g = DiGraph(labels={0: "x", 1: "x"}, edges=[(0, 1)])
        cond = build(g)
        a, b = cond.component(0), cond.component(1)
        g.add_edge(1, 0)
        merged = cond.merge([a, b], new_rank=1.0)
        dead = a if merged == b else b
        with pytest.raises(KeyError):
            cond.component_nodes(dead)


class TestSplit:
    def test_split_counters_and_ranks(self):
        # one 3-cycle with an external sink; split after deleting (2, 0).
        g = DiGraph(labels={i: "x" for i in range(4)},
                    edges=[(0, 1), (1, 2), (2, 0), (1, 3)])
        cond = build(g)
        comp = cond.component(0)
        g.remove_edge(2, 0)
        # reverse topological parts: sinks first
        parts = [frozenset({2}), frozenset({1}), frozenset({0})]
        new_ids = cond.split(comp, parts, g)
        assert len(new_ids) == 3
        assert cond.check_rank_invariant()
        cond.check_against(g)

    def test_split_partition_mismatch(self, two_comps):
        graph, cond = two_comps
        comp = cond.component(0)
        with pytest.raises(CondensationError):
            cond.split(comp, [frozenset({0}), frozenset({99})], graph)

    def test_split_host_keeps_identity(self):
        # 4-cycle {0..3} plus appendix node 4 closing a larger cycle;
        # deleting (4, 0) peels {4} off while the 4-cycle survives, and
        # the surviving (largest) part must keep the old component id.
        g = DiGraph(labels={i: "x" for i in range(5)})
        for i in range(3):
            g.add_edge(i, i + 1)
        g.add_edge(3, 0)
        g.add_edge(3, 4)
        g.add_edge(4, 0)
        cond = build(g)
        comp = cond.component(0)
        assert cond.component_nodes(comp) == {0, 1, 2, 3, 4}
        g.remove_edge(4, 0)
        parts = [frozenset({4}), frozenset({0, 1, 2, 3})]
        new_ids = cond.split(comp, parts, g)
        assert comp in new_ids
        assert cond.component_nodes(comp) == {0, 1, 2, 3}
        cond.check_against(g)


class TestRanks:
    def test_renumber_restores_integral_ranks(self):
        g = DiGraph(labels={i: "x" for i in range(4)},
                    edges=[(0, 1), (1, 2), (2, 3)])
        cond = build(g)
        # scramble ranks while keeping them valid
        for comp in cond.members:
            cond.rank[comp] *= 0.001
        cond.renumber()
        assert cond.check_rank_invariant()
        assert all(rank == int(rank) for rank in cond.rank.values())

    def test_renumber_rejects_cyclic_gc(self):
        g = DiGraph(labels={0: "x", 1: "x"}, edges=[(0, 1)])
        cond = build(g)
        a, b = cond.component(0), cond.component(1)
        # corrupt: fake a cycle in G_c
        cond.succ[b][a] = 1
        cond.pred[a][b] = 1
        with pytest.raises(CondensationError):
            cond.renumber()

    def test_add_singleton_below_all(self, two_comps):
        graph, cond = two_comps
        graph.add_node(99, label="x")
        comp = cond.add_singleton(99)
        assert cond.rank[comp] < min(
            rank for cid, rank in cond.rank.items() if cid != comp
        )
        with pytest.raises(CondensationError):
            cond.add_singleton(99)

    def test_components_in_rank_order(self):
        g = DiGraph(labels={i: "x" for i in range(3)}, edges=[(0, 1), (1, 2)])
        cond = build(g)
        order = cond.components_in_rank_order()
        # sinks first: node 2's component must precede node 0's
        assert order.index(cond.component(2)) < order.index(cond.component(0))

"""Tests for the ``repro-lint`` static-analysis suite.

Three layers keep the rules honest:

* **fixture tests** — for every rule, a ``flag_*`` snippet it must
  flag (with the expected finding count) and a ``pass_*`` snippet it
  must leave alone, installed into a synthetic project tree at the
  path the rule scopes to;
* **framework tests** — suppression comments, the baseline workflow,
  parse-error reporting, the protocol-drift self-guard, and CLI exit
  codes;
* **the self-run** — the full suite over this repository's ``src/``
  must be clean with an *empty* baseline; this is the tier-1 gate that
  keeps future PRs from eroding the invariants the rules encode.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.analysis import Project, run_checkers  # noqa: E402
from tools.analysis.__main__ import DEFAULT_BASELINE, main  # noqa: E402
from tools.analysis.checkers import ALL_CHECKERS, checkers_by_name  # noqa: E402
from tools.analysis.core import load_baseline  # noqa: E402

FIXTURES = REPO_ROOT / "tests" / "analysis_fixtures"

#: rule id -> (fixture dir, where the .py fixture lands in the
#: synthetic project, expected finding count from the flag fixture)
RULES = {
    "durability": ("durability", "src/repro/persist/mod.py", 4),
    "spec-drift": ("spec_drift", "src/repro/persist/mod.py", 2),
    "concurrency": ("concurrency", "src/repro/engine/mod.py", 2),
    "serving": ("serving", "src/repro/serving/mod.py", 2),
    "view-protocol": ("view_protocol", "src/repro/kws/mod.py", 7),
    "exceptions": ("exceptions", "src/repro/engine/mod.py", 2),
    "docstrings": ("docstrings", "src/repro/engine/mod.py", 4),
    "ipc": ("ipc", "src/repro/shardexec/mod.py", 5),
}


def build_project(tmp_path: Path, rule: str, kind: str) -> Path:
    """Install the rule's ``kind`` (flag/pass) fixture into a synthetic
    repo tree under ``tmp_path`` and return that root."""
    fixture_dir, target, _ = RULES[rule]
    source = FIXTURES / fixture_dir / f"{kind}_{fixture_dir}.py"
    destination = tmp_path / target
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(
        source.read_text(encoding="utf-8"), encoding="utf-8"
    )
    formats = FIXTURES / fixture_dir / "FORMATS.md"
    if formats.is_file():
        docs = tmp_path / "docs"
        docs.mkdir(exist_ok=True)
        (docs / "FORMATS.md").write_text(
            formats.read_text(encoding="utf-8"), encoding="utf-8"
        )
    return tmp_path


def run_rule(root: Path, rule: str):
    """Run exactly one rule over a synthetic project."""
    project = Project(root, [Path("src")])
    return run_checkers(project, checkers_by_name([rule]))


@pytest.mark.parametrize("rule", sorted(RULES))
def test_flag_fixture_is_flagged(tmp_path, rule):
    root = build_project(tmp_path, rule, "flag")
    findings = run_rule(root, rule)
    assert findings, f"{rule}: flag fixture produced no findings"
    assert {finding.rule for finding in findings} == {rule}
    assert len(findings) == RULES[rule][2], [
        finding.render() for finding in findings
    ]


@pytest.mark.parametrize("rule", sorted(RULES))
def test_pass_fixture_is_clean(tmp_path, rule):
    root = build_project(tmp_path, rule, "pass")
    findings = run_rule(root, rule)
    assert findings == [], [finding.render() for finding in findings]


@pytest.mark.parametrize("rule", sorted(RULES))
def test_suppression_comment_silences_py_findings(tmp_path, rule):
    """Appending ``# repro-lint: ignore[rule]`` to each flagged line
    silences exactly the findings in python files (doc-side findings,
    e.g. spec-drift's stale-catalogue row, are not suppressible)."""
    root = build_project(tmp_path, rule, "flag")
    before = run_rule(root, rule)
    target = root / RULES[rule][1]
    lines = target.read_text(encoding="utf-8").splitlines()
    for finding in before:
        if finding.path.endswith(".py"):
            index = finding.line - 1
            lines[index] += f"  # repro-lint: ignore[{rule}]"
    target.write_text("\n".join(lines) + "\n", encoding="utf-8")
    after = run_rule(root, rule)
    assert all(not finding.path.endswith(".py") for finding in after)
    assert len(after) < len(before)


def test_specific_durability_messages(tmp_path):
    root = build_project(tmp_path, "durability", "flag")
    rendered = "\n".join(f.render() for f in run_rule(root, "durability"))
    assert "without an os.fsync" in rendered
    assert "fsync_directory" in rendered
    assert "write_text" in rendered
    assert "gzip.open" in rendered
    assert "codec wrapper" in rendered


def test_spec_drift_reports_both_directions(tmp_path):
    root = build_project(tmp_path, "spec-drift", "flag")
    findings = run_rule(root, "spec-drift")
    messages = {finding.message for finding in findings}
    assert any("%bogus-header" in message for message in messages)
    assert any("%commit" in message for message in messages)
    doc_paths = {f.path for f in findings if f.path.endswith("FORMATS.md")}
    assert doc_paths == {"docs/FORMATS.md"}


def _install_dataflow_fixture(tmp_path, kind: str, target: str) -> Path:
    """Install a dataflow view-protocol fixture at ``target`` in a
    synthetic tree (outside the RULES table: the rule id already has a
    fixture row, and ``test_all_rules_registered`` pins the key set)."""
    source = FIXTURES / "view_protocol" / f"{kind}_view_protocol_dataflow.py"
    destination = tmp_path / target
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(
        source.read_text(encoding="utf-8"), encoding="utf-8"
    )
    return tmp_path


def test_view_protocol_dataflow_any_method_triggers(tmp_path):
    """Under ``src/repro/dataflow/`` a class defining any protocol
    method is held to the full table: the partial view (apply/snapshot/
    relevance, no absorb) is missing the other five methods."""
    root = _install_dataflow_fixture(tmp_path, "flag", "src/repro/dataflow/mod.py")
    findings = run_rule(root, "view-protocol")
    assert len(findings) == 5, [finding.render() for finding in findings]
    missing = {
        name
        for finding in findings
        for name in ("insert_edge", "delete_edge", "absorb", "restore",
                     "empty_output")
        if f"missing {name}" in finding.message
    }
    assert missing == {
        "insert_edge", "delete_edge", "absorb", "restore", "empty_output"
    }


def test_view_protocol_pair_trigger_unchanged_outside_dataflow(tmp_path):
    """The same partial class outside ``src/repro/dataflow/`` never
    becomes a candidate — the absorb+snapshot pair trigger is intact."""
    root = _install_dataflow_fixture(tmp_path, "flag", "src/repro/kws/mod.py")
    assert run_rule(root, "view-protocol") == []


def test_view_protocol_dataflow_conforming_view_is_clean(tmp_path):
    root = _install_dataflow_fixture(tmp_path, "pass", "src/repro/dataflow/mod.py")
    findings = run_rule(root, "view-protocol")
    assert findings == [], [finding.render() for finding in findings]


def test_view_protocol_drift_guard(tmp_path):
    """Extending the protocol class forces the rule table to catch up."""
    view = tmp_path / "src" / "repro" / "engine" / "view.py"
    view.parent.mkdir(parents=True)
    view.write_text(
        '"""Protocol module."""\n\n\n'
        "class IncrementalView:\n"
        '    """Protocol."""\n\n'
        "    def migrate(self, other):\n"
        '        """A brand-new protocol method."""\n',
        encoding="utf-8",
    )
    findings = run_rule(tmp_path, "view-protocol")
    assert len(findings) == 1
    assert "migrate" in findings[0].message


def test_parse_error_is_reported_not_raised(tmp_path):
    bad = tmp_path / "src" / "repro" / "engine" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def broken(:\n", encoding="utf-8")
    project = Project(tmp_path, [Path("src")])
    findings = run_checkers(project, list(ALL_CHECKERS))
    assert [finding.rule for finding in findings] == ["parse-error"]


def test_unknown_rule_is_an_error():
    with pytest.raises(ValueError):
        checkers_by_name(["no-such-rule"])


def test_cli_baseline_workflow(tmp_path, capsys):
    """Findings can be accepted into a baseline, which then gates only
    *new* findings."""
    root = build_project(tmp_path, "concurrency", "flag")
    argv = ["src", "--root", str(root)]
    assert main(argv) == 1
    assert main(argv + ["--update-baseline"]) == 0
    assert (root / DEFAULT_BASELINE).is_file()
    assert main(argv) == 0  # legacy findings are baselined
    target = root / RULES["concurrency"][1]
    target.write_text(
        target.read_text(encoding="utf-8")
        + "\n\ndef another():\n"
        + '    """New unsynchronized write."""\n'
        + "    global _FLAG\n"
        + "    _FLAG = False\n",
        encoding="utf-8",
    )
    assert main(argv) == 1  # the new finding is not baselined
    capsys.readouterr()


def test_cli_list_rules_and_usage_errors(tmp_path, capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for checker in ALL_CHECKERS:
        assert checker.name in out
    assert main(["src", "--root", str(tmp_path / "nowhere")]) == 2
    root = build_project(tmp_path, "docstrings", "pass")
    assert main(["src", "--root", str(root), "--rules", "bogus"]) == 2
    capsys.readouterr()


def test_self_run_repository_is_clean(capsys):
    """The tier-1 gate: the full suite over src/ is clean, and the
    committed baseline is empty (nothing grandfathered)."""
    assert load_baseline(REPO_ROOT / DEFAULT_BASELINE) == frozenset()
    status = main(["src", "--root", str(REPO_ROOT), "--no-baseline"])
    output = capsys.readouterr().out
    assert status == 0, output
    assert "0 finding(s)" in output


def test_serving_rule_respects_the_locked_suffix_convention(tmp_path):
    """A ``*_locked`` method writing state bare is sanctioned; renaming
    it away from the convention resurrects the finding."""
    root = build_project(tmp_path, "serving", "pass")
    target = root / RULES["serving"][1]
    text = target.read_text(encoding="utf-8")
    assert run_rule(root, "serving") == []
    target.write_text(
        text.replace("_publish_locked", "_publish_inner"), encoding="utf-8"
    )
    findings = run_rule(root, "serving")
    assert len(findings) == 1
    assert "_publish_inner" in findings[0].message


def test_ipc_rule_keys_on_producer_annotations(tmp_path):
    """A producer's return annotation is what sanctions its result;
    dropping the annotation resurrects the finding."""
    root = build_project(tmp_path, "ipc", "pass")
    target = root / RULES["ipc"][1]
    text = target.read_text(encoding="utf-8")
    assert run_rule(root, "ipc") == []
    target.write_text(text.replace(" -> SealAck", ""), encoding="utf-8")
    findings = run_rule(root, "ipc")
    assert len(findings) == 1
    assert "seal" in findings[0].message


def test_all_rules_registered():
    assert len(ALL_CHECKERS) >= 7
    assert {checker.name for checker in ALL_CHECKERS} == set(RULES)

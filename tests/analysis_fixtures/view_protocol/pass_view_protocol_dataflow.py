"""Fixture: a conforming user-defined dataflow view (plus bystanders).

The complete 8-method table satisfies the strict any-method trigger;
runtime-style helper classes defining no protocol method at all are
never candidates, even under ``src/repro/dataflow/``.
"""


class UserView:
    """A minimal conforming dataflow view."""

    def insert_edge(self, source, target, **labels):
        """Unit insert."""
        return None

    def delete_edge(self, source, target):
        """Unit delete."""
        return None

    def apply(self, delta):
        """Batch path."""
        return None

    def absorb(self, delta, new_nodes):
        """Fan-out path."""
        return None

    def snapshot(self):
        """Serialize."""
        return ()

    @classmethod
    def restore(cls, graph, state, meter=None):
        """Rebuild."""
        return cls()

    def relevance(self):
        """Routing filter."""
        return None

    def empty_output(self):
        """Empty ΔO."""
        return None


class CombinatorNode:
    """Runtime-style helper: no protocol methods, never a candidate."""

    def evaluate(self):
        """Recompute."""
        return None

    def rows(self):
        """Iterate."""
        return iter(())

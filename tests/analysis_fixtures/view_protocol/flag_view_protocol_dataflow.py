"""Fixture: a user-defined dataflow view that dodges the pair trigger.

Defines ``apply`` + ``snapshot`` but never ``absorb`` — outside
``src/repro/dataflow/`` this is not a view candidate at all; inside it,
the strict any-method trigger holds the class to the full table.
"""


class PartialUserView:
    """Implements the interactive half of the protocol, forgets the
    engine fan-out and persistence half entirely."""

    def apply(self, delta):
        """Batch path."""
        return None

    def snapshot(self):
        """Serialize."""
        return ()

    def relevance(self):
        """Routing filter."""
        return None

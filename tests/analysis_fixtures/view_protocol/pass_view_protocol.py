"""Fixture: the complete IncrementalView method table."""


class CompleteView:
    """A minimal conforming view."""

    def insert_edge(self, source, target, **labels):
        """Unit insert."""
        return None

    def delete_edge(self, source, target):
        """Unit delete."""
        return None

    def apply(self, delta):
        """Batch path."""
        return None

    def absorb(self, delta, new_nodes):
        """Fan-out path."""
        return None

    def snapshot(self):
        """Serialize."""
        return ()

    @classmethod
    def restore(cls, graph, state, meter=None):
        """Rebuild."""
        return cls()

    def relevance(self):
        """Routing filter."""
        return None

    def empty_output(self):
        """Empty ΔO."""
        return None


class NotAView:
    """Only snapshot — not a candidate, so nothing is required."""

    def snapshot(self):
        """Some unrelated snapshot."""
        return ()

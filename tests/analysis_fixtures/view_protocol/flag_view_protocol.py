"""Fixture: a view candidate missing half the protocol."""


class BrokenView:
    """Defines absorb+snapshot (so it *is* a view candidate), forgets
    five protocol methods, breaks absorb's arity, and restores via an
    instance method."""

    def absorb(self, delta):
        """Wrong arity: the engine calls absorb(delta, new_nodes)."""
        return delta

    def snapshot(self):
        """Fine."""
        return ()

    def restore(self, graph, state, meter=None):
        """Not a classmethod: persistence has no instance to call on."""
        return self

"""Fixture: directive uses and the catalogue agree exactly."""


def scan(lines):
    """Both catalogued directives appear; no extras."""
    framed = [line for line in lines if line.startswith("%batch")]
    closed = [line for line in lines if line.startswith("%commit")]
    return framed, closed

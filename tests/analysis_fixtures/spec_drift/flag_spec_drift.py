"""Fixture: drifts from the catalogue in both directions.

Uses an undocumented ``%bogus-header`` (via a module constant resolved
through ``render_directive``) and never touches the documented
``%commit``.
"""

MAGIC = "bogus-header"


def scan(lines):
    """Only %batch is used from the catalogue."""
    return [line for line in lines if line.startswith("%batch")]


def render_header(render_directive):
    """Emits a directive the catalogue does not list."""
    return render_directive(MAGIC, 1)

"""Pass fixture for rule ``ipc`` — every payload is a registered
message: a direct constructor, an annotated producer's result, a
variable bound to a constructor, a parameter (no local binding, so
dataflow is the runtime allowlist's job), and the coordinator-side
``_send`` wrapper fed a constructor.
"""

MESSAGE_TYPES = ()


def register_message(cls):
    """Mini registry so the fixture is self-contained."""
    global MESSAGE_TYPES  # repro-lint: single-init
    MESSAGE_TYPES = MESSAGE_TYPES + (cls,)
    return cls


@register_message
class SealAck:
    """Seal acknowledgement."""


@register_message
class ErrorReply:
    """Failure surfaced to the coordinator."""


def seal(window) -> SealAck:
    """An annotated producer counts as a registered source."""
    return SealAck()


class Pool:
    """Coordinator side: the ``_send`` wrapper's message argument is
    held to the same standard as a raw pipe send."""

    def _send(self, index, message):
        self.pipes[index].send(message)

    def broadcast(self, window):
        for index in range(len(self.pipes)):
            self._send(index, SealAck())


def pump(conn, window, message):
    """Worker side: constructors, producers, traced locals, params."""
    conn.send(ErrorReply())
    conn.send(seal(window))
    reply = ErrorReply()
    conn.send(reply)
    conn.send(message)

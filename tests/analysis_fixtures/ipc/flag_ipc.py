"""Flag fixture for rule ``ipc`` — improvised payloads on the pipe.

Five sends ship objects that are not registered protocol messages:
two literals, an unregistered call result, a variable bound to an
unregistered call, and a lambda.
"""

MESSAGE_TYPES = ()


def register_message(cls):
    """Mini registry so the fixture is self-contained."""
    global MESSAGE_TYPES  # repro-lint: single-init
    MESSAGE_TYPES = MESSAGE_TYPES + (cls,)
    return cls


@register_message
class SealAck:
    """The one registered message this fixture knows."""


def reply(conn, engine, views):
    """Every send here improvises its payload."""
    conn.send({"window": 1, "ok": True})
    conn.send((1, 2, 3))
    conn.send(engine.snapshot())
    payload = views.copy()
    conn.send(payload)
    conn.send(lambda: None)

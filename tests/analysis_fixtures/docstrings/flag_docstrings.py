CONSTANT = 1


def public_function():
    return CONSTANT


class PublicClass:
    def method(self):
        return None

"""Fixture: fully documented public API."""


def public_function():
    """Do the thing."""


def _private_helper():
    return None


class PublicClass:
    """Documented."""

    def method(self):
        """Documented too."""

    def _private(self):
        return None

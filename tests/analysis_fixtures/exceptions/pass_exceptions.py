"""Fixture: narrow handlers and structured re-raise."""


class TaskError(RuntimeError):
    """Wrapper carrying the original failure as context."""


def narrow(task):
    """Named exception types are always fine."""
    try:
        task()
    except (ValueError, OSError):
        return None


def wrap(task):
    """Broad catch is sanctioned when the handler re-raises."""
    try:
        task()
    except Exception as exc:
        raise TaskError("task failed") from exc

"""Fixture: swallowed broad handlers."""


def swallow(task):
    """Broad catch, no re-raise."""
    try:
        task()
    except Exception:
        return None


def bare(task):
    """Bare except, the worst of all."""
    try:
        task()
    except:
        pass

"""Pass fixture for the ``serving`` rule: every sanctioned shape —
writes under the owned lock, the ``*_locked`` caller-holds-the-lock
convention, and a lock-free event-loop-confined class the rule must
leave alone."""

import threading


class LeasePool:
    """Owns ``self._pool_lock`` and writes state only under it."""

    def __init__(self):
        self._pool_lock = threading.Lock()
        self._leases = 0
        self._generation = 0

    def acquire(self):
        """Guarded bump: the lexical ``with`` satisfies the rule."""
        with self._pool_lock:
            self._leases += 1
            return self._leases

    def publish(self, generation):
        """Delegation into a ``*_locked`` helper, under the lock."""
        with self._pool_lock:
            self._publish_locked(generation)

    def _publish_locked(self, generation):
        """Caller holds the lock — exempt by the suffix convention."""
        self._generation = generation


class Frontend:
    """No lock attribute: single-threaded by design, never checked."""

    def __init__(self):
        self._inflight = 0

    def admit(self):
        """Event-loop-confined counter; no guard required."""
        self._inflight += 1

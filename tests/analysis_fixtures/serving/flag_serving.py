"""Flag fixture for the ``serving`` rule: a lock-owning class writing
shared instance state outside any lock — both assignment shapes the
rule must catch (plain store and augmented update)."""

import threading


class LeasePool:
    """Owns ``self._pool_lock``, so its instance state is opted in."""

    def __init__(self):
        self._pool_lock = threading.Lock()
        self._leases = 0
        self._generation = 0

    def acquire(self):
        """Racy counter bump: two admitting threads lose an increment."""
        self._leases += 1  # finding 1: unguarded augmented write
        return self._leases

    def publish(self, generation):
        """Racy publication: readers can observe a half-applied bump."""
        self._generation = generation  # finding 2: unguarded store

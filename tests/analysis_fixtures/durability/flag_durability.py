"""Fixture: every write below violates the durability discipline."""

import gzip
import os
from pathlib import Path


def naked_write(path):
    """Write-mode open with no os.fsync in the function."""
    with open(path, "w", encoding="utf-8") as stream:
        stream.write("data")


def compressed_naked_write(path):
    """A codec wrapper does not exempt the stream from fsync."""
    with gzip.open(path, "wt", encoding="utf-8") as stream:
        stream.write("data")


def rename_without_dir_fsync(path, temp):
    """Content is fsynced but the rename's directory entry is not."""
    with open(temp, "w", encoding="utf-8") as stream:
        stream.write("data")
        stream.flush()
        os.fsync(stream.fileno())
    os.replace(temp, path)


def convenience_write(path):
    """Path.write_text truncates in place and never fsyncs."""
    Path(path).write_text("data", encoding="utf-8")

"""Fixture: the sanctioned temp-and-rename + fsync discipline."""

import gzip
import os


def fsync_directory(directory):
    """Flush a directory's entry table (no write-mode open here)."""
    handle = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(handle)
    finally:
        os.close(handle)


def durable_write(path, temp):
    """Temp file, fsync content, atomic rename, fsync directory."""
    with open(temp, "w", encoding="utf-8") as stream:
        stream.write("data")
        stream.flush()
        os.fsync(stream.fileno())
    os.replace(temp, path)
    fsync_directory(path.parent)


def durable_compressed_write(path, temp):
    """Compressed bytes ride the identical discipline."""
    with gzip.open(temp, "wt", encoding="utf-8") as stream:
        stream.write("data")
        stream.flush()
        os.fsync(stream.fileno())
    os.replace(temp, path)
    fsync_directory(path.parent)


def read_only(path):
    """Read-mode opens are not writes."""
    with open(path, "r", encoding="utf-8") as stream:
        return stream.read()


def compressed_read_only(path):
    """Default (read) codec opens are not writes either."""
    with gzip.open(path, "rt", encoding="utf-8") as stream:
        return stream.read()

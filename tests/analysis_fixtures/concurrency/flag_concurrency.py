"""Fixture: unsynchronized writes to module globals."""

_POOL = None
_FLAG = False


def lazy_pool(factory):
    """The classic check-then-create race."""
    global _POOL
    if _POOL is None:
        _POOL = factory()
    return _POOL


def set_flag():
    """A bare global flag write reachable from threads."""
    global _FLAG
    _FLAG = True

"""Fixture: lock-guarded double-checked init plus a registered
single-init global."""

import threading

_POOL = None
_POOL_LOCK = threading.Lock()
_REGISTRY = None  # repro-lint: single-init


def lazy_pool(factory):
    """Double-checked creation under the module lock."""
    global _POOL
    pool = _POOL
    if pool is None:
        with _POOL_LOCK:
            pool = _POOL
            if pool is None:
                pool = factory()
                _POOL = pool
    return pool


def install_registry(registry):
    """Writes a global registered as single-init (set before threads)."""
    global _REGISTRY
    _REGISTRY = registry

"""Tests for IncKWS (paper Section 4.2): unit insertion (Fig. 1), unit
deletion (Fig. 3), batch processing, ΔO reporting, and locality."""

import pytest

from repro.core.boundedness import check_locality
from repro.core.cost import CostMeter
from repro.core.delta import Delta, delete, insert
from repro.graph import DiGraph
from repro.graph.generators import label_alphabet, uniform_random_graph
from repro.graph.updates import random_delta
from repro.kws import KWSIndex, KWSQuery, compute_kdist, distance_profile, inc_kws_n, verify_kdist

ALPHABET = label_alphabet(6)


def fresh_profile(graph, query):
    return distance_profile(compute_kdist(graph, query))


@pytest.fixture
def small() -> DiGraph:
    g = DiGraph(labels={0: "a", 1: "b", 2: "c", 3: "b", 4: "a"})
    for edge in [(0, 1), (1, 2), (0, 3), (3, 4), (2, 4)]:
        g.add_edge(*edge)
    return g


class TestInsert:
    def test_shortcut_updates_dist(self, small):
        index = KWSIndex(small, KWSQuery(("c",), 3))
        assert index.kdist.dist(0, "c") == 2
        index.insert_edge(0, 2)
        assert index.kdist.dist(0, "c") == 1
        verify_kdist(index.graph, index.kdist)

    def test_no_improvement_no_change(self, small):
        index = KWSIndex(small, KWSQuery(("a",), 2))
        delta_o = index.insert_edge(1, 3)  # a-dist(1) already 2 via 2->4... via 3->4 too
        verify_kdist(index.graph, index.kdist)
        # equal-dist insertion must not rewrite next pointers
        assert not delta_o.added and not delta_o.removed

    def test_propagation_to_ancestors(self):
        # chain 4 <- 3 <- 2 <- 1 <- 0 with target t(a); inserting 4 -> t
        # improves every ancestor within the bound.
        g = DiGraph(labels={i: "x" for i in range(5)} | {"t": "a"})
        for i in range(4):
            g.add_edge(i + 1, i)
        index = KWSIndex(g, KWSQuery(("a",), 3))
        assert index.profile() == {"t": {"a": 0}}  # t matches itself
        delta_o = index.insert_edge(0, "t")
        assert index.kdist.dist(0, "a") == 1
        assert index.kdist.dist(2, "a") == 3
        assert index.kdist.dist(3, "a") is None  # bound cuts at 3
        assert set(delta_o.added) == {0, 1, 2}
        verify_kdist(index.graph, index.kdist)

    def test_insert_with_new_keyword_node(self, small):
        index = KWSIndex(small, KWSQuery(("z",), 2))
        assert index.roots() == set()
        delta_o = index.insert_edge(2, 99, target_label="z")
        assert index.kdist.dist(99, "z") == 0
        assert index.kdist.dist(2, "z") == 1
        assert index.kdist.dist(1, "z") == 2
        assert 99 in delta_o.added and 2 in delta_o.added
        verify_kdist(index.graph, index.kdist)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_inserts_match_recompute(self, seed):
        import random

        graph = uniform_random_graph(40, 120, ALPHABET, seed=seed)
        query = KWSQuery((ALPHABET[0], ALPHABET[1]), 2)
        index = KWSIndex(graph, query)
        rng = random.Random(seed)
        nodes = list(graph.nodes())
        done = 0
        while done < 10:
            source, target = rng.choice(nodes), rng.choice(nodes)
            if source == target or graph.has_edge(source, target):
                continue
            index.insert_edge(source, target)
            done += 1
        verify_kdist(index.graph, index.kdist)
        assert index.profile() == fresh_profile(index.graph, query)


class TestDelete:
    def test_reroute_on_delete(self, small):
        index = KWSIndex(small, KWSQuery(("a",), 3))
        # node 1's a-path is 1->2->4; delete (2,4): reroute or drop.
        delta_o = index.delete_edge(2, 4)
        assert index.kdist.dist(1, "a") is None  # no alternative within 3...
        verify_kdist(index.graph, index.kdist)
        assert 1 in delta_o.removed or 1 not in index.roots()

    def test_delete_unused_edge_is_noop(self, small):
        index = KWSIndex(small, KWSQuery(("a",), 2))
        meter = CostMeter()
        index.meter = meter
        delta_o = index.delete_edge(0, 1)  # not on any chosen a-path
        assert delta_o.is_empty
        verify_kdist(index.graph, index.kdist)

    def test_reroute_through_alternative(self):
        # 0 -> 1 -> t(a), 0 -> 2 -> t; chosen path via min(1,2)=1.
        g = DiGraph(labels={0: "x", 1: "x", 2: "x", "t": "a"})
        for edge in [(0, 1), (0, 2), (1, "t"), (2, "t")]:
            g.add_edge(*edge)
        index = KWSIndex(g, KWSQuery(("a",), 2))
        assert index.kdist.get(0, "a").next == 1
        delta_o = index.delete_edge(1, "t")
        assert index.kdist.get(0, "a").next == 2
        assert index.kdist.dist(0, "a") == 2
        assert 0 in delta_o.rerouted
        verify_kdist(index.graph, index.kdist)

    def test_distance_increase_within_bound(self):
        # 0 -> t(a) and 0 -> 1 -> 2 -> t: deletion lengthens 0's path 1 -> 3.
        g = DiGraph(labels={0: "x", 1: "x", 2: "x", "t": "a"})
        for edge in [(0, "t"), (0, 1), (1, 2), (2, "t")]:
            g.add_edge(*edge)
        index = KWSIndex(g, KWSQuery(("a",), 3))
        assert index.kdist.dist(0, "a") == 1
        index.delete_edge(0, "t")
        assert index.kdist.dist(0, "a") == 3
        verify_kdist(index.graph, index.kdist)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_deletes_match_recompute(self, seed):
        import random

        graph = uniform_random_graph(40, 140, ALPHABET, seed=seed)
        query = KWSQuery((ALPHABET[0], ALPHABET[1]), 2)
        index = KWSIndex(graph, query)
        rng = random.Random(1000 + seed)
        for _ in range(10):
            edges = list(index.graph.edges())
            if not edges:
                break
            index.delete_edge(*rng.choice(edges))
        verify_kdist(index.graph, index.kdist)
        assert index.profile() == fresh_profile(index.graph, query)


class TestBatch:
    @pytest.mark.parametrize("seed", range(10))
    def test_batch_matches_recompute(self, seed):
        graph = uniform_random_graph(40, 130, ALPHABET, seed=seed)
        query = KWSQuery((ALPHABET[0], ALPHABET[1], ALPHABET[2]), 2)
        delta = random_delta(graph, 30, seed=seed)
        expected = fresh_profile(delta.applied(graph), query)
        index = KWSIndex(graph.copy(), query)
        index.apply(delta)
        verify_kdist(index.graph, index.kdist)
        assert index.profile() == expected

    def test_batch_with_new_nodes(self):
        graph = uniform_random_graph(25, 60, ALPHABET, seed=3)
        query = KWSQuery((ALPHABET[0], ALPHABET[1]), 2)
        delta = random_delta(
            graph, 20, seed=4, new_node_fraction=0.5, alphabet=ALPHABET[:2]
        )
        expected = fresh_profile(delta.applied(graph), query)
        index = KWSIndex(graph.copy(), query)
        index.apply(delta)
        assert index.profile() == expected
        verify_kdist(index.graph, index.kdist)

    def test_delta_output_equation(self):
        # Q(G ⊕ ΔG) = Q(G) ⊕ ΔO at the root-set level.
        graph = uniform_random_graph(40, 130, ALPHABET, seed=21)
        query = KWSQuery((ALPHABET[0], ALPHABET[1]), 2)
        index = KWSIndex(graph.copy(), query)
        roots_before = set(index.roots())
        delta = random_delta(graph, 26, seed=22)
        delta_o = index.apply(delta)
        assert (roots_before - set(delta_o.removed)) | set(delta_o.added) == set(
            index.roots()
        )
        assert set(delta_o.removed) <= roots_before
        assert not set(delta_o.added) & roots_before

    def test_batch_agrees_with_unit_at_a_time(self):
        graph = uniform_random_graph(35, 110, ALPHABET, seed=31)
        query = KWSQuery((ALPHABET[0], ALPHABET[1]), 2)
        delta = random_delta(graph, 24, seed=32)
        batch_index = KWSIndex(graph.copy(), query)
        batch_index.apply(delta)
        unit_index = KWSIndex(graph.copy(), query)
        inc_kws_n(unit_index, delta)
        assert batch_index.profile() == unit_index.profile()

    def test_rerouted_roots_reported(self, small):
        index = KWSIndex(small, KWSQuery(("a",), 3))
        # reroute node 1's path by deleting (2,4) and inserting (2, 0):
        # new path 1 -> 2 -> 0(a), dist stays 2.
        delta_o = index.apply(Delta([delete(2, 4), insert(2, 0)]))
        assert index.kdist.dist(1, "a") == 2
        assert 1 in delta_o.rerouted
        verify_kdist(index.graph, index.kdist)

    @pytest.mark.parametrize("rho", [0.25, 1.0, 4.0])
    def test_rho_variations(self, rho):
        graph = uniform_random_graph(40, 140, ALPHABET, seed=41)
        query = KWSQuery((ALPHABET[0], ALPHABET[1]), 2)
        delta = random_delta(graph, 28, rho=rho, seed=42)
        expected = fresh_profile(delta.applied(graph), query)
        index = KWSIndex(graph.copy(), query)
        index.apply(delta)
        assert index.profile() == expected


class TestLocality:
    def test_unit_insert_confined_to_neighborhood(self):
        # Long chain; an insertion near one end must not touch the far end.
        g = DiGraph(labels={i: "x" for i in range(200)} | {"t": "a"})
        for i in range(199):
            g.add_edge(i + 1, i)
        g.add_edge(0, "t")
        bound = 2
        index = KWSIndex(g, KWSQuery(("a",), bound))
        meter = CostMeter()
        index.meter = meter
        index.insert_edge(5, "t")
        delta = Delta([insert(5, "t")])
        report = check_locality(index.graph, delta, meter, radius=2 * bound)
        assert report.is_local, f"escaped: {report.escaped}"

    def test_unit_delete_confined_to_neighborhood(self):
        g = DiGraph(labels={i: "x" for i in range(200)} | {"t": "a"})
        for i in range(199):
            g.add_edge(i + 1, i)
        g.add_edge(0, "t")
        g.add_edge(1, "t")
        bound = 2
        index = KWSIndex(g, KWSQuery(("a",), bound))
        meter = CostMeter()
        index.meter = meter
        index.delete_edge(0, "t")
        report = check_locality(
            index.graph, Delta([delete(0, "t")]), meter, radius=2 * bound
        )
        assert report.is_local, f"escaped: {report.escaped}"

    def test_batch_confined_to_neighborhood(self):
        graph = uniform_random_graph(300, 600, ALPHABET, seed=51)
        bound = 2
        query = KWSQuery((ALPHABET[0],), bound)
        index = KWSIndex(graph, query)
        meter = CostMeter()
        index.meter = meter
        delta = random_delta(graph, 6, seed=52)
        index.apply(delta)
        report = check_locality(index.graph, delta, meter, radius=2 * bound)
        assert report.is_local, f"escaped: {report.escaped}"

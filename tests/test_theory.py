"""Tests for Δ-reductions (Lemma 2) and the Theorem 1 gadget witnesses."""

import pytest

from repro.core.delta import Delta, delete, insert
from repro.core.ssrp import ReachabilityIndex, reachable_from
from repro.graph.generators import label_alphabet, uniform_random_graph
from repro.graph.updates import random_delta
from repro.rpq import matches_only
from repro.theory import (
    RPQ_GADGET_QUERY,
    SSRPInstance,
    SSRPToRPQ,
    measure_kws_witness,
    measure_rpq_witness,
    measure_scc_witness,
    measure_ssrp_deletion_witness,
    rpq_two_cycle_gadget,
    solve_ssrp_via_rpq,
    solve_ssrp_via_scc,
    ssrp_chain_gadget,
)

ALPHABET = label_alphabet(4)


def direct_ssrp_delta(instance: SSRPInstance, delta: Delta):
    """Ground truth: run the dedicated SSRP index."""
    index = ReachabilityIndex(instance.graph.copy(), instance.source)
    return index.apply(delta)


class TestSSRPToRPQ:
    def test_instance_mapping_reflects_reachability(self):
        graph = uniform_random_graph(25, 60, ALPHABET, seed=1)
        instance = SSRPInstance(graph, source=0)
        rpq_graph, query = SSRPToRPQ().map_instance(instance)
        matches = matches_only(rpq_graph, query)
        reached_via_rpq = {target for source, target in matches if source == 0}
        assert reached_via_rpq == reachable_from(graph, 0)

    @pytest.mark.parametrize("seed", range(5))
    def test_end_to_end_reduction_property(self, seed):
        # the defining Δ-reduction equation: f_o(ΔO2) == ΔO1
        graph = uniform_random_graph(20, 50, ALPHABET, seed=seed)
        instance = SSRPInstance(graph.copy(), source=0)
        delta = random_delta(graph, 12, seed=seed)
        expected = direct_ssrp_delta(instance, delta)
        via_rpq = solve_ssrp_via_rpq(
            SSRPInstance(graph.copy(), source=0), delta
        )
        assert via_rpq == expected

    def test_unit_deletion_case(self):
        # the paper's Theorem 1 case: unboundedness transported under
        # unit deletions — the reduction must be exact there.
        graph = uniform_random_graph(20, 60, ALPHABET, seed=9)
        edge = next(iter(graph.edges()))
        delta = Delta([delete(*edge)])
        expected = direct_ssrp_delta(SSRPInstance(graph.copy(), 0), delta)
        via_rpq = solve_ssrp_via_rpq(SSRPInstance(graph.copy(), 0), delta)
        assert via_rpq == expected


class TestSSRPToSCC:
    @pytest.mark.parametrize("seed", range(5))
    def test_end_to_end_reduction_property(self, seed):
        graph = uniform_random_graph(18, 45, ALPHABET, seed=100 + seed)
        delta = random_delta(graph, 10, seed=seed)
        expected = direct_ssrp_delta(SSRPInstance(graph.copy(), 0), delta)
        via_scc = solve_ssrp_via_scc(SSRPInstance(graph.copy(), 0), delta)
        assert via_scc == expected

    def test_gaining_reachability(self):
        from repro.graph import DiGraph

        g = DiGraph(labels={0: "n", 1: "n", 2: "n"}, edges=[(1, 2)])
        delta = Delta([insert(0, 1)])
        gained, lost = solve_ssrp_via_scc(SSRPInstance(g.copy(), 0), delta)
        assert gained == {1, 2}
        assert lost == set()

    def test_losing_reachability(self):
        from repro.graph import DiGraph

        g = DiGraph(labels={0: "n", 1: "n", 2: "n"}, edges=[(0, 1), (1, 2)])
        delta = Delta([delete(0, 1)])
        gained, lost = solve_ssrp_via_scc(SSRPInstance(g.copy(), 0), delta)
        assert gained == set()
        assert lost == {1, 2}


class TestFig9Gadget:
    def test_match_evolution(self):
        # Q(G) = Q(G+Δ1) = Q(G+Δ2) = ∅; Q(G+Δ1+Δ2) = {(v_i, w)}.
        n = 4
        gadget = rpq_two_cycle_gadget(n)
        graph = gadget.graph
        assert matches_only(graph, RPQ_GADGET_QUERY) == set()
        after_first = gadget.first_update.applied(graph)
        assert matches_only(after_first, RPQ_GADGET_QUERY) == set()
        after_second_only = gadget.second_update.applied(graph)
        assert matches_only(after_second_only, RPQ_GADGET_QUERY) == set()
        both = gadget.second_update.applied(after_first)
        matches = matches_only(both, RPQ_GADGET_QUERY)
        assert matches == {(("v", i), "w") for i in range(1, 2 * n + 1)}

    def test_witness_cost_grows_while_changed_constant(self):
        points = measure_rpq_witness([4, 8, 16, 32])
        assert all(point.changed == 1 for point in points)
        assert points[-1].cost > 4 * points[0].cost

    def test_gadget_validation(self):
        with pytest.raises(ValueError):
            rpq_two_cycle_gadget(1)


class TestOtherWitnesses:
    def test_ssrp_chain_gadget_semantics(self):
        gadget = ssrp_chain_gadget(6)
        index = ReachabilityIndex(gadget.graph.copy(), "s")
        before = dict(index.answer())
        gained, lost = index.apply(gadget.first_update)
        assert (gained, lost) == (set(), set())  # bypass keeps everything
        assert index.answer() == before

    def test_ssrp_deletion_witness_grows(self):
        points = measure_ssrp_deletion_witness([8, 16, 32, 64])
        assert all(point.changed == 1 for point in points)
        assert points[-1].cost > 3 * points[0].cost

    def test_scc_witness_grows(self):
        points = measure_scc_witness([8, 16, 32, 64])
        assert all(point.changed == 1 for point in points)
        assert points[-1].cost > 3 * points[0].cost

    def test_kws_witness_changed_stays_small(self):
        points = measure_kws_witness([4, 8, 16], bound=4)
        # ΔO is a single rerouted root regardless of fan width
        assert all(point.changed <= 2 for point in points)
        assert points[-1].cost >= points[0].cost

"""Property tests for the incremental dataflow runtime itself.

The four contracts the runtime documents, asserted directly:

* **stabilize() idempotence** — a second stabilize with no staged input
  evaluates nothing (counted via the per-node evaluation counters);
* **cutoff correctness** — a node whose recomputation leaves its value
  unchanged must not cause downstream re-evaluation;
* **topological re-evaluation order** — every parent evaluates before
  any child that reads it, across diamonds;
* **snapshot → restore → absorb equivalence** — a restored
  :class:`DataflowView` is behaviorally identical to the original under
  further batches (same ΔO, same canonical snapshot).

Plus the fixpoint semantics (transitive closure vs brute force, under
deletions; divergence bound), reduce invertibility, the
change-proportional CostMeter story, and the runtime's loud error
paths.
"""

import random

import pytest

from repro import Delta, DiGraph, delete, insert
from repro.core.cost import CostMeter
from repro.dataflow import (
    Dataflow,
    DataflowError,
    DataflowView,
    FixpointDivergenceError,
    registered_programs,
)
from repro.engine.view import IncrementalView

LABELS = ["a", "b", "c", "d"]


def random_graph(rng: random.Random) -> DiGraph:
    size = rng.randint(5, 9)
    graph = DiGraph(labels={node: rng.choice(LABELS) for node in range(size)})
    pairs = [(s, t) for s in range(size) for t in range(size) if s != t]
    for edge in rng.sample(pairs, k=min(len(pairs), rng.randint(size, 3 * size))):
        graph.add_edge(*edge)
    return graph


def random_batch(rng: random.Random, graph: DiGraph, next_node: list) -> Delta:
    edges = list(graph.edges())
    nodes = list(graph.nodes())
    non_edges = [
        (s, t) for s in nodes for t in nodes if s != t and not graph.has_edge(s, t)
    ]
    updates = []
    for edge in rng.sample(edges, k=min(len(edges), rng.randint(0, 3))):
        updates.append(delete(*edge))
    for edge in rng.sample(non_edges, k=min(len(non_edges), rng.randint(0, 3))):
        updates.append(insert(*edge))
    if rng.random() < 0.35 and nodes:
        fresh = next_node[0]
        next_node[0] += 1
        updates.append(
            insert(rng.choice(nodes), fresh, target_label=rng.choice(LABELS))
        )
    rng.shuffle(updates)
    return Delta(updates)


# ----------------------------------------------------------------------
# stabilize(): idempotence, cutoff, topological order
# ----------------------------------------------------------------------


class TestStabilize:
    def test_stabilize_is_idempotent(self):
        flow = Dataflow()
        edges = flow.var()
        degree = flow.count_by(edges, lambda row: row[0])
        total = flow.count(degree)
        flow.observe(total)
        edges.update({("a", "b"): 1, ("a", "c"): 1, ("b", "c"): 1})
        assert flow.stabilize() > 0
        counts = {node.id: node.eval_count for node in flow.nodes}
        assert flow.stabilize() == 0  # nothing staged, nothing evaluated
        assert {node.id: node.eval_count for node in flow.nodes} == counts

    def test_cutoff_stops_scalar_propagation(self):
        """count is unchanged by a +1/-1 batch, so its map_value child
        must not re-evaluate (asserted via evaluation counters)."""
        flow = Dataflow()
        edges = flow.var()
        total = flow.count(edges)
        parity = flow.map_value(total, lambda n: n % 2)
        edges.update({("a", "b"): 1, ("c", "d"): 1})
        flow.stabilize()
        assert parity.value == 0
        before = parity.eval_count
        edges.update({("a", "b"): -1, ("x", "y"): 1})  # count stays 2
        flow.stabilize()
        assert total.eval_count > 1  # the count itself did recompute
        assert parity.eval_count == before  # ...but cut off downstream

    def test_cutoff_stops_relation_propagation(self):
        """A filter that drops the whole delta leaves its child alone."""
        flow = Dataflow()
        rows = flow.var()
        kept = flow.filter(rows, lambda row: row[0] == "keep")
        downstream = flow.distinct(kept)
        rows.update({("keep", 1): 1})
        flow.stabilize()
        before = downstream.eval_count
        rows.update({("drop", 2): 1, ("drop", 3): 1})
        flow.stabilize()
        assert kept.eval_count >= 2  # the filter saw the delta
        assert downstream.eval_count == before  # empty delta: cutoff

    def test_map2_equality_cutoff(self):
        flow = Dataflow()
        left, right = flow.var(), flow.var()
        combined = flow.map2(
            flow.count(left), flow.count(right), lambda a, b: a + b
        )
        sink = flow.map_value(combined, lambda n: -n)
        left.update({("x",): 2})
        flow.stabilize()
        assert combined.value == 2 and sink.value == -2
        before = sink.eval_count
        left.update({("x",): -1})
        right.update({("y",): 1})  # 1 + 1 == 2: combined unchanged
        flow.stabilize()
        assert combined.eval_count >= 2
        assert sink.eval_count == before

    def test_topological_reevaluation_order(self):
        """Diamond: both middle nodes evaluate before the join reading
        them, and the source before everything."""
        order = []

        def trace(tag, fn):
            def wrapped(row):
                order.append(tag)
                return fn(row)

            return wrapped

        flow = Dataflow()
        source = flow.var()
        left = flow.map(source, trace("left", lambda r: (r[0],)))
        right = flow.map(source, trace("right", lambda r: (r[1],)))
        joined = flow.join(
            left,
            right,
            left_key=lambda r: r[0],
            right_key=lambda r: r[0],
            merge=lambda l, r: (order.append("join"), l[0])[1:],
        )
        flow.observe(joined)
        source.update({("p", "p"): 1, ("q", "p"): 1})
        flow.stabilize()
        assert "join" in order
        first_join = order.index("join")
        assert order.index("left") < first_join
        assert order.index("right") < first_join

    def test_heights_rank_parents_below_children(self):
        flow = Dataflow()
        source = flow.var()
        mapped = flow.map(source, lambda r: r)
        dist = flow.distinct(mapped)
        joined = flow.join(dist, source, lambda r: r, lambda r: r)
        assert source.height < mapped.height < dist.height < joined.height


# ----------------------------------------------------------------------
# combinator semantics
# ----------------------------------------------------------------------


class TestCombinators:
    def test_reduce_is_invertible_under_deletion(self):
        flow = Dataflow()
        sales = flow.var()
        by_key = flow.reduce(
            sales,
            key=lambda row: row[0],
            zero=0,
            step=lambda acc, row, count: acc + row[1] * count,
        )
        flow.stabilize()
        sales.update({("a", 5): 1, ("a", 3): 1, ("b", 2): 1})
        flow.stabilize()
        assert dict.fromkeys(by_key.rows()) == {("a", 8): None, ("b", 2): None}
        sales.update({("a", 5): -1, ("b", 2): -1})
        flow.stabilize()
        assert list(by_key.rows()) == [("a", 3)]  # b's group vanished

    def test_join_multiplicities_are_bilinear(self):
        flow = Dataflow()
        left, right = flow.var(), flow.var()
        joined = flow.join(
            left, right, left_key=lambda r: r[0], right_key=lambda r: r[0]
        )
        left.update({("k", "l1"): 2})
        right.update({("k", "r1"): 3})
        flow.stabilize()
        assert joined.value == {("k", "l1", "k", "r1"): 6}
        left.update({("k", "l1"): -1})
        flow.stabilize()
        assert joined.value == {("k", "l1", "k", "r1"): 3}

    def test_distinct_tracks_support_transitions(self):
        flow = Dataflow()
        rows = flow.var()
        dist = flow.distinct(rows)
        rows.update({("x",): 2})
        flow.stabilize()
        assert dist.value == {("x",): 1}
        rows.update({("x",): -1})
        flow.stabilize()
        assert dist.value == {("x",): 1}  # still supported
        rows.update({("x",): -1})
        flow.stabilize()
        assert dist.value == {}

    def test_fixpoint_matches_brute_force_transitive_closure(self):
        """Reachability as base=edges, step=recur⋈edges — checked against
        brute force across seeded insert/delete streams (deletions are
        the hard case: the fixpoint must not retain ghost paths)."""
        for seed in range(6):
            rng = random.Random(0xF1C + seed)
            flow = Dataflow()
            edges = flow.var()
            closure = flow.fixpoint(
                edges,
                lambda recur: flow.join(
                    recur,
                    edges,
                    left_key=lambda p: p[1],
                    right_key=lambda e: e[0],
                    merge=lambda p, e: (p[0], e[1]),
                ),
            )
            flow.observe(closure)
            live: set = set()
            universe = [(s, t) for s in range(6) for t in range(6) if s != t]
            for _ in range(12):
                additions = {
                    e for e in rng.sample(universe, rng.randint(0, 3))
                } - live
                removals = set(
                    rng.sample(sorted(live), min(len(live), rng.randint(0, 2)))
                )
                removals -= additions
                live = (live - removals) | additions
                staged = {(s, t): 1 for s, t in additions}
                staged.update({(s, t): -1 for s, t in removals})
                edges.update(staged)
                flow.stabilize()
                expected = set()
                frontier = {(s, t) for s, t in live}
                while frontier - expected:
                    expected |= frontier
                    frontier = {
                        (a, d)
                        for a, b in expected
                        for c, d in live
                        if b == c
                    }
                assert set(closure.rows()) == expected

    def test_fixpoint_divergence_bound_raises(self):
        flow = Dataflow()
        edges = flow.var()
        closure = flow.fixpoint(
            edges,
            lambda recur: flow.join(
                recur,
                edges,
                left_key=lambda p: p[1],
                right_key=lambda e: e[0],
                merge=lambda p, e: (p[0], e[1]),
            ),
            bound=2,
        )
        flow.observe(closure)
        edges.update({(k, k + 1): 1 for k in range(8)})  # needs ~8 rounds
        with pytest.raises(FixpointDivergenceError):
            flow.stabilize()


# ----------------------------------------------------------------------
# error paths stay loud
# ----------------------------------------------------------------------


class TestErrors:
    def test_scalar_into_relation_combinator(self):
        flow = Dataflow()
        total = flow.count(flow.var())
        with pytest.raises(DataflowError, match="scalar"):
            flow.distinct(total)

    def test_nested_fixpoint_rejected(self):
        flow = Dataflow()
        edges = flow.var()

        def step(recur):
            return flow.fixpoint(recur, lambda inner: inner)

        with pytest.raises(DataflowError, match="nest"):
            flow.fixpoint(edges, step)

    def test_negative_multiset_count_rejected(self):
        flow = Dataflow()
        rows = flow.var()
        flow.stabilize()
        rows.update({("ghost",): -1})
        with pytest.raises(DataflowError, match="negative|become"):
            flow.stabilize()

    def test_unknown_program_and_bad_args(self):
        graph = DiGraph(labels={1: "a"})
        with pytest.raises(ValueError, match="unknown dataflow program"):
            DataflowView(graph, "no-such-program")
        with pytest.raises(ValueError, match="tokens"):
            DataflowView(graph, "rpq", object())

    def test_observing_fixpoint_internal_node_rejected(self):
        flow = Dataflow()
        edges = flow.var()
        grabbed = {}

        def step(recur):
            grabbed["recur"] = recur
            return flow.join(
                recur, edges, left_key=lambda p: p[1], right_key=lambda e: e[0]
            )

        flow.fixpoint(edges, step)
        with pytest.raises(DataflowError, match="internal"):
            flow.observe(grabbed["recur"])


# ----------------------------------------------------------------------
# DataflowView: protocol, snapshot → restore → absorb equivalence
# ----------------------------------------------------------------------


class TestDataflowView:
    def test_satisfies_incremental_view_protocol(self):
        graph = DiGraph(labels={1: "a", 2: "b"}, edges=[(1, 2)])
        view = DataflowView(graph, "edge-label-count")
        assert isinstance(view, IncrementalView)
        assert view.empty_output().is_empty
        assert "edge-label-count" in registered_programs()

    @pytest.mark.parametrize(
        "program, args",
        [
            ("rpq", ("a . (b + c)* . c",)),
            ("edge-label-count", ()),
            ("two-hop", ()),
            ("triangle-count", ()),
        ],
    )
    def test_snapshot_restore_absorb_equivalence(self, program, args):
        """restore(graph, snapshot()) is behaviorally identical to the
        live view: same answers, same ΔO, same canonical snapshot —
        through further seeded batches."""
        for seed in range(4):
            rng = random.Random(0xDF0 + seed)
            graph = random_graph(rng)
            twin_graph = graph.copy()
            view = DataflowView(graph, program, *args)
            twin = DataflowView.restore(twin_graph, view.snapshot())
            assert twin.value() == view.value()
            next_node = [1000]
            for _ in range(6):
                batch = random_batch(rng, graph, next_node)
                if not batch:
                    continue
                out = view.apply(batch)
                twin_out = twin.apply(batch)
                assert twin_out == out
                assert twin.value() == view.value()
                assert twin.snapshot() == view.snapshot()

    def test_restore_detects_section_graph_divergence(self):
        graph = DiGraph(labels={1: "a", 2: "a", 3: "a"})
        graph.add_edge(1, 2)
        view = DataflowView(graph, "edge-label-count")
        state = view.snapshot()
        graph.add_edge(2, 3)  # the section no longer matches the graph
        with pytest.raises(ValueError, match="diverged"):
            DataflowView.restore(graph, state)

    def test_scalar_snapshot_round_trip(self):
        graph = DiGraph(
            labels={1: "a", 2: "a", 3: "a"}, edges=[(1, 2), (2, 3), (3, 1)]
        )
        view = DataflowView(graph, "triangle-count")
        state = view.snapshot()
        assert state.kind == "dataflow"
        assert state.config == ("triangle-count",)
        assert state.records == ((1,),)
        assert DataflowView.restore(graph, state).value() == 1

    def test_maintenance_cost_is_change_proportional(self):
        """One unit update on a large graph must move the meter far less
        than the from-scratch build did — the per-view CostMeter story
        the engine's dirty tracking and the benchmarks rely on."""
        graph = DiGraph(labels={n: "a" for n in range(300)})
        for n in range(299):
            graph.add_edge(n, n + 1)
        meter = CostMeter()
        view = DataflowView(graph, "edge-label-count", meter=meter)
        build_cost = meter.total()
        before = meter.snapshot()
        view.apply(Delta([insert(299, 0)]))
        maintenance = meter.snapshot().since(before).total()
        assert maintenance > 0  # the update was not free...
        assert maintenance * 20 < build_cost  # ...but nowhere near a rebuild

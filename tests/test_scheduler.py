"""Fan-out scheduler tests: relevance-routing equivalence (routed fan-out
must produce byte-identical canonical view snapshots to broadcast for all
four index classes), skipped-view zero-cost accounting (including the
lazily-registered regression), executor strategies (serial vs. threads),
and routing statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Delta, DiGraph, Engine, delete, insert
from repro.engine import (
    EXECUTOR_ENV,
    AlphabetRelevance,
    FanOutScheduler,
    SchedulerError,
    SubscribeAll,
)
from repro.iso import ISOIndex, Pattern
from repro.kws import KDistEntry, KWSIndex, KWSQuery
from repro.persist.format import render_record
from repro.rpq import RPQIndex
from repro.scc import SCCIndex

LABELS = ["a", "b", "c", "d"]
KWS_QUERY = KWSQuery(("a", "b"), bound=2)
RPQ_QUERY = "a . (b + c)* . c"
ISO_PATTERN = Pattern.from_edges({0: "a", 1: "b"}, [(0, 1)])
VIEW_NAMES = ("kws", "rpq", "scc", "iso")


def sample_graph() -> DiGraph:
    return DiGraph(
        labels={1: "a", 2: "b", 3: "c", 4: "a", 5: "b", 6: "d", 7: "d"},
        edges=[(1, 2), (2, 3), (3, 1), (4, 5), (6, 7)],
    )


def four_view_engine(graph: DiGraph, **engine_kwargs) -> Engine:
    engine = Engine(graph, **engine_kwargs)
    engine.register("kws", lambda g, m: KWSIndex(g, KWS_QUERY, meter=m))
    engine.register("rpq", lambda g, m: RPQIndex(g, RPQ_QUERY, meter=m))
    engine.register("scc", lambda g, m: SCCIndex(g, meter=m))
    engine.register("iso", lambda g, m: ISOIndex(g, ISO_PATTERN, meter=m))
    return engine


def assert_same_snapshots(left: Engine, right: Engine) -> None:
    """Canonical view snapshots — and their rendered bytes — agree."""
    for name in left.names():
        first = left[name].snapshot()
        second = right[name].snapshot()
        assert first == second, f"{name} snapshots diverged"
        rendered_first = b"".join(
            render_record(row).encode() for row in first.records
        )
        rendered_second = b"".join(
            render_record(row).encode() for row in second.records
        )
        assert rendered_first == rendered_second


class TestRouting:
    def test_irrelevant_batch_skips_label_filtered_views(self):
        engine = four_view_engine(sample_graph())
        # d→d churn: no keyword, no NFA label, no pattern label pair —
        # only the topology-subscribed SCC view runs.
        report = engine.apply(Delta([delete(6, 7), insert(7, 6)]))
        assert report.skipped("kws") and report.skipped("rpq")
        assert report.skipped("iso")
        assert not report.skipped("scc")
        for name in ("kws", "rpq", "iso"):
            assert report.cost(name).total() == 0
            assert report.views[name].wall_seconds == 0.0
            assert report.output(name).is_empty

    def test_skipped_views_report_empty_output_object(self):
        engine = four_view_engine(sample_graph())
        report = engine.apply(Delta([delete(6, 7)]))
        gained, lost = report.output("scc")  # subscribe-all still runs
        assert gained == set() and lost == set()
        assert report.output("kws").is_empty

    def test_relevant_batch_reaches_the_view(self):
        engine = four_view_engine(sample_graph())
        # 3's chosen shortest paths route through (3, 1): the deletion is
        # relevant by the next-pointer condition and ΔO is non-empty.
        report = engine.apply(Delta([delete(3, 1)]))
        assert not report.skipped("kws")
        assert not report.output("kws").is_empty

    def test_routing_stats_accumulate(self):
        engine = four_view_engine(sample_graph())
        engine.apply(Delta([delete(6, 7)]))
        engine.apply(Delta([insert(6, 1)]))  # d → a is kws/rpq-relevant
        stats = engine.routing_stats()
        assert stats["scc"].batches_routed == 2
        assert stats["kws"].batches_skipped == 1
        assert stats["kws"].batches_routed == 1
        assert stats["kws"].updates_delivered == 1

    def test_empty_batch_skips_everything(self):
        engine = four_view_engine(sample_graph())
        report = engine.apply(Delta([insert(5, 1), delete(5, 1)]))  # cancels
        assert all(view.skipped for view in report)
        assert report.total_cost() == 0

    def test_routing_disabled_broadcasts(self):
        engine = four_view_engine(sample_graph(), routing=False)
        report = engine.apply(Delta([delete(6, 7)]))
        assert not any(view.skipped for view in report)

    def test_new_keyword_node_bootstraps_through_routing(self):
        # The inserted edge alone is irrelevant to RPQ/ISO, but the new
        # "a"-labeled node must still reach KWS for its dist-0 entry.
        engine = four_view_engine(sample_graph())
        routed = engine.apply(Delta([insert(6, 8, target_label="a")]))
        assert not routed.skipped("kws")
        twin = four_view_engine(sample_graph(), routing=False)
        twin.apply(Delta([insert(6, 8, target_label="a")]))
        assert_same_snapshots(engine, twin)

    def test_routed_witness_ties_match_broadcast(self):
        """Regression (found by the equivalence property): an insertion
        whose target only gains its kdist entry later in the same batch
        is legitimately dropped by the relevance filter — KWS still sees
        the edge through the shared graph during settlement.  But when
        two equal-length witnesses exist (4→5→0 and 4→1→0), routed and
        broadcast used to keep whichever was *written first*, so their
        kdist snapshots diverged on the next pointer.  Witness ties must
        resolve canonically by node_order in both."""
        graph = DiGraph(labels={0: "a", 1: "c", 4: "c", 5: "c"}, edges=[(4, 1)])
        batch = Delta([insert(5, 0), insert(4, 5), insert(1, 0)])
        routed = Engine(graph.copy())
        broadcast = Engine(graph.copy(), routing=False)
        for engine in (routed, broadcast):
            engine.register("kws", lambda g, m: KWSIndex(g, KWS_QUERY, meter=m))
            engine.apply(batch)
        assert routed["kws"].snapshot() == broadcast["kws"].snapshot()
        # both settle on the canonical witness: node_order(1) < node_order(5)
        assert routed["kws"].kdist.get(4, "a") == KDistEntry(2, 1)


class TestCostAccounting:
    def test_lazy_view_skipped_by_routing_reports_zero_cost(self):
        """Regression: a view materialized lazily during apply() pays its
        from-scratch build on its cumulative meter; when routing then
        skips it for the batch, the report must say zero — not leak the
        stale build-inclusive meter reading."""
        engine = Engine(sample_graph())
        engine.register(
            "kws",
            lambda g, m: KWSIndex(g, KWS_QUERY, meter=m),
            build="on_first_apply",
        )
        report = engine.apply(Delta([delete(6, 7)]))  # irrelevant to kws
        assert report.skipped("kws")
        assert report.cost("kws").total() == 0
        assert report.total_cost() == 0
        # ... even though the build itself did meter real work:
        assert engine.meter("kws").total() > 0

    def test_total_cost_sums_only_absorb_work(self):
        engine = four_view_engine(sample_graph())
        report = engine.apply(Delta([delete(3, 1)]))
        assert report.total_cost() == sum(view.cost.total() for view in report)
        assert report.total_cost() > 0

    def test_wall_clock_reported_for_routed_views(self):
        engine = four_view_engine(sample_graph())
        report = engine.apply(Delta([delete(3, 1)]))
        assert report.views["scc"].wall_seconds > 0.0
        assert report.wall_seconds() >= report.views["scc"].wall_seconds


class TestExecutors:
    def test_unknown_executor_rejected(self):
        with pytest.raises(SchedulerError, match="unknown executor"):
            Engine(sample_graph(), executor="fibers")

    def test_env_var_selects_executor(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "threads")
        assert Engine(sample_graph()).scheduler.executor == "threads"
        monkeypatch.setenv(EXECUTOR_ENV, "bogus")
        with pytest.raises(SchedulerError):
            Engine(sample_graph())

    def test_explicit_executor_overrides_env(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "threads")
        assert Engine(sample_graph(), executor="serial").scheduler.executor == "serial"

    def test_threads_executor_matches_serial(self):
        serial = four_view_engine(sample_graph())
        threaded = four_view_engine(sample_graph(), executor="threads")
        for batch in (
            Delta([delete(3, 1), insert(5, 4)]),
            Delta([insert(3, 5), insert(6, 8, target_label="b")]),
            Delta([delete(4, 5), delete(6, 7)]),
        ):
            serial_report = serial.apply(batch)
            threaded_report = threaded.apply(batch)
            for name in VIEW_NAMES:
                assert serial_report.output(name) == threaded_report.output(name)
        assert_same_snapshots(serial, threaded)


class TestRelevanceObjects:
    def test_scheduler_treats_subscribe_all_as_broadcast(self):
        scheduler = FanOutScheduler()
        graph = sample_graph()
        scc = SCCIndex(graph)
        delta = Delta([delete(6, 7)])
        delta.apply_to(graph)
        plans = scheduler.partition(
            delta,
            frozenset(),
            graph,
            {"scc": scc},
            {"scc": scc.meter},
            {"scc": SubscribeAll()},
        )
        assert plans[0].delta is delta  # no per-view copy
        assert not plans[0].skipped

    def test_rpq_alphabet_filter_is_target_label_based(self):
        graph = sample_graph()
        rpq = RPQIndex(graph, RPQ_QUERY)
        relevance = rpq.relevance()
        assert isinstance(relevance, AlphabetRelevance)
        assert relevance.wants_update(insert(6, 1), "d", "a")
        assert not relevance.wants_update(insert(1, 6), "a", "d")

    def test_deregistered_view_drops_routing_state(self):
        engine = four_view_engine(sample_graph())
        engine.apply(Delta([delete(3, 1)]))
        engine.deregister("kws")
        assert "kws" not in engine.routing_stats()
        assert "kws" not in engine.dirty_views()


# ----------------------------------------------------------------------
# Routing equivalence property: for random graphs and batch streams,
# routed fan-out produces byte-identical canonical view snapshots to
# broadcast fan-out, for all four index classes.
# ----------------------------------------------------------------------


@st.composite
def engine_workload(draw):
    """A random labeled graph plus a short stream of applicable batches
    (mirrors tests/test_engine.py, with a wider alphabet so some labels
    fall outside every filtered view's relevance)."""
    size = draw(st.integers(min_value=2, max_value=10))
    labels = {node: draw(st.sampled_from(LABELS)) for node in range(size)}
    graph = DiGraph(labels=labels)
    possible = [(s, t) for s in range(size) for t in range(size) if s != t]
    for source, target in draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=3 * size)
    ):
        graph.add_edge(source, target)

    batches = []
    scratch = graph.copy()
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        edges = list(scratch.edges())
        nodes = list(scratch.nodes())
        non_edges = [
            (s, t)
            for s in nodes
            for t in nodes
            if s != t and not scratch.has_edge(s, t)
        ]
        deletions = draw(
            st.lists(st.sampled_from(edges), unique=True, max_size=3)
            if edges
            else st.just([])
        )
        insertions = draw(
            st.lists(st.sampled_from(non_edges), unique=True, max_size=3)
            if non_edges
            else st.just([])
        )
        updates = [delete(*edge) for edge in deletions]
        updates += [insert(*edge) for edge in insertions]
        if draw(st.booleans()) and nodes:
            new_node = scratch.num_nodes + 100
            updates.append(
                insert(
                    draw(st.sampled_from(nodes)),
                    new_node,
                    target_label=draw(st.sampled_from(LABELS)),
                )
            )
        batch = Delta(list(draw(st.permutations(updates))))
        batch.apply_to(scratch)
        batches.append(batch)
    return graph, batches


@settings(max_examples=60, deadline=None)
@given(engine_workload())
def test_routed_equals_broadcast_property(case):
    graph, batches = case
    routed = four_view_engine(graph.copy())
    broadcast = four_view_engine(graph.copy(), routing=False)
    for batch in batches:
        routed_report = routed.apply(batch)
        broadcast_report = broadcast.apply(batch)
        for name in VIEW_NAMES:
            assert routed_report.output(name) == broadcast_report.output(name)
            if routed_report.skipped(name):
                assert routed_report.cost(name).total() == 0
        assert_same_snapshots(routed, broadcast)


@settings(max_examples=25, deadline=None)
@given(engine_workload())
def test_routed_rollback_equals_broadcast(case):
    """Rollback goes through the same routed fan-out; it must restore the
    identical state broadcast rollback restores."""
    graph, batches = case
    routed = four_view_engine(graph.copy())
    broadcast = four_view_engine(graph.copy(), routing=False)
    mark = routed.checkpoint()
    for batch in batches:
        routed.apply(batch)
        broadcast.apply(batch)
    routed.rollback(mark)
    broadcast.rollback(mark)
    assert_same_snapshots(routed, broadcast)

"""Shard worker tier test suite (``repro.shardexec``).

Covers the three layers of the tier plus its serving integration:

* the wire vocabulary and the replica digest primitive;
* :class:`ShardWorkerPool` — install/degrade/rebind, the scatter/gather
  hot path (routed ≡ broadcast ≡ workers equivalence under group-commit
  windows), ghost-boundary shipments, drain-synchronous verification,
  and the error contract (latched pipelined failures surface at the
  seal; the affected window stays torn and invisible to replay);
* the serving layer's durability split: under windowed journaling a
  published generation is visible immediately but
  :attr:`~repro.serving.Repository.durable_generation` trails until the
  window seals (auto-seal or :meth:`~repro.serving.Repository.flush`).

Worker processes are real (``spawn``); every test reaps its pool via
the module fixture so resident workers never outlive their scenario.
"""

import random

import pytest

from repro import (
    Delta,
    DiGraph,
    Engine,
    Repository,
    SegmentedDeltaLog,
    ShardedGraphStore,
    ShardMap,
    SnapshotStore,
    delete,
    insert,
)
from repro.iso import ISOIndex, Pattern
from repro.kws import KWSIndex, KWSQuery
from repro.rpq import RPQIndex
from repro.scc import SCCIndex
from repro.shardexec import (
    GHOST_SYNC_ENV,
    ShardWorkerPool,
    ViewInterest,
    WorkerPoolError,
    replica_digest,
    shutdown_pools,
)
from repro.shardexec.pool import _ghost_sync_policy, _view_interests

KWS_QUERY = KWSQuery(("a", "b"), bound=2)
RPQ_QUERY = "a . (b + c)* . c"
ISO_PATTERN = Pattern.from_edges({0: "a", 1: "b"}, [(0, 1)])
LABELS = ["a", "b", "c", "d"]


@pytest.fixture(autouse=True)
def _reap_pools():
    """No resident worker outlives its test."""
    yield
    shutdown_pools()


def four_view_engine(graph, executor=None) -> Engine:
    engine = Engine(graph) if executor is None else Engine(graph, executor=executor)
    engine.register("kws", lambda g, m: KWSIndex(g, KWS_QUERY, meter=m))
    engine.register("rpq", lambda g, m: RPQIndex(g, RPQ_QUERY, meter=m))
    engine.register("scc", lambda g, m: SCCIndex(g, meter=m))
    engine.register("iso", lambda g, m: ISOIndex(g, ISO_PATTERN, meter=m))
    return engine


def random_setup(rng, shards=4):
    labels = {n: rng.choice(LABELS) for n in range(10)}
    edges = [
        (s, t)
        for s in range(10)
        for t in range(10)
        if s != t and rng.random() < 0.2
    ]
    sharded = ShardedGraphStore(shards=shards, labels=labels, edges=edges)
    plain = DiGraph(labels=dict(labels), edges=list(edges))
    return sharded, plain


def random_batch(rng, graph, next_node):
    nodes = list(graph.nodes())
    edges = list(graph.edges())
    non_edges = [
        (s, t)
        for s in nodes
        for t in nodes
        if s != t and not graph.has_edge(s, t)
    ]
    updates = [
        delete(*edge)
        for edge in rng.sample(edges, k=min(len(edges), rng.randint(0, 2)))
    ]
    updates += [
        insert(*edge)
        for edge in rng.sample(non_edges, k=min(len(non_edges), rng.randint(0, 3)))
    ]
    if rng.random() < 0.4 and nodes:
        fresh = next_node[0]
        next_node[0] += 1
        updates.append(
            insert(rng.choice(nodes), fresh, target_label=rng.choice(LABELS))
        )
    rng.shuffle(updates)
    return Delta(updates)


# ----------------------------------------------------------------------
# Primitives: digest, view interests, ghost-sync policy
# ----------------------------------------------------------------------


class TestPrimitives:
    def test_replica_digest_is_order_independent(self):
        one = DiGraph(labels={1: "a", 2: "b", 3: "c"}, edges=[(1, 2), (2, 3)])
        two = DiGraph(labels={3: "c", 1: "a", 2: "b"})
        two.add_edge(2, 3)
        two.add_edge(1, 2)
        assert replica_digest(one) == replica_digest(two)

    def test_replica_digest_detects_divergence(self):
        base = DiGraph(labels={1: "a", 2: "b"}, edges=[(1, 2)])
        relabeled = DiGraph(labels={1: "a", 2: "c"}, edges=[(1, 2)])
        rewired = DiGraph(labels={1: "a", 2: "b"}, edges=[(2, 1)])
        assert replica_digest(base) != replica_digest(relabeled)
        assert replica_digest(base) != replica_digest(rewired)
        # sizes agree on both divergences — the checksum is what catches them
        assert replica_digest(base)[:2] == replica_digest(relabeled)[:2]

    def test_view_interests_cover_every_filter_family(self):
        engine = four_view_engine(DiGraph(labels={1: "a"}))
        modes = {i.name: i.mode for i in _view_interests(engine)}
        # scc subscribes to everything; rpq's NFA alphabet is exact;
        # kws/iso consult live index state, so workers over-count
        assert modes == {
            "kws": "conservative",
            "rpq": "target-labels",
            "scc": "all",
            "iso": "conservative",
        }
        rpq = next(i for i in _view_interests(engine) if i.name == "rpq")
        assert set(rpq.labels) == {"a", "b", "c"}

    def test_ghost_sync_policy_resolution(self, monkeypatch):
        monkeypatch.delenv(GHOST_SYNC_ENV, raising=False)
        assert _ghost_sync_policy(None) == "touch"
        assert _ghost_sync_policy("declared") == "declared"
        monkeypatch.setenv(GHOST_SYNC_ENV, "declared")
        assert _ghost_sync_policy(None) == "declared"
        assert _ghost_sync_policy("touch") == "touch"  # argument wins
        with pytest.raises(WorkerPoolError, match="unknown ghost-sync"):
            _ghost_sync_policy("everything")


# ----------------------------------------------------------------------
# Pool lifecycle
# ----------------------------------------------------------------------


class TestPoolLifecycle:
    def test_install_declines_unsharded_and_mismatched_graphs(self, tmp_path):
        log = SegmentedDeltaLog(tmp_path / "seg", ShardMap(2), window_size=2)
        plain = four_view_engine(DiGraph(labels={1: "a"}))
        assert ShardWorkerPool.install(plain, log) is None
        mismatched = four_view_engine(
            ShardedGraphStore(shards=3, labels={1: "a"})
        )
        assert ShardWorkerPool.install(mismatched, log) is None
        assert log._worker_pool is None

    def test_install_reuses_resident_workers_across_attaches(self, tmp_path):
        sharded, _ = random_setup(random.Random(1))
        engine = four_view_engine(sharded, executor="workers")
        store = SnapshotStore(tmp_path / "store", shard_map=sharded.shard_map)
        store.attach(engine)
        pool = store.log._worker_pool
        if pool is None:
            pytest.skip("worker processes unavailable in this interpreter")
        pids = [process.pid for process in pool._processes]
        # a second store over the same root re-binds, not re-spawns
        engine.apply(Delta([insert(1, 999, "a", "b")]))
        store.log.flush()
        store.save(engine)
        revived = SnapshotStore(tmp_path / "store").load()
        assert revived.graph == engine.graph
        again = SnapshotStore(tmp_path / "store", shard_map=sharded.shard_map)
        again.attach(engine)
        pool2 = again.log._worker_pool
        assert pool2 is pool
        assert [process.pid for process in pool2._processes] == pids
        pool2.verify(engine.graph)

    def test_shutdown_pools_reaps_workers(self, tmp_path):
        sharded, _ = random_setup(random.Random(2))
        engine = four_view_engine(sharded, executor="workers")
        store = SnapshotStore(tmp_path / "store", shard_map=sharded.shard_map)
        store.attach(engine)
        pool = store.log._worker_pool
        if pool is None:
            pytest.skip("worker processes unavailable in this interpreter")
        processes = list(pool._processes)
        shutdown_pools()
        assert all(not process.is_alive() for process in processes)
        assert not pool.alive()


# ----------------------------------------------------------------------
# The hot path: equivalence, ghosts, reports
# ----------------------------------------------------------------------


class TestWorkerEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_windowed_stream_matches_reference_and_recovers(
        self, seed, tmp_path, monkeypatch
    ):
        """Random batch streams through the full workers stack: the
        sharded engine equals the unsharded reference after every
        batch, worker replicas digest-match the coordinator, and the
        windowed log replays to the same session routed and broadcast."""
        monkeypatch.setenv("REPRO_WINDOW_SIZE", "3")
        rng = random.Random(0x5EED + seed)
        sharded_graph, plain_graph = random_setup(rng)
        engine = four_view_engine(sharded_graph, executor="workers")
        reference = four_view_engine(plain_graph)
        store = SnapshotStore(
            tmp_path / "store", shard_map=sharded_graph.shard_map
        )
        store.attach(engine)
        store.save(engine)
        pool = store.log._worker_pool
        next_node = [100]
        for _ in range(12):
            batch = random_batch(rng, reference.graph, next_node)
            if not batch:
                continue
            engine.apply(batch)
            reference.apply(batch)
            assert engine.graph == reference.graph
            assert engine["kws"].roots() == reference["kws"].roots()
            assert engine["rpq"].matches == reference["rpq"].matches
            assert engine["scc"].components() == reference["scc"].components()
            assert engine["iso"].matches == reference["iso"].matches
        store.log.flush()
        if pool is not None:
            pool.verify(engine.graph)  # drain barrier + replica digest
        routed = store.load(attach_journal=False)
        broadcast = store.load(attach_journal=False, routed=False)
        for recovered in (routed, broadcast):
            assert recovered.graph == engine.graph
            assert recovered["scc"].components() == engine["scc"].components()
            assert recovered["iso"].matches == engine["iso"].matches

    def test_cross_shard_ghosts_and_foreign_targets(self, tmp_path):
        """Inserts whose endpoints live on different shards: the source
        shard's replica hosts a ghost of the target, and a brand-new
        node introduced only by a remote-source edge still materializes
        on its owning shard's replica (verified by digest)."""
        shard_map = ShardMap(4)
        nodes = list(range(16))
        sharded = ShardedGraphStore(
            shard_map=shard_map, labels={n: "a" for n in nodes}
        )
        engine = four_view_engine(sharded, executor="workers")
        store = SnapshotStore(tmp_path / "store", shard_map=shard_map)
        store.attach(engine)
        store.log.window_size = 4
        if store.log._worker_pool is None:
            pytest.skip("worker processes unavailable in this interpreter")
        # cross-shard edges to existing nodes and to brand-new ones
        batches = [
            Delta([insert(0, 1, "a", "a"), insert(2, 3, "a", "a")]),
            Delta([insert(1, 100, "a", "d"), insert(3, 101, "a", "b")]),
            Delta([insert(100, 101, "d", "b"), delete(0, 1)]),
        ]
        for batch in batches:
            engine.apply(batch)
        store.log.flush()
        store.log._worker_pool.verify(engine.graph)

    def test_seal_report_merges_fragments_and_costs(self, tmp_path):
        """The gather side: per-view ΔO fragment counts are summed
        across workers (exact for the alphabet view, everything for
        the subscribe-all view) and per-shard cost snapshots survive."""
        shard_map = ShardMap(3)
        sharded = ShardedGraphStore(
            shard_map=shard_map, labels={n: "a" for n in range(9)}
        )
        engine = Engine(sharded, executor="workers")
        engine.register("rpq", lambda g, m: RPQIndex(g, RPQ_QUERY, meter=m))
        engine.register("scc", lambda g, m: SCCIndex(g, meter=m))
        store = SnapshotStore(tmp_path / "store", shard_map=shard_map)
        store.attach(engine)
        store.log.window_size = 8
        pool = store.log._worker_pool
        if pool is None:
            pytest.skip("worker processes unavailable in this interpreter")
        # rpq's alphabet is {a, b, c}: the "d"-labelled target is
        # invisible to it but counted by subscribe-all scc
        engine.apply(Delta([insert(0, 50, "a", "d")]))
        engine.apply(Delta([insert(1, 51, "a", "b"), insert(2, 52, "a", "c")]))
        store.log.flush()
        report = pool.last_window_report
        assert report is not None
        assert report.fragments["scc"] == 3
        assert report.fragments["rpq"] == 2
        assert report.last_seq == store.log.last_seq()
        total_batches = sum(
            cost.get("batches", 0) for cost in report.per_shard.values()
        )
        assert total_batches == 3  # three routed sub-entries in the window


# ----------------------------------------------------------------------
# Error contract
# ----------------------------------------------------------------------


class TestErrorContract:
    def _pooled_log(self, tmp_path, shards=2, window_size=4):
        shard_map = ShardMap(shards)
        sharded = ShardedGraphStore(
            shard_map=shard_map, labels={n: "a" for n in range(8)}
        )
        engine = Engine(sharded, executor="workers")
        engine.register("scc", lambda g, m: SCCIndex(g, meter=m))
        store = SnapshotStore(tmp_path / "store", shard_map=shard_map)
        store.attach(engine)
        store.log.window_size = window_size
        return engine, store

    def test_latched_append_failure_tears_the_window(self, tmp_path):
        """A pipelined absorb failure (delete of an edge the replica
        never saw) latches in the worker, surfaces as a failed seal,
        and everything appended under the window stays invisible to
        replay — the discard-whole contract."""
        engine, store = self._pooled_log(tmp_path)
        if store.log._worker_pool is None:
            pytest.skip("worker processes unavailable in this interpreter")
        engine.apply(Delta([insert(0, 1, "a", "a")]))
        store.log.flush()
        durable = store.log.last_seq()
        # bypass engine validation: the log routes whatever it is given
        store.log.append(Delta([delete(6, 7)]))  # edge never existed
        store.log.append(Delta([insert(2, 3, "a", "a")]))
        with pytest.raises(WorkerPoolError):
            store.log.flush()
        # both appends rode the torn window: neither is durable
        assert store.log.last_seq() == durable
        assert [entry.seq for entry in store.log.entries()] == [durable]
        pool = store.log._worker_pool
        assert pool is not None and not pool.alive()
        with pytest.raises(WorkerPoolError, match="broken"):
            pool.append(1, 1, 1, [], Delta([]))

    def test_unregistered_message_is_rejected(self, tmp_path):
        engine, store = self._pooled_log(tmp_path)
        pool = store.log._worker_pool
        if pool is None:
            pytest.skip("worker processes unavailable in this interpreter")
        pool._send(0, {"not": "a registered message"})
        with pytest.raises(WorkerPoolError, match="unregistered message"):
            pool.verify(engine.graph)

    def test_broken_pool_reinstalls_fresh_workers(self, tmp_path):
        engine, store = self._pooled_log(tmp_path)
        pool = store.log._worker_pool
        if pool is None:
            pytest.skip("worker processes unavailable in this interpreter")
        pool.terminate()
        assert not pool.alive()
        replacement = ShardWorkerPool.install(engine, store.log)
        assert replacement is not None and replacement is not pool
        assert store.log._worker_pool is replacement
        engine.apply(Delta([insert(0, 1, "a", "a")]))
        store.log.flush()
        replacement.verify(engine.graph)

    def test_replica_divergence_fails_verification(self, tmp_path):
        engine, store = self._pooled_log(tmp_path)
        pool = store.log._worker_pool
        if pool is None:
            pytest.skip("worker processes unavailable in this interpreter")
        engine.apply(Delta([insert(0, 1, "a", "a")]))
        store.log.flush()
        pool.verify(engine.graph)
        # an out-of-band mutation never crosses the delta stream, so
        # the replicas cannot know about it — verify must say so
        engine.graph.add_node(999, label="d")
        with pytest.raises(WorkerPoolError, match="diverged"):
            pool.verify(engine.graph)


# ----------------------------------------------------------------------
# Serving integration: visible now, durable at the seal
# ----------------------------------------------------------------------


class TestServingDurability:
    def _windowed_repo(self, tmp_path, window_size=3):
        shard_map = ShardMap(2)
        sharded = ShardedGraphStore(
            shard_map=shard_map, labels={n: "a" for n in range(6)}
        )
        engine = Engine(sharded)
        engine.register("scc", lambda g, m: SCCIndex(g, meter=m))
        store = SnapshotStore(tmp_path / "store", shard_map=shard_map)
        store.attach(engine)
        # in-process windowed mode: deterministic, no worker processes
        store.log.window_size = window_size
        store.log.executor = "serial"
        return Repository(engine), store

    def test_durable_generation_trails_until_flush(self, tmp_path):
        repo, store = self._windowed_repo(tmp_path)
        assert repo.durable_generation == repo.generation == 0
        repo.apply([insert(0, 1, "a", "a")])
        repo.apply([insert(1, 2, "a", "a")])
        assert repo.generation == 2
        assert repo.durable_generation == 0  # window still open
        assert repo.stats()["durable_generation"] == 0
        assert repo.flush() == 2
        assert repo.durable_generation == 2

    def test_auto_seal_catches_durability_up(self, tmp_path):
        repo, store = self._windowed_repo(tmp_path, window_size=3)
        for step in range(3):
            repo.apply([insert(step, step + 1, "a", "a")])
        # the third append filled the window and sealed it mid-apply
        assert repo.generation == 3
        assert repo.durable_generation == 3
        repo.apply([insert(3, 4, "a", "a")])
        assert repo.durable_generation == 3  # a fresh window opened

    def test_save_is_a_durability_point(self, tmp_path):
        repo, store = self._windowed_repo(tmp_path)
        repo.apply([insert(0, 1, "a", "a")])
        assert repo.durable_generation == 0
        store.save(repo.engine)  # save flushes the open window
        assert repo.durable_generation == 1
        recovered = store.load(attach_journal=False)
        assert recovered.graph == repo.engine.graph

    def test_unwindowed_repository_is_always_durable(self, tmp_path):
        engine = Engine(DiGraph(labels={1: "a", 2: "a"}))
        engine.register("scc", lambda g, m: SCCIndex(g, meter=m))
        store = SnapshotStore(tmp_path / "store")
        store.attach(engine)
        repo = Repository(engine)
        repo.apply([insert(1, 2)])
        assert repo.durable_generation == repo.generation == 1
        assert repo.flush() == 1

    def test_rollback_durability_follows_the_same_window(self, tmp_path):
        repo, store = self._windowed_repo(tmp_path)
        repo.apply([insert(0, 1, "a", "a")])
        repo.rollback(0)
        assert repo.generation == 2
        assert repo.durable_generation == 0  # undo rode the open window
        assert repo.flush() == 2

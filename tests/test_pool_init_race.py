"""Regression: shared-pool lazy init is race-free.

The process-wide absorb pool (``repro.engine.scheduler._SHARED_POOL``)
and the segmented log's append pool
(``repro.persist.deltalog._SEGMENT_THREAD_POOL``) are created on first
threaded use.  Before the double-checked locks (repro-lint's
``concurrency`` rule, first real catch), N threads racing the first
dispatch could each observe ``None`` and build their own pool — all
but one leaking worker threads forever and breaking the documented
one-pool-per-process sharing.  These tests hammer exactly that first
touch from many threads and require a single pool instance.
"""

from __future__ import annotations

import threading

import repro.engine.scheduler as scheduler_module
import repro.persist.deltalog as deltalog_module
from repro import DiGraph, Engine, insert
from repro.scc import SCCIndex

THREADS = 32


def _race(getter, count=THREADS):
    """Call ``getter`` from ``count`` threads released by one barrier."""
    barrier = threading.Barrier(count)
    results = []
    errors = []
    guard = threading.Lock()

    def worker():
        try:
            barrier.wait()
            value = getter()
            with guard:
                results.append(value)
        except Exception as exc:  # pragma: no cover - failure reporting
            with guard:
                errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    return results


def test_fanout_shared_pool_initializes_once(monkeypatch):
    monkeypatch.setattr(scheduler_module, "_SHARED_POOL", None)
    results = _race(scheduler_module.FanOutScheduler._thread_pool)
    assert len(results) == THREADS
    assert len({id(pool) for pool in results}) == 1
    created = scheduler_module._SHARED_POOL
    assert created is results[0]
    created.shutdown(wait=True)


def test_segment_thread_pool_initializes_once(monkeypatch):
    monkeypatch.setattr(deltalog_module, "_SEGMENT_THREAD_POOL", None)
    results = _race(deltalog_module._segment_thread_pool)
    assert len({id(pool) for pool in results}) == 1
    created = deltalog_module._SEGMENT_THREAD_POOL
    assert created is results[0]
    created.shutdown(wait=True)


def test_first_threaded_dispatch_from_many_engines(monkeypatch):
    """End to end: many engines' *first* threaded fan-out races cleanly."""
    monkeypatch.setattr(scheduler_module, "_SHARED_POOL", None)
    count = 8
    engines = []
    for _ in range(count):
        graph = DiGraph(labels={1: "a", 2: "b", 3: "c"}, edges=[(1, 2)])
        engine = Engine(graph, executor="threads")
        engine.register("left", lambda g, m: SCCIndex(g, meter=m))
        engine.register("right", lambda g, m: SCCIndex(g, meter=m))
        engines.append(engine)
    barrier = threading.Barrier(count)
    errors = []
    guard = threading.Lock()

    def worker(engine):
        try:
            barrier.wait()
            engine.apply([insert(2, 3)])
        except Exception as exc:  # pragma: no cover - failure reporting
            with guard:
                errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(engine,)) for engine in engines
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    for engine in engines:
        assert engine["left"].components() == engine["right"].components()
    created = scheduler_module._SHARED_POOL
    assert created is not None  # two live views -> pooled dispatch ran
    created.shutdown(wait=True)

"""Tests for the varying-b snapshot extension (paper Section 4.2, Remark)."""

import pytest

from repro.graph import DiGraph
from repro.graph.generators import label_alphabet, uniform_random_graph
from repro.kws import KWSIndex, KWSQuery, compute_kdist, distance_profile, verify_kdist
from repro.kws.snapshot import extend_bound, profile_with_bound

ALPHABET = label_alphabet(6)


@pytest.fixture
def chain() -> DiGraph:
    # 5 -> 4 -> 3 -> 2 -> 1 -> 0(a)
    g = DiGraph(labels={i: "x" for i in range(1, 6)} | {0: "a"})
    for i in range(5):
        g.add_edge(i + 1, i)
    return g


class TestExtendBound:
    def test_extension_reaches_deeper(self, chain):
        index = KWSIndex(chain, KWSQuery(("a",), 2))
        assert index.kdist.dist(3, "a") is None
        delta_o = extend_bound(index, 4)
        assert index.query.bound == 4
        assert index.kdist.dist(3, "a") == 3
        assert index.kdist.dist(4, "a") == 4
        assert index.kdist.dist(5, "a") is None
        assert set(delta_o.added) == {3, 4}
        verify_kdist(index.graph, index.kdist)

    def test_extension_matches_fresh_computation(self):
        graph = uniform_random_graph(60, 200, ALPHABET, seed=3)
        query = KWSQuery((ALPHABET[0], ALPHABET[1]), 1)
        index = KWSIndex(graph, query)
        extend_bound(index, 3)
        fresh = distance_profile(compute_kdist(graph, query.with_bound(3)))
        assert index.profile() == fresh
        verify_kdist(index.graph, index.kdist)

    def test_extension_then_updates(self):
        graph = uniform_random_graph(40, 120, ALPHABET, seed=5)
        query = KWSQuery((ALPHABET[0],), 1)
        index = KWSIndex(graph, query)
        extend_bound(index, 2)
        # the extended structure must keep working incrementally
        from repro.graph.updates import random_delta

        delta = random_delta(graph, 16, seed=6)
        index.apply(delta)
        fresh = distance_profile(compute_kdist(index.graph, query.with_bound(2)))
        assert index.profile() == fresh

    def test_same_bound_is_noop(self, chain):
        index = KWSIndex(chain, KWSQuery(("a",), 2))
        delta_o = extend_bound(index, 2)
        assert delta_o.is_empty

    def test_shrink_rejected(self, chain):
        index = KWSIndex(chain, KWSQuery(("a",), 2))
        with pytest.raises(ValueError):
            extend_bound(index, 1)


class TestProfileWithBound:
    def test_filtering(self, chain):
        index = KWSIndex(chain, KWSQuery(("a",), 4))
        wide = profile_with_bound(index, 4)
        narrow = profile_with_bound(index, 1)
        assert set(wide) == {0, 1, 2, 3, 4}
        assert set(narrow) == {0, 1}

    def test_matches_direct_computation(self):
        graph = uniform_random_graph(50, 160, ALPHABET, seed=7)
        query = KWSQuery((ALPHABET[0], ALPHABET[1]), 3)
        index = KWSIndex(graph, query)
        for smaller in (1, 2):
            expected = distance_profile(
                compute_kdist(graph, query.with_bound(smaller))
            )
            assert profile_with_bound(index, smaller) == expected

    def test_larger_bound_rejected(self, chain):
        index = KWSIndex(chain, KWSQuery(("a",), 2))
        with pytest.raises(ValueError):
            profile_with_bound(index, 3)

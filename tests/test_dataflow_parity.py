"""RPQ-as-dataflow parity oracle.

The ``rpq`` dataflow program recomposes the paper's RPQ semantics from
generic combinators — NFA product as ``join``, reachability as a
bounded ``fixpoint`` — with none of :mod:`repro.rpq.incremental`'s
bespoke marking machinery.  If the dataflow layer is correct, the two
must agree **byte-identically** (canonical renderings of their answer
sets compare equal as strings) after every batch of every seeded
insert/delete stream, under all four fan-out executors, routed and
broadcast.

Both views ride one :class:`~repro.engine.session.Engine`, so each
batch reaches them through the same scheduler dispatch the production
path uses; the dataflow view additionally declares the *same*
``AlphabetRelevance`` filter as the hand-written index, so routed runs
exercise its conservativeness too.  A standalone broadcast twin absorbs
the identical stream outside the engine and must serialize to the very
same snapshot bytes — the routed/broadcast state-equivalence the
persistence layer depends on.
"""

import random

import pytest

from repro import Delta, DiGraph, Engine, delete, insert
from repro.dataflow import DataflowView, row_order
from repro.rpq import RPQIndex
from repro.shardexec import shutdown_pools

EXECUTORS = ("serial", "threads", "processes", "workers")
LABELS = ["a", "b", "c", "d"]
STEPS = 8
#: One query per seed, cycled — a concatenation, a starred alternation
#: mid-expression, and a star-first query whose start set is wide.
QUERIES = (
    "a . (b + c)* . c",
    "a . b",
    "(a + b)* . d",
)


@pytest.fixture(autouse=True)
def _reap_worker_pools():
    yield
    shutdown_pools()


def canonical(pairs) -> str:
    """The byte-identity rendering: sorted pair list, repr'd."""
    return repr(sorted(pairs, key=row_order))


def random_graph(rng: random.Random) -> DiGraph:
    size = rng.randint(5, 9)
    graph = DiGraph(labels={node: rng.choice(LABELS) for node in range(size)})
    pairs = [(s, t) for s in range(size) for t in range(size) if s != t]
    for edge in rng.sample(pairs, k=min(len(pairs), rng.randint(size, 3 * size))):
        graph.add_edge(*edge)
    return graph


def random_batch(rng: random.Random, graph: DiGraph, next_node: list) -> Delta:
    edges = list(graph.edges())
    nodes = list(graph.nodes())
    non_edges = [
        (s, t) for s in nodes for t in nodes if s != t and not graph.has_edge(s, t)
    ]
    updates = []
    for edge in rng.sample(edges, k=min(len(edges), rng.randint(0, 3))):
        updates.append(delete(*edge))
    for edge in rng.sample(non_edges, k=min(len(non_edges), rng.randint(0, 3))):
        updates.append(insert(*edge))
    if rng.random() < 0.35 and nodes:
        fresh = next_node[0]
        next_node[0] += 1
        updates.append(
            insert(rng.choice(nodes), fresh, target_label=rng.choice(LABELS))
        )
    rng.shuffle(updates)
    return Delta(updates)


@pytest.mark.parametrize("routing", [True, False], ids=["routed", "broadcast"])
@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize(
    "seed", range(3), ids=[f"stream-{seed}" for seed in range(3)]
)
def test_rpq_dataflow_parity(seed, executor, routing):
    query = QUERIES[seed % len(QUERIES)]
    rng = random.Random(0xDA7A + seed)
    graph = random_graph(rng)
    twin_graph = graph.copy()

    engine = Engine(graph, routing=routing)
    engine.scheduler.executor = executor
    engine.register("rpq", lambda g, m: RPQIndex(g, query, meter=m))
    engine.register("df", lambda g, m: DataflowView(g, "rpq", query, meter=m))
    # the dataflow recomposition declares the identical routing filter
    df_filter, rpq_filter = engine["df"].relevance(), engine["rpq"].relevance()
    assert type(df_filter) is type(rpq_filter)
    assert df_filter._alphabet == rpq_filter._alphabet
    assert df_filter._start_labels == rpq_filter._start_labels
    # broadcast twin: same stream, no engine, no routing — must converge
    # to byte-identical state.
    twin = DataflowView(twin_graph, "rpq", query)

    next_node = [1000]
    for _ in range(STEPS):
        batch = random_batch(rng, engine.graph, next_node)
        if not batch:
            continue
        engine.apply(batch)
        twin.apply(batch)
        assert canonical(engine["df"].value()) == canonical(
            engine["rpq"].matches
        ), f"dataflow diverged from rpq/incremental on {query!r}"
    assert twin.snapshot() == engine["df"].snapshot()
    assert canonical(twin.value()) == canonical(engine["rpq"].matches)

"""Engine/session tests: registration rules, single-mutation fan-out,
per-view cost accounting, validation atomicity, checkpoint/rollback, and
the cross-view consistency property — every registered view's answer
equals from-scratch recomputation after randomized engine batches."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Delta,
    DiGraph,
    Engine,
    EngineError,
    IncrementalSession,
    IncrementalView,
    InvalidDeltaError,
    delete,
    insert,
)
from repro.iso import ISOIndex, Pattern, vf2_matches
from repro.kws import KWSIndex, KWSQuery, batch_kws
from repro.rpq import RPQIndex, matches_only
from repro.scc import SCCIndex, tarjan_scc

LABELS = ["a", "b", "c"]
KWS_QUERY = KWSQuery(("a", "b"), bound=2)
RPQ_QUERY = "a . (b + c)* . c"
ISO_PATTERN = Pattern.from_edges({0: "a", 1: "b"}, [(0, 1)])


def sample_graph() -> DiGraph:
    return DiGraph(
        labels={1: "a", 2: "b", 3: "c", 4: "a", 5: "b"},
        edges=[(1, 2), (2, 3), (3, 1), (4, 5)],
    )


def four_view_engine(graph: DiGraph) -> Engine:
    engine = Engine(graph)
    engine.register("kws", lambda g, m: KWSIndex(g, KWS_QUERY, meter=m))
    engine.register("rpq", lambda g, m: RPQIndex(g, RPQ_QUERY, meter=m))
    engine.register("scc", lambda g, m: SCCIndex(g, meter=m))
    engine.register("iso", lambda g, m: ISOIndex(g, ISO_PATTERN, meter=m))
    return engine


def assert_views_match_recompute(engine: Engine) -> None:
    graph = engine.graph
    assert engine["kws"].roots() == set(batch_kws(graph, KWS_QUERY))
    assert engine["rpq"].matches == matches_only(graph, RPQ_QUERY)
    assert engine["scc"].components() == tarjan_scc(graph).partition()
    assert engine["iso"].matches == vf2_matches(graph, ISO_PATTERN)
    engine["scc"].check_consistency()
    engine["iso"].check_consistency()


class TestRegistration:
    def test_register_shares_the_graph(self):
        engine = four_view_engine(sample_graph())
        assert all(engine[name].graph is engine.graph for name in engine.names())
        assert len(engine) == 4

    def test_views_satisfy_protocol(self):
        engine = four_view_engine(sample_graph())
        for name in engine.names():
            assert isinstance(engine[name], IncrementalView)

    def test_register_rejects_private_copy(self):
        engine = Engine(sample_graph())
        with pytest.raises(EngineError, match="graph copy"):
            engine.register("scc", lambda g, m: SCCIndex(g.copy(), meter=m))

    def test_register_rejects_duplicate_name(self):
        engine = Engine(sample_graph())
        engine.register("scc", lambda g, m: SCCIndex(g, meter=m))
        with pytest.raises(EngineError, match="already registered"):
            engine.register("scc", lambda g, m: SCCIndex(g, meter=m))

    def test_attach_existing_view_and_meter_retrofit(self):
        graph = sample_graph()
        engine = Engine(graph)
        view = SCCIndex(graph)  # built with the default NULL_METER
        assert engine.attach("scc", view) is view
        engine.apply(Delta([insert(5, 1)]))
        assert engine.meter("scc") is view.meter
        assert "scc" in engine and "kws" not in engine

    def test_attach_rejects_foreign_graph(self):
        engine = Engine(sample_graph())
        with pytest.raises(EngineError, match="graph copy"):
            engine.attach("scc", SCCIndex(sample_graph()))

    def test_unknown_view_name(self):
        engine = Engine(sample_graph())
        with pytest.raises(EngineError, match="no view named"):
            engine.view("kws")

    def test_session_alias(self):
        assert IncrementalSession is Engine


class TestApply:
    def test_single_apply_updates_every_view(self):
        engine = four_view_engine(sample_graph())
        report = engine.apply(Delta([delete(3, 1), insert(5, 4)]))
        assert set(report.views) == {"kws", "rpq", "scc", "iso"}
        assert_views_match_recompute(engine)

    def test_report_outputs_and_costs(self):
        engine = four_view_engine(sample_graph())
        report = engine.apply(Delta([delete(3, 1)]))
        gained, lost = report.output("scc")
        assert lost == {frozenset({1, 2, 3})}
        assert gained == {frozenset({1}), frozenset({2}), frozenset({3})}
        assert report.cost("scc").total() > 0
        assert report.total_cost() == sum(v.cost.total() for v in report)

    def test_accepts_plain_update_iterables(self):
        engine = four_view_engine(sample_graph())
        engine.apply([insert(5, 1), delete(4, 5)])
        assert_views_match_recompute(engine)

    def test_unit_ops(self):
        engine = four_view_engine(sample_graph())
        engine.insert_edge(6, 1, source_label="b")
        assert engine.graph.label(6) == "b"
        engine.delete_edge(6, 1)
        assert_views_match_recompute(engine)

    def test_new_nodes_reported_and_labeled(self):
        engine = four_view_engine(sample_graph())
        report = engine.apply(Delta([insert(6, 7, "a", "b")]))
        assert report.new_nodes == {6, 7}
        assert engine.graph.label(6) == "a" and engine.graph.label(7) == "b"
        assert_views_match_recompute(engine)

    def test_normalization_happens_once_upstream(self):
        engine = four_view_engine(sample_graph())
        # insert+delete of the same edge cancels to a no-op batch
        report = engine.apply(Delta([insert(5, 1), delete(5, 1)]))
        assert len(report.delta) == 0
        assert_views_match_recompute(engine)

    def test_unapplicable_net_balance_raises(self):
        engine = four_view_engine(sample_graph())
        with pytest.raises(InvalidDeltaError):
            engine.apply(Delta([insert(5, 1), insert(5, 1)]))


class TestValidation:
    def test_bad_batch_leaves_graph_and_views_untouched(self):
        engine = four_view_engine(sample_graph())
        edges_before = set(engine.graph.edges())
        roots_before = set(engine["kws"].roots())
        with pytest.raises(InvalidDeltaError, match="already exists"):
            engine.apply(Delta([insert(5, 1), insert(1, 2)]))
        with pytest.raises(InvalidDeltaError, match="does not exist"):
            engine.apply(Delta([delete(1, 5)]))
        assert set(engine.graph.edges()) == edges_before
        assert set(engine["kws"].roots()) == roots_before
        assert engine.applied_count == 0

    def test_sequence_order_validation(self):
        engine = four_view_engine(sample_graph())
        # delete then re-insert the same edge is a valid sequence, and
        # normalization cancels it before any view sees it.
        engine.apply(Delta([delete(1, 2), insert(1, 2)]))
        assert engine.graph.has_edge(1, 2)
        assert_views_match_recompute(engine)


class TestRollback:
    def test_rollback_restores_every_view(self):
        engine = four_view_engine(sample_graph())
        components_before = engine["scc"].components()
        roots_before = set(engine["kws"].roots())
        mark = engine.checkpoint()
        engine.apply(Delta([delete(3, 1), insert(5, 4)]))
        engine.apply(Delta([insert(3, 5)]))
        assert engine.applied_count == mark + 2
        engine.rollback(mark)
        assert engine.applied_count == mark
        assert engine["scc"].components() == components_before
        assert set(engine["kws"].roots()) == roots_before
        assert_views_match_recompute(engine)

    def test_rollback_cancels_across_batches(self):
        engine = four_view_engine(sample_graph())
        mark = engine.checkpoint()
        engine.apply(Delta([insert(5, 1)]))
        engine.apply(Delta([delete(5, 1)]))
        engine.rollback(mark)  # the two batches cancel to an empty undo
        assert_views_match_recompute(engine)

    def test_rollback_out_of_range(self):
        engine = four_view_engine(sample_graph())
        with pytest.raises(EngineError, match="out of range"):
            engine.rollback(1)

    def test_rollback_keeps_isolated_new_nodes(self):
        engine = four_view_engine(sample_graph())
        mark = engine.checkpoint()
        engine.apply(Delta([insert(6, 7, "a", "b")]))
        engine.rollback(mark)
        assert engine.graph.has_node(6) and engine.graph.in_degree(7) == 0
        assert_views_match_recompute(engine)


# ----------------------------------------------------------------------
# Cross-view consistency property: after randomized engine batches, every
# view's answer equals from-scratch recomputation on the shared graph.
# ----------------------------------------------------------------------


@st.composite
def engine_workload(draw):
    """A random labeled graph plus a short stream of applicable batches."""
    size = draw(st.integers(min_value=2, max_value=10))
    labels = {node: draw(st.sampled_from(LABELS)) for node in range(size)}
    graph = DiGraph(labels=labels)
    possible = [(s, t) for s in range(size) for t in range(size) if s != t]
    for source, target in draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=3 * size)
    ):
        graph.add_edge(source, target)

    batches = []
    scratch = graph.copy()
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        edges = list(scratch.edges())
        nodes = list(scratch.nodes())
        non_edges = [
            (s, t)
            for s in nodes
            for t in nodes
            if s != t and not scratch.has_edge(s, t)
        ]
        deletions = draw(
            st.lists(st.sampled_from(edges), unique=True, max_size=3)
            if edges
            else st.just([])
        )
        insertions = draw(
            st.lists(st.sampled_from(non_edges), unique=True, max_size=3)
            if non_edges
            else st.just([])
        )
        fresh = draw(st.booleans())
        updates = [delete(*edge) for edge in deletions]
        updates += [insert(*edge) for edge in insertions]
        if fresh and nodes:
            new_node = scratch.num_nodes + 100
            updates.append(
                insert(
                    draw(st.sampled_from(nodes)),
                    new_node,
                    target_label=draw(st.sampled_from(LABELS)),
                )
            )
        batch = Delta(list(draw(st.permutations(updates))))
        batch.apply_to(scratch)
        batches.append(batch)
    return graph, batches


@settings(max_examples=50, deadline=None)
@given(engine_workload())
def test_cross_view_consistency(case):
    graph, batches = case
    engine = four_view_engine(graph.copy())
    for batch in batches:
        engine.apply(batch)
        assert_views_match_recompute(engine)


@settings(max_examples=25, deadline=None)
@given(engine_workload())
def test_engine_matches_standalone_views(case):
    """The absorb fan-out path produces the same ΔO stream as each view's
    standalone apply on its own graph copy."""
    graph, batches = case
    engine = four_view_engine(graph.copy())
    solo_scc = SCCIndex(graph.copy())
    solo_iso = ISOIndex(graph.copy(), ISO_PATTERN)
    for batch in batches:
        report = engine.apply(batch)
        assert report.output("scc") == solo_scc.apply(batch)
        assert report.output("iso") == solo_iso.apply(batch)
    assert engine["scc"].components() == solo_scc.components()
    assert engine["iso"].matches == solo_iso.matches


@settings(max_examples=25, deadline=None)
@given(engine_workload())
def test_rollback_property(case):
    graph, batches = case
    engine = four_view_engine(graph.copy())
    mark = engine.checkpoint()
    for batch in batches:
        engine.apply(batch)
    engine.rollback(mark)
    assert set(engine.graph.edges()) == set(graph.edges())
    assert_views_match_recompute(engine)

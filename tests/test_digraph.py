"""Unit tests for the DiGraph substrate."""

import pytest

from repro.graph import (
    DiGraph,
    DuplicateEdgeError,
    MissingEdgeError,
    MissingNodeError,
)


@pytest.fixture
def triangle() -> DiGraph:
    g = DiGraph()
    g.add_node(1, label="a")
    g.add_node(2, label="b")
    g.add_node(3, label="c")
    g.add_edge(1, 2)
    g.add_edge(2, 3)
    g.add_edge(3, 1)
    return g


class TestNodes:
    def test_add_node_sets_label(self, triangle):
        assert triangle.label(1) == "a"

    def test_re_add_node_updates_label_only(self, triangle):
        triangle.add_node(1, label="z")
        assert triangle.label(1) == "z"
        assert triangle.has_edge(1, 2)

    def test_missing_label_raises(self, triangle):
        with pytest.raises(MissingNodeError):
            triangle.label(99)

    def test_set_label(self, triangle):
        triangle.set_label(2, "q")
        assert triangle.label(2) == "q"

    def test_set_label_missing_node(self, triangle):
        with pytest.raises(MissingNodeError):
            triangle.set_label(99, "q")

    def test_nodes_with_label(self, triangle):
        triangle.add_node(4, label="a")
        assert set(triangle.nodes_with_label("a")) == {1, 4}

    def test_contains(self, triangle):
        assert 1 in triangle
        assert 99 not in triangle

    def test_remove_node_drops_incident_edges(self, triangle):
        triangle.remove_node(2)
        assert 2 not in triangle
        assert not triangle.has_edge(1, 2)
        assert triangle.num_edges == 1  # only (3, 1) remains

    def test_remove_missing_node(self, triangle):
        with pytest.raises(MissingNodeError):
            triangle.remove_node(42)


class TestEdges:
    def test_add_edge_creates_endpoints(self):
        g = DiGraph()
        g.add_edge("x", "y", source_label="a", target_label="b")
        assert g.label("x") == "a"
        assert g.label("y") == "b"

    def test_add_edge_keeps_existing_labels(self, triangle):
        triangle.add_edge(1, 3, source_label="zzz")
        assert triangle.label(1) == "a"

    def test_duplicate_edge_raises(self, triangle):
        with pytest.raises(DuplicateEdgeError):
            triangle.add_edge(1, 2)

    def test_remove_edge(self, triangle):
        triangle.remove_edge(1, 2)
        assert not triangle.has_edge(1, 2)
        assert triangle.num_edges == 2

    def test_remove_missing_edge_raises(self, triangle):
        with pytest.raises(MissingEdgeError):
            triangle.remove_edge(1, 3)

    def test_self_loop_allowed(self):
        g = DiGraph()
        g.add_node(1)
        g.add_edge(1, 1)
        assert g.has_edge(1, 1)
        assert list(g.successors(1)) == [1]

    def test_adjacency_is_bidirectional(self, triangle):
        assert set(triangle.successors(1)) == {2}
        assert set(triangle.predecessors(1)) == {3}

    def test_degrees(self, triangle):
        assert triangle.out_degree(1) == 1
        assert triangle.in_degree(1) == 1

    def test_adjacency_missing_node(self, triangle):
        with pytest.raises(MissingNodeError):
            list(triangle.successors(42))
        with pytest.raises(MissingNodeError):
            list(triangle.predecessors(42))

    def test_edges_iteration(self, triangle):
        assert set(triangle.edges()) == {(1, 2), (2, 3), (3, 1)}


class TestSizeAndEquality:
    def test_sizes(self, triangle):
        assert triangle.num_nodes == 3
        assert triangle.num_edges == 3
        assert triangle.size() == 6
        assert len(triangle) == 3

    def test_equality(self, triangle):
        other = DiGraph(
            labels={1: "a", 2: "b", 3: "c"},
            edges=[(1, 2), (2, 3), (3, 1)],
        )
        assert triangle == other

    def test_inequality_on_labels(self, triangle):
        other = triangle.copy()
        other.set_label(1, "x")
        assert triangle != other

    def test_inequality_on_edges(self, triangle):
        other = triangle.copy()
        other.remove_edge(1, 2)
        assert triangle != other

    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.remove_edge(1, 2)
        assert triangle.has_edge(1, 2)
        clone.add_node(99, label="x")
        assert 99 not in triangle


class TestSubgraphs:
    def test_induced_subgraph(self, triangle):
        sub = triangle.subgraph([1, 2])
        assert set(sub.nodes()) == {1, 2}
        assert set(sub.edges()) == {(1, 2)}
        assert sub.label(1) == "a"

    def test_subgraph_missing_node(self, triangle):
        with pytest.raises(MissingNodeError):
            triangle.subgraph([1, 42])

    def test_edge_subgraph(self, triangle):
        sub = triangle.edge_subgraph([(1, 2), (2, 3)])
        assert set(sub.nodes()) == {1, 2, 3}
        assert set(sub.edges()) == {(1, 2), (2, 3)}

    def test_edge_subgraph_missing_edge(self, triangle):
        with pytest.raises(MissingEdgeError):
            triangle.edge_subgraph([(1, 3)])

    def test_reverse(self, triangle):
        rev = triangle.reverse()
        assert set(rev.edges()) == {(2, 1), (3, 2), (1, 3)}
        assert rev.label(1) == "a"

    def test_from_labeled_edges(self):
        g = DiGraph.from_labeled_edges({1: "a", 2: "b"}, [(1, 2)])
        assert g.label(2) == "b"
        assert g.has_edge(1, 2)

"""The paper's running example, end to end (Fig. 2, Examples 1-9).

Each test mirrors one numbered example's narrative; the kdist tables of
Example 1 and the match-pair changes of Example 5 are checked verbatim.
See repro/workloads/paper_example.py for the reconstruction notes.
"""

import pytest

from repro.core.delta import Delta
from repro.kws import KDistEntry, KWSIndex, verify_kdist
from repro.rpq import RPQIndex, matches_only, verify_markings
from repro.scc import SCCIndex, tarjan_scc
from repro.workloads.paper_example import (
    E1,
    E2,
    E3,
    E4,
    E5,
    PAPER_BATCH,
    PAPER_KWS_QUERY,
    PAPER_RPQ_QUERY,
    paper_graph,
)


class TestExample1InsertE1:
    """IncKWS+ on insert e1 = (b2, d1)."""

    def test_initial_matches_are_tb2_and_td2(self):
        index = KWSIndex(paper_graph(), PAPER_KWS_QUERY)
        assert set(index.roots()) == {"b2", "d2"}
        tb2 = index.match_at("b2")
        assert tb2.paths["a"] == ("b2", "b3", "a2")
        assert tb2.paths["d"] == ("b2", "b4", "d1")
        td2 = index.match_at("d2")
        assert td2.paths["d"] == ("d2",)
        assert td2.paths["a"] == ("d2", "a1")

    def test_kdist_table_before_and_after(self):
        # the paper's in-text table for IncKWS+
        index = KWSIndex(paper_graph(), PAPER_KWS_QUERY)
        assert index.kdist.get("b2", "d") == KDistEntry(2, "b4")
        assert index.kdist.get("c2", "d") is None  # ⟨⊥, nil⟩
        index.insert_edge("b2", "d1")
        assert index.kdist.get("b2", "d") == KDistEntry(1, "d1")
        assert index.kdist.get("c2", "d") == KDistEntry(2, "b2")
        verify_kdist(index.graph, index.kdist)

    def test_propagation_stops_at_c2(self):
        # c2's d-distance reaches the bound, so its predecessor c1 must
        # not acquire an entry.
        index = KWSIndex(paper_graph(), PAPER_KWS_QUERY)
        index.insert_edge("b2", "d1")
        assert index.kdist.get("c1", "d") is None

    def test_tb2_revised_and_tc2_added(self):
        index = KWSIndex(paper_graph(), PAPER_KWS_QUERY)
        delta_o = index.insert_edge("b2", "d1")
        assert "c2" in delta_o.added
        assert "b2" in delta_o.rerouted
        tb2 = index.match_at("b2")
        assert tb2.paths["d"] == ("b2", "d1")
        tc2 = index.match_at("c2")
        assert tc2.paths["d"] == ("c2", "b2", "d1")
        assert tc2.paths["a"] == ("c2", "b3", "a2")


class TestExample2DeleteE2:
    """IncKWS− on delete e2 = (c2, b3) from G1 = G ⊕ e1."""

    def test_tc2_removed(self):
        index = KWSIndex(paper_graph(), PAPER_KWS_QUERY)
        index.insert_edge("b2", "d1")
        assert index.kdist.get("c2", "a") == KDistEntry(2, "b3")
        delta_o = index.delete_edge("c2", "b3")
        # "the shortest distance from successor b2 of c2 to nodes matching
        # a equals the bound 2 ... c2 cannot be the root of a match"
        assert index.kdist.get("b2", "a").dist == 2
        assert index.kdist.get("c2", "a") is None
        assert "c2" in delta_o.removed
        assert set(index.roots()) == {"b2", "d2"}
        verify_kdist(index.graph, index.kdist)


class TestExample3BatchKWS:
    """IncKWS on the full batch ΔG."""

    def test_affected_nodes_lose_a_entries(self):
        index = KWSIndex(paper_graph(), PAPER_KWS_QUERY)
        index.apply(PAPER_BATCH)
        # c1 was affected w.r.t. a and its potential exceeds the bound:
        assert index.kdist.get("c1", "a") is None
        verify_kdist(index.graph, index.kdist)

    def test_tb2_branches_replaced_with_direct_edges(self):
        index = KWSIndex(paper_graph(), PAPER_KWS_QUERY)
        index.apply(PAPER_BATCH)
        tb2 = index.match_at("b2")
        assert tb2.paths["a"] == ("b2", "a1")
        assert tb2.paths["d"] == ("b2", "d1")

    def test_tb4_added(self):
        index = KWSIndex(paper_graph(), PAPER_KWS_QUERY)
        delta_o = index.apply(PAPER_BATCH)
        assert "b4" in delta_o.added
        tb4 = index.match_at("b4")
        # b4 has two equal-length paths to an a-node, via b2 and via b3
        # (the paper's narrative shows (b4, b3, a2)); the "predefined
        # order in case of a tie" is node_order, which selects b2 — the
        # same witness a from-scratch compute_kdist picks.
        assert tb4.paths["a"] == ("b4", "b2", "a1")
        assert tb4.paths["d"] == ("b4", "d1")

    def test_new_tc2_via_b2(self):
        index = KWSIndex(paper_graph(), PAPER_KWS_QUERY)
        index.apply(PAPER_BATCH)
        tc2 = index.match_at("c2")
        # "path (c2, b3, a2) in T_c2 ... is replaced by (c2, b2, a1)"
        assert tc2.paths["a"] == ("c2", "b2", "a1")
        assert tc2.paths["d"] == ("c2", "b2", "d1")

    def test_final_roots(self):
        index = KWSIndex(paper_graph(), PAPER_KWS_QUERY)
        index.apply(PAPER_BATCH)
        assert set(index.roots()) == {"b2", "b4", "c2", "d2"}


class TestExamples4And5RPQ:
    """RPQ_NFA and IncRPQ on Q = c·(b·a + c)*·c."""

    def test_initial_matches(self):
        assert matches_only(paper_graph(), PAPER_RPQ_QUERY) == {("c1", "c2")}

    def test_batch_adds_paper_pairs(self):
        index = RPQIndex(paper_graph(), PAPER_RPQ_QUERY)
        delta_o = index.apply(PAPER_BATCH)
        # the pairs the paper's Example 5 adds:
        assert ("c2", "c1") in delta_o.added
        assert ("c1", "c1") in delta_o.added
        assert index.matches == {
            ("c1", "c2"), ("c2", "c1"), ("c1", "c1"), ("c2", "c2"),
        }
        verify_markings(index.graph, PAPER_RPQ_QUERY, index.markings)

    def test_accepting_state_reached_through_new_route(self):
        # After the batch, (c2, c2) is witnessed by c2 -> b2 -> a1 -> c1
        # -> c2 spelling c (ba) c c — the "another path connecting these
        # two nodes in G_I is formed as a result of insertions" narrative.
        index = RPQIndex(paper_graph(), PAPER_RPQ_QUERY)
        index.apply(PAPER_BATCH)
        expected = matches_only(index.graph, PAPER_RPQ_QUERY)
        assert index.matches == expected


class TestExamples6To9SCC:
    """Tarjan structures and IncSCC on the reconstruction."""

    def test_initial_components(self):
        result = tarjan_scc(paper_graph())
        assert result.partition() == {
            frozenset({"a1", "b1", "c1"}),
            frozenset({"b2", "b4"}),
            frozenset({"a2", "b3"}),
            frozenset({"c2"}),
            frozenset({"d1"}),
            frozenset({"d2"}),
        }

    def test_example9_deleting_e5_splits_into_three(self):
        index = SCCIndex(paper_graph())
        added, removed = index.delete_edge("c1", "a1")
        assert removed == {frozenset({"a1", "b1", "c1"})}
        assert added == {
            frozenset({"a1"}), frozenset({"b1"}), frozenset({"c1"}),
        }
        index.check_consistency()

    def test_example7_insert_e4_no_cycle(self):
        # In our reconstruction (b2, b3) already orders the two components
        # consistently, so inserting (b4, b3) cannot merge anything —
        # exercising the counter-bump branch of IncSCC+ (Fig. 7 line 3).
        index = SCCIndex(paper_graph())
        added, removed = index.insert_edge("b4", "b3")
        assert (added, removed) == (set(), set())
        index.check_consistency()

    def test_example8_batch(self):
        index = SCCIndex(paper_graph())
        index.apply(PAPER_BATCH)
        assert index.components() == {
            frozenset({"a1", "b1", "c1", "c2", "b2", "b4"}),
            frozenset({"a2", "b3"}),
            frozenset({"d1"}),
            frozenset({"d2"}),
        }
        # d2 stays outside the merge, exactly as the paper notes.
        index.check_consistency()

    def test_batch_matches_recompute(self):
        index = SCCIndex(paper_graph())
        index.apply(PAPER_BATCH)
        assert index.components() == tarjan_scc(index.graph).partition()


class TestUnitSequenceConsistency:
    """The batch and the unit-update sequence agree on the example."""

    def test_kws_batch_equals_units(self):
        batch_index = KWSIndex(paper_graph(), PAPER_KWS_QUERY)
        batch_index.apply(PAPER_BATCH)
        unit_index = KWSIndex(paper_graph(), PAPER_KWS_QUERY)
        for update in [E1, E3, E4, E2, E5]:
            if update.is_insert:
                unit_index.insert_edge(update.source, update.target)
            else:
                unit_index.delete_edge(update.source, update.target)
        assert batch_index.profile() == unit_index.profile()

    def test_rpq_batch_equals_units(self):
        batch_index = RPQIndex(paper_graph(), PAPER_RPQ_QUERY)
        batch_index.apply(PAPER_BATCH)
        unit_index = RPQIndex(paper_graph(), PAPER_RPQ_QUERY)
        unit_index.apply(Delta([E1]))
        unit_index.apply(Delta([E3]))
        unit_index.apply(Delta([E4]))
        unit_index.apply(Delta([E2]))
        unit_index.apply(Delta([E5]))
        assert batch_index.matches == unit_index.matches

"""Tests for IncSCC (paper Section 5.3): unit insertions (Fig. 7), unit
deletions, batch processing, and equivalence with recomputation."""

import random

import pytest

from repro.core.cost import CostMeter
from repro.core.delta import Delta, delete, insert
from repro.graph import DiGraph
from repro.graph.generators import label_alphabet, uniform_random_graph
from repro.graph.updates import random_delta
from repro.scc import DynSCC, SCCIndex, inc_scc_n, tarjan_scc

ALPHABET = label_alphabet(6)


def fresh_partition(graph: DiGraph) -> set[frozenset]:
    return tarjan_scc(graph).partition()


def make_index(seed: int, nodes: int = 40, edges: int = 100) -> SCCIndex:
    graph = uniform_random_graph(nodes, edges, ALPHABET, seed=seed)
    return SCCIndex(graph)


class TestUnitInsert:
    def test_same_component_keeps_partition(self):
        g = DiGraph(labels={i: "x" for i in range(3)},
                    edges=[(0, 1), (1, 2), (2, 0)])
        index = SCCIndex(g)
        added, removed = index.insert_edge(0, 2)
        assert (added, removed) == (set(), set())
        assert index.components() == fresh_partition(g)
        index.check_consistency()

    def test_rank_respecting_insert_changes_nothing(self):
        g = DiGraph(labels={i: "x" for i in range(3)}, edges=[(0, 1), (1, 2)])
        index = SCCIndex(g)
        before = index.components()
        added, removed = index.insert_edge(0, 2)
        assert (added, removed) == (set(), set())
        assert index.components() == before
        index.check_consistency()

    def test_two_component_merge(self):
        g = DiGraph(labels={i: "x" for i in range(2)}, edges=[(0, 1)])
        index = SCCIndex(g)
        added, removed = index.insert_edge(1, 0)
        assert added == {frozenset({0, 1})}
        assert removed == {frozenset({0}), frozenset({1})}
        index.check_consistency()

    def test_chain_collapse(self):
        # 0 -> 1 -> 2 -> 3 plus closing edge 3 -> 0 merges all four.
        g = DiGraph(labels={i: "x" for i in range(4)},
                    edges=[(0, 1), (1, 2), (2, 3)])
        index = SCCIndex(g)
        added, removed = index.insert_edge(3, 0)
        assert added == {frozenset({0, 1, 2, 3})}
        assert len(removed) == 4
        index.check_consistency()

    def test_partial_merge_keeps_bystanders(self):
        # diamond: 0 -> {1, 2} -> 3 ; closing 3 -> 1 merges {1, 3} only...
        # via 1->3? 1 -> 3 and 3 -> 1 so {1,3}; 2 stays alone.
        g = DiGraph(labels={i: "x" for i in range(4)},
                    edges=[(0, 1), (0, 2), (1, 3), (2, 3)])
        index = SCCIndex(g)
        added, removed = index.insert_edge(3, 1)
        assert added == {frozenset({1, 3})}
        assert index.components() == fresh_partition(index.graph)
        index.check_consistency()

    def test_realloc_without_cycle(self):
        # 0 -> 1, 2 -> 3 independent; insert 1 -> 2 may violate ranks
        # (depending on emission) but never merges.
        g = DiGraph(labels={i: "x" for i in range(4)}, edges=[(0, 1), (2, 3)])
        index = SCCIndex(g)
        added, removed = index.insert_edge(1, 2)
        assert (added, removed) == (set(), set())
        index.check_consistency()

    def test_insert_with_new_source_node(self):
        g = DiGraph(labels={0: "x", 1: "x"}, edges=[(0, 1)])
        index = SCCIndex(g)
        added, removed = index.insert_edge(99, 0, source_label="n")
        assert frozenset({99}) in added
        assert removed == set()
        index.check_consistency()

    def test_insert_with_new_target_node(self):
        g = DiGraph(labels={0: "x", 1: "x"}, edges=[(0, 1)])
        index = SCCIndex(g)
        added, removed = index.insert_edge(1, 77, target_label="n")
        assert frozenset({77}) in added
        index.check_consistency()

    @pytest.mark.parametrize("seed", range(10))
    def test_random_unit_inserts_match_recompute(self, seed):
        index = make_index(seed)
        rng = random.Random(seed)
        nodes = list(index.graph.nodes())
        performed = 0
        while performed < 12:
            source, target = rng.choice(nodes), rng.choice(nodes)
            if source == target or index.graph.has_edge(source, target):
                continue
            index.insert_edge(source, target)
            performed += 1
            assert index.components() == fresh_partition(index.graph)
        index.check_consistency()


class TestUnitDelete:
    def test_inter_component_delete_keeps_partition(self):
        g = DiGraph(labels={i: "x" for i in range(3)}, edges=[(0, 1), (1, 2)])
        index = SCCIndex(g)
        added, removed = index.delete_edge(0, 1)
        assert (added, removed) == (set(), set())
        index.check_consistency()

    def test_cycle_break_splits(self):
        g = DiGraph(labels={i: "x" for i in range(3)},
                    edges=[(0, 1), (1, 2), (2, 0)])
        index = SCCIndex(g)
        added, removed = index.delete_edge(2, 0)
        assert removed == {frozenset({0, 1, 2})}
        assert added == {frozenset({0}), frozenset({1}), frozenset({2})}
        index.check_consistency()

    def test_chord_delete_keeps_component(self):
        g = DiGraph(labels={i: "x" for i in range(3)},
                    edges=[(0, 1), (1, 2), (2, 0), (0, 2)])
        index = SCCIndex(g)
        added, removed = index.delete_edge(0, 2)
        assert (added, removed) == (set(), set())
        assert index.components() == {frozenset({0, 1, 2})}
        index.check_consistency()

    def test_split_into_two_components(self):
        # two 2-cycles joined: 0<->1, 1->2, 2<->3, 3->0 is one big SCC;
        # deleting 3->0 splits into {0,1}+{2,3}? After deletion edges:
        # 0<->1, 1->2, 2<->3 — SCCs {0,1} and {2,3}.
        g = DiGraph(labels={i: "x" for i in range(4)},
                    edges=[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (3, 0)])
        index = SCCIndex(g)
        added, removed = index.delete_edge(3, 0)
        assert removed == {frozenset({0, 1, 2, 3})}
        assert added == {frozenset({0, 1}), frozenset({2, 3})}
        index.check_consistency()

    @pytest.mark.parametrize("seed", range(10))
    def test_random_unit_deletes_match_recompute(self, seed):
        index = make_index(seed, nodes=30, edges=120)
        rng = random.Random(100 + seed)
        for _ in range(12):
            edges = list(index.graph.edges())
            if not edges:
                break
            source, target = rng.choice(edges)
            index.delete_edge(source, target)
            assert index.components() == fresh_partition(index.graph)
        index.check_consistency()


class TestBatch:
    @pytest.mark.parametrize("seed", range(12))
    def test_batch_matches_recompute(self, seed):
        graph = uniform_random_graph(40, 120, ALPHABET, seed=seed)
        delta = random_delta(graph, 30, seed=seed)
        expected = tarjan_scc(delta.applied(graph)).partition()
        index = SCCIndex(graph.copy())
        index.apply(delta)
        assert index.components() == expected
        index.check_consistency()

    def test_delta_output_equation(self):
        # SCC(G ⊕ ΔG) = SCC(G) ⊕ ΔO
        graph = uniform_random_graph(35, 100, ALPHABET, seed=42)
        before = tarjan_scc(graph).partition()
        delta = random_delta(graph, 24, seed=43)
        index = SCCIndex(graph.copy())
        added, removed = index.apply(delta)
        patched = (before - removed) | added
        assert patched == index.components()
        assert removed <= before
        assert not (added & before)

    def test_insert_delete_same_area(self):
        g = DiGraph(labels={i: "x" for i in range(4)},
                    edges=[(0, 1), (1, 2), (2, 3)])
        index = SCCIndex(g)
        delta = Delta([insert(3, 0), delete(1, 2)])
        index.apply(delta)
        assert index.components() == fresh_partition(index.graph)
        index.check_consistency()

    def test_batch_with_new_nodes(self):
        graph = uniform_random_graph(20, 50, ALPHABET, seed=7)
        delta = random_delta(graph, 16, seed=8, new_node_fraction=0.5)
        expected = tarjan_scc(delta.applied(graph)).partition()
        index = SCCIndex(graph.copy())
        index.apply(delta)
        assert index.components() == expected
        index.check_consistency()

    def test_unnormalized_batch_is_normalized_internally(self):
        g = DiGraph(labels={i: "x" for i in range(3)}, edges=[(0, 1)])
        index = SCCIndex(g)
        delta = Delta([insert(1, 2), delete(1, 2)])
        index.apply(delta)
        assert index.components() == fresh_partition(index.graph)

    @pytest.mark.parametrize("rho", [0.25, 1.0, 4.0])
    def test_rho_variations(self, rho):
        graph = uniform_random_graph(40, 140, ALPHABET, seed=11)
        delta = random_delta(graph, 28, rho=rho, seed=12)
        index = SCCIndex(graph.copy())
        index.apply(delta)
        assert index.components() == tarjan_scc(index.graph).partition()
        index.check_consistency()


class TestIncSCCn:
    @pytest.mark.parametrize("seed", range(6))
    def test_unit_at_a_time_matches_recompute(self, seed):
        graph = uniform_random_graph(30, 90, ALPHABET, seed=seed)
        delta = random_delta(graph, 20, seed=seed)
        expected = tarjan_scc(delta.applied(graph)).partition()
        index = SCCIndex(graph.copy())
        inc_scc_n(index, delta)
        assert index.components() == expected
        index.check_consistency()

    def test_batch_and_unit_agree(self):
        graph = uniform_random_graph(30, 90, ALPHABET, seed=77)
        delta = random_delta(graph, 24, seed=78)
        batch_index = SCCIndex(graph.copy())
        batch_index.apply(delta)
        unit_index = SCCIndex(graph.copy())
        inc_scc_n(unit_index, delta)
        assert batch_index.components() == unit_index.components()


class TestDynSCC:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_recompute(self, seed):
        graph = uniform_random_graph(30, 90, ALPHABET, seed=seed)
        delta = random_delta(graph, 20, seed=seed)
        expected = tarjan_scc(delta.applied(graph)).partition()
        dyn = DynSCC(graph.copy())
        dyn.apply(delta)
        assert dyn.components() == expected

    def test_dynscc_costs_exceed_incscc_on_stable_output(self):
        # Inserting forward edges into a DAG keeps SCC(G) stable; DynSCC
        # still pays unpruned searches while IncSCC uses ranks (Exp-1(3)(b)).
        g = DiGraph(labels={i: "x" for i in range(60)},
                    edges=[(i, i + 1) for i in range(59)])
        inc_meter, dyn_meter = CostMeter(), CostMeter()
        index = SCCIndex(g.copy(), meter=inc_meter)
        dyn = DynSCC(g.copy(), meter=dyn_meter)
        inc_meter.reset(), dyn_meter.reset()
        delta = Delta([insert(0, 30), insert(5, 45), insert(10, 50)])
        index.apply(delta)
        dyn.apply(delta)
        assert index.components() == dyn.components()
        assert dyn_meter.total() > inc_meter.total()


class TestRelativeBoundedness:
    def test_stable_update_cost_independent_of_graph_size(self):
        # The same local update (a far-away 2-cycle flip) against growing
        # chains: IncSCC's measured work must not scale with |G|.
        costs = []
        for scale in (100, 400, 1600):
            g = DiGraph(labels={i: "x" for i in range(scale)},
                        edges=[(i, i + 1) for i in range(scale - 1)])
            meter = CostMeter()
            index = SCCIndex(g, meter=meter)
            meter.reset()
            index.insert_edge(1, 0)   # merge {0,1}
            index.delete_edge(1, 0)   # split back
            costs.append(meter.total())
        assert costs[2] <= costs[0] * 3  # flat, not linear in |G|

"""Long-stream integration: all four indexes maintained side by side over
many rounds of churn on one evolving graph, each round cross-checked
against recomputation.  This is the sustained-use scenario none of the
single-batch tests covers (auxiliary structures must survive arbitrarily
long update histories, including repeated growth and shrinkage)."""

import pytest

from repro.graph.generators import label_alphabet, uniform_random_graph
from repro.graph.updates import random_delta
from repro.iso import ISOIndex, Pattern, vf2_matches
from repro.kws import KWSIndex, KWSQuery, compute_kdist, distance_profile, verify_kdist
from repro.rpq import RPQIndex, matches_only, verify_markings
from repro.scc import SCCIndex, tarjan_scc

ALPHABET = label_alphabet(5)
ROUNDS = 8


@pytest.fixture(scope="module")
def stream_state():
    graph = uniform_random_graph(45, 140, ALPHABET, seed=77)
    kws_query = KWSQuery((ALPHABET[0], ALPHABET[1]), 2)
    rpq_query = f"{ALPHABET[0]} . ({ALPHABET[1]} + {ALPHABET[2]})* . {ALPHABET[2]}"
    pattern = Pattern.from_edges(
        {0: ALPHABET[0], 1: ALPHABET[1], 2: ALPHABET[2]}, [(0, 1), (1, 2)]
    )
    return graph, kws_query, rpq_query, pattern


@pytest.mark.parametrize("rho", [0.5, 1.0, 2.0])
def test_sustained_stream_all_classes(stream_state, rho):
    graph, kws_query, rpq_query, pattern = stream_state
    kws = KWSIndex(graph.copy(), kws_query)
    rpq = RPQIndex(graph.copy(), rpq_query)
    scc = SCCIndex(graph.copy())
    iso = ISOIndex(graph.copy(), pattern)

    for round_number in range(ROUNDS):
        # All four indexes see the *same* update stream; sizes vary by
        # round so the graph breathes (grows under rho > 1, shrinks
        # under rho < 1) without ever emptying.
        size = 8 + 3 * (round_number % 3)
        delta = random_delta(
            kws.graph, size, rho=rho, seed=1000 * round_number + int(rho * 4)
        )
        kws.apply(delta)
        rpq.apply(delta)
        scc.apply(delta)
        iso.apply(delta)

        reference = kws.graph  # all four graphs evolve identically
        assert rpq.graph == reference
        assert scc.graph == reference
        assert iso.graph == reference

        verify_kdist(reference, kws.kdist)
        assert kws.profile() == distance_profile(
            compute_kdist(reference, kws_query)
        )
        assert rpq.matches == matches_only(reference, rpq_query)
        verify_markings(reference, rpq_query, rpq.markings)
        assert scc.components() == tarjan_scc(reference).partition()
        scc.check_consistency()
        assert iso.matches == vf2_matches(reference, pattern)
        iso.check_consistency()


def test_stream_with_node_growth(stream_state):
    graph, kws_query, rpq_query, pattern = stream_state
    kws = KWSIndex(graph.copy(), kws_query)
    scc = SCCIndex(graph.copy())
    for round_number in range(5):
        delta = random_delta(
            kws.graph,
            10,
            rho=3.0,
            seed=37 + round_number,
            new_node_fraction=0.4,
            alphabet=ALPHABET,
        )
        kws.apply(delta)
        scc.apply(delta)
        assert scc.graph == kws.graph
        verify_kdist(kws.graph, kws.kdist)
        assert scc.components() == tarjan_scc(scc.graph).partition()
    assert kws.graph.num_nodes > graph.num_nodes  # new nodes actually arrived

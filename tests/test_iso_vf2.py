"""Tests for patterns and VF2, cross-checked against networkx's matcher."""

import networkx as nx
import pytest

from repro.graph import DiGraph
from repro.graph.generators import label_alphabet, uniform_random_graph
from repro.iso import Pattern, PatternError, has_match, vf2_matches

ALPHABET = label_alphabet(4)


def nx_match_subgraphs(graph: DiGraph, pattern: Pattern) -> set:
    """Oracle: networkx monomorphisms, canonicalized like our matches."""
    big = nx.DiGraph()
    for node in graph.nodes():
        big.add_node(node, label=graph.label(node))
    big.add_edges_from(graph.edges())
    small = nx.DiGraph()
    for node in pattern.graph.nodes():
        small.add_node(node, label=pattern.graph.label(node))
    small.add_edges_from(pattern.graph.edges())
    matcher = nx.algorithms.isomorphism.DiGraphMatcher(
        big,
        small,
        node_match=lambda a, b: a["label"] == b["label"],
    )
    found = set()
    for mapping in matcher.subgraph_monomorphisms_iter():
        # mapping: big node -> small node; invert it
        inverted = {small_node: big_node for big_node, small_node in mapping.items()}
        nodes = frozenset(inverted.values())
        edges = frozenset(
            (inverted[s], inverted[t]) for s, t in pattern.graph.edges()
        )
        found.add((nodes, edges))
    return found


def canonical(matches) -> set:
    return {(match.nodes, match.edges) for match in matches}


@pytest.fixture
def triangle_pattern() -> Pattern:
    return Pattern.from_edges(
        {0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2), (2, 0)]
    )


class TestPattern:
    def test_diameter_of_path(self):
        pattern = Pattern.from_edges({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        assert pattern.diameter == 2

    def test_diameter_of_triangle(self, triangle_pattern):
        assert triangle_pattern.diameter == 1

    def test_shape(self, triangle_pattern):
        assert triangle_pattern.shape() == (3, 3, 1)

    def test_disconnected_rejected(self):
        with pytest.raises(PatternError):
            Pattern.from_edges({0: "a", 1: "b"}, [])

    def test_empty_rejected(self):
        with pytest.raises(PatternError):
            Pattern.from_graph(DiGraph())

    def test_label_multiset(self, triangle_pattern):
        assert triangle_pattern.label_multiset() == {"a": 1, "b": 1, "c": 1}

    def test_single_node_pattern(self):
        pattern = Pattern.from_edges({0: "a"}, [])
        assert pattern.diameter == 0


class TestVF2Basics:
    def test_triangle_found(self, triangle_pattern):
        g = DiGraph(labels={10: "a", 11: "b", 12: "c"},
                    edges=[(10, 11), (11, 12), (12, 10)])
        matches = vf2_matches(g, triangle_pattern)
        assert len(matches) == 1
        match = next(iter(matches))
        assert match.nodes == frozenset({10, 11, 12})

    def test_label_mismatch_blocks(self, triangle_pattern):
        g = DiGraph(labels={10: "a", 11: "b", 12: "d"},
                    edges=[(10, 11), (11, 12), (12, 10)])
        assert vf2_matches(g, triangle_pattern) == set()

    def test_direction_matters(self, triangle_pattern):
        g = DiGraph(labels={10: "a", 11: "b", 12: "c"},
                    edges=[(10, 11), (12, 11), (12, 10)])  # (11,12) flipped
        assert vf2_matches(g, triangle_pattern) == set()

    def test_non_induced_semantics(self):
        # pattern a -> b; graph has a->b and b->a: the extra edge must not
        # block the match (non-induced embedding).
        pattern = Pattern.from_edges({0: "a", 1: "b"}, [(0, 1)])
        g = DiGraph(labels={5: "a", 6: "b"}, edges=[(5, 6), (6, 5)])
        matches = vf2_matches(g, pattern)
        assert len(matches) == 1
        assert next(iter(matches)).edges == frozenset({(5, 6)})

    def test_automorphisms_collapse(self):
        # symmetric pattern a <-> a on graph a <-> a: one match, not two.
        pattern = Pattern.from_edges({0: "a", 1: "a"}, [(0, 1), (1, 0)])
        g = DiGraph(labels={5: "a", 6: "a"}, edges=[(5, 6), (6, 5)])
        matches = vf2_matches(g, pattern)
        assert len(matches) == 1

    def test_injectivity(self):
        # pattern a -> a needs two distinct a-nodes; a self-loop is no match.
        pattern = Pattern.from_edges({0: "a", 1: "a"}, [(0, 1)])
        g = DiGraph(labels={5: "a"})
        g.add_edge(5, 5)
        assert vf2_matches(g, pattern) == set()

    def test_required_edge_filter(self):
        pattern = Pattern.from_edges({0: "a", 1: "b"}, [(0, 1)])
        g = DiGraph(labels={1: "a", 2: "b", 3: "b"}, edges=[(1, 2), (1, 3)])
        all_matches = vf2_matches(g, pattern)
        assert len(all_matches) == 2
        filtered = vf2_matches(g, pattern, required_edge=(1, 3))
        assert len(filtered) == 1
        assert next(iter(filtered)).edges == frozenset({(1, 3)})

    def test_has_match_early_exit(self):
        pattern = Pattern.from_edges({0: "a", 1: "b"}, [(0, 1)])
        g = DiGraph(labels={i: "a" if i % 2 == 0 else "b" for i in range(20)})
        for i in range(0, 20, 2):
            g.add_edge(i, i + 1)
        assert has_match(g, pattern)

    def test_single_node_pattern_matches_by_label(self):
        pattern = Pattern.from_edges({0: "q"}, [])
        g = DiGraph(labels={1: "q", 2: "q", 3: "r"})
        assert len(vf2_matches(g, pattern)) == 2


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(5))
    def test_path_pattern(self, seed):
        graph = uniform_random_graph(20, 60, ALPHABET, seed=seed)
        pattern = Pattern.from_edges(
            {0: ALPHABET[0], 1: ALPHABET[1], 2: ALPHABET[2]}, [(0, 1), (1, 2)]
        )
        assert canonical(vf2_matches(graph, pattern)) == nx_match_subgraphs(
            graph, pattern
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_triangle_pattern(self, seed):
        graph = uniform_random_graph(18, 70, ALPHABET[:2], seed=seed)
        pattern = Pattern.from_edges(
            {0: ALPHABET[0], 1: ALPHABET[0], 2: ALPHABET[1]},
            [(0, 1), (1, 2), (2, 0)],
        )
        assert canonical(vf2_matches(graph, pattern)) == nx_match_subgraphs(
            graph, pattern
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_diamond_pattern(self, seed):
        graph = uniform_random_graph(16, 60, ALPHABET[:2], seed=seed)
        pattern = Pattern.from_edges(
            {0: ALPHABET[0], 1: ALPHABET[1], 2: ALPHABET[1], 3: ALPHABET[0]},
            [(0, 1), (0, 2), (1, 3), (2, 3)],
        )
        assert canonical(vf2_matches(graph, pattern)) == nx_match_subgraphs(
            graph, pattern
        )

"""Tests for dataset profiles and query generators (Section 6 workloads)."""

import pytest

from repro.graph.stats import label_histogram, profile
from repro.iso import vf2_matches
from repro.kws import compute_kdist
from repro.rpq import glushkov
from repro.workloads import (
    DBPEDIA_SPEC,
    ISO_GRID,
    KWS_GRID,
    LIVEJ_SPEC,
    QueryGenerationError,
    RPQ_SIZE_GRID,
    by_name,
    dbpedia_like,
    livej_like,
    random_kws_queries,
    random_patterns,
    random_rpq_queries,
    synthetic,
)


class TestDatasets:
    def test_dbpedia_profile(self):
        graph = dbpedia_like(scale=0.25, seed=1)
        shape = profile(graph)
        assert shape.num_edges / shape.num_nodes == pytest.approx(
            DBPEDIA_SPEC.edge_node_ratio, rel=0.05
        )
        # heavy label skew: the top label dominates the uniform share
        histogram = label_histogram(graph)
        top = histogram.most_common(1)[0][1]
        assert top > 3 * shape.num_nodes / DBPEDIA_SPEC.alphabet_size

    def test_dbpedia_has_hubs(self):
        graph = dbpedia_like(scale=0.25, seed=2)
        shape = profile(graph)
        average_in_degree = shape.num_edges / shape.num_nodes
        assert shape.max_in_degree > 4 * average_in_degree

    def test_livej_profile_has_giant_scc(self):
        graph = livej_like(scale=0.25, seed=3)
        shape = profile(graph)
        assert shape.max_scc_fraction >= LIVEJ_SPEC.giant_scc_min
        assert shape.num_edges / shape.num_nodes == pytest.approx(
            LIVEJ_SPEC.edge_node_ratio, rel=0.05
        )

    def test_synthetic_profile(self):
        graph = synthetic(scale=0.25, seed=4)
        shape = profile(graph)
        assert shape.num_edges == 2 * shape.num_nodes

    def test_scaling(self):
        small = synthetic(scale=0.2, seed=5)
        large = synthetic(scale=1.0, seed=5)
        assert large.num_nodes == 5 * small.num_nodes

    def test_by_name(self):
        assert by_name("synthetic", scale=0.1).num_nodes > 0
        with pytest.raises(ValueError):
            by_name("wikipedia")

    def test_determinism(self):
        assert dbpedia_like(scale=0.1, seed=7) == dbpedia_like(scale=0.1, seed=7)


class TestKWSGenerator:
    def test_shapes(self):
        graph = synthetic(scale=0.2, seed=1)
        for m, bound in KWS_GRID:
            queries = random_kws_queries(graph, 3, m, bound, seed=m)
            assert len(queries) == 3
            for query in queries:
                assert query.m == m
                assert query.bound == bound

    def test_keywords_exist_in_graph(self):
        graph = synthetic(scale=0.2, seed=2)
        labels = set(label_histogram(graph))
        for query in random_kws_queries(graph, 5, 3, 2, seed=3):
            assert set(query.keywords) <= labels

    def test_queries_usually_have_matches(self):
        graph = synthetic(scale=0.3, seed=4)
        hits = 0
        for query in random_kws_queries(graph, 5, 2, 3, seed=5):
            if compute_kdist(graph, query).complete_roots():
                hits += 1
        assert hits >= 3

    def test_too_many_keywords(self):
        graph = synthetic(scale=0.1, seed=6)
        with pytest.raises(QueryGenerationError):
            random_kws_queries(graph, 1, 10_000, 2)


class TestRPQGenerator:
    def test_size_and_operators(self):
        graph = synthetic(scale=0.2, seed=1)
        for size in RPQ_SIZE_GRID:
            for query in random_rpq_queries(graph, 3, size, stars=1, unions=1, seed=size):
                assert query.size == size

    def test_star_count_controls_shape(self):
        graph = synthetic(scale=0.2, seed=2)
        queries = random_rpq_queries(graph, 5, 5, stars=2, unions=1, seed=3)
        # every query must still compile to an NFA of size+1 states
        for query in queries:
            assert glushkov(query).num_states == 6

    def test_validation(self):
        graph = synthetic(scale=0.1, seed=3)
        with pytest.raises(QueryGenerationError):
            random_rpq_queries(graph, 1, 0)
        with pytest.raises(QueryGenerationError):
            random_rpq_queries(graph, 1, 2, unions=2)

    def test_determinism(self):
        graph = synthetic(scale=0.1, seed=4)
        a = random_rpq_queries(graph, 3, 4, seed=9)
        b = random_rpq_queries(graph, 3, 4, seed=9)
        assert a == b


class TestISOGenerator:
    def test_shapes(self):
        graph = synthetic(scale=0.3, seed=1)
        for num_nodes, num_edges, diameter in ISO_GRID[:3]:
            patterns = random_patterns(
                graph, 2, num_nodes, num_edges, diameter, seed=num_nodes
            )
            for pattern in patterns:
                assert pattern.shape() == (num_nodes, num_edges, diameter)

    def test_minimal_patterns_tend_to_match(self):
        # with |E_Q| = |V_Q| - 1 every pattern edge is sampled from the
        # graph, so such patterns are guaranteed at least one match.
        graph = synthetic(scale=0.3, seed=2)
        patterns = random_patterns(graph, 3, 3, 2, 2, seed=3)
        hits = sum(1 for p in patterns if vf2_matches(graph, p))
        assert hits >= 2

    def test_validation(self):
        graph = synthetic(scale=0.1, seed=4)
        with pytest.raises(QueryGenerationError):
            random_patterns(graph, 1, 4, 2, 1)  # < n-1 edges
        with pytest.raises(QueryGenerationError):
            random_patterns(graph, 1, 3, 7, 1)  # > n(n-1) edges

"""Tests for IncISO (paper Appendix, Theorem 3): deletions via the edge
index, insertions via one localized VF2 run, locality containment."""

import pytest

from repro.core.boundedness import check_locality
from repro.core.cost import CostMeter
from repro.core.delta import Delta, delete, insert
from repro.graph import DiGraph
from repro.graph.generators import label_alphabet, uniform_random_graph
from repro.graph.updates import random_delta
from repro.iso import ISOIndex, Pattern, inc_iso_n, vf2_matches

ALPHABET = label_alphabet(4)


def path_pattern() -> Pattern:
    return Pattern.from_edges(
        {0: ALPHABET[0], 1: ALPHABET[1], 2: ALPHABET[2]}, [(0, 1), (1, 2)]
    )


class TestUnitUpdates:
    def test_insert_creates_match(self):
        g = DiGraph(labels={1: ALPHABET[0], 2: ALPHABET[1], 3: ALPHABET[2]})
        g.add_edge(1, 2)
        index = ISOIndex(g, path_pattern())
        assert index.matches == set()
        delta_o = index.insert_edge(2, 3)
        assert len(delta_o.added) == 1
        assert len(index.matches) == 1
        index.check_consistency()

    def test_delete_removes_match(self):
        g = DiGraph(labels={1: ALPHABET[0], 2: ALPHABET[1], 3: ALPHABET[2]},
                    edges=[(1, 2), (2, 3)])
        index = ISOIndex(g, path_pattern())
        assert len(index.matches) == 1
        delta_o = index.delete_edge(1, 2)
        assert len(delta_o.removed) == 1
        assert index.matches == set()
        index.check_consistency()

    def test_deletion_never_creates_matches(self):
        # the non-induced-semantics invariant IncISO relies on
        graph = uniform_random_graph(25, 80, ALPHABET, seed=3)
        index = ISOIndex(graph, path_pattern())
        for edge in list(graph.edges())[:10]:
            delta_o = index.delete_edge(*edge)
            assert not delta_o.added
        index.check_consistency()

    def test_insert_with_new_nodes(self):
        g = DiGraph(labels={1: ALPHABET[0], 2: ALPHABET[1]})
        g.add_edge(1, 2)
        index = ISOIndex(g, path_pattern())
        delta_o = index.insert_edge(2, 99, target_label=ALPHABET[2])
        assert len(delta_o.added) == 1
        index.check_consistency()


class TestBatch:
    @pytest.mark.parametrize("seed", range(8))
    def test_batch_matches_recompute(self, seed):
        graph = uniform_random_graph(25, 80, ALPHABET, seed=seed)
        pattern = path_pattern()
        delta = random_delta(graph, 20, seed=seed)
        expected = vf2_matches(delta.applied(graph), pattern)
        index = ISOIndex(graph.copy(), pattern)
        index.apply(delta)
        assert index.matches == expected
        index.check_consistency()

    def test_delta_output_equation(self):
        graph = uniform_random_graph(25, 80, ALPHABET, seed=17)
        pattern = path_pattern()
        index = ISOIndex(graph.copy(), pattern)
        before = set(index.matches)
        delta = random_delta(graph, 16, seed=18)
        delta_o = index.apply(delta)
        assert (before - set(delta_o.removed)) | set(delta_o.added) == index.matches
        assert set(delta_o.removed) <= before
        assert not set(delta_o.added) & before

    def test_triangle_pattern_batch(self):
        graph = uniform_random_graph(20, 90, ALPHABET[:2], seed=5)
        pattern = Pattern.from_edges(
            {0: ALPHABET[0], 1: ALPHABET[0], 2: ALPHABET[1]},
            [(0, 1), (1, 2), (2, 0)],
        )
        delta = random_delta(graph, 18, seed=6)
        expected = vf2_matches(delta.applied(graph), pattern)
        index = ISOIndex(graph.copy(), pattern)
        index.apply(delta)
        assert index.matches == expected
        index.check_consistency()

    def test_batch_agrees_with_unit_at_a_time(self):
        graph = uniform_random_graph(22, 70, ALPHABET, seed=21)
        pattern = path_pattern()
        delta = random_delta(graph, 16, seed=22)
        batch_index = ISOIndex(graph.copy(), pattern)
        batch_delta = batch_index.apply(delta)
        unit_index = ISOIndex(graph.copy(), pattern)
        unit_delta = inc_iso_n(unit_index, delta)
        assert batch_index.matches == unit_index.matches
        assert batch_delta.added == unit_delta.added
        assert batch_delta.removed == unit_delta.removed

    def test_mixed_delete_insert_same_match(self):
        # deleting an edge of a match and re-creating the same match via a
        # different batch member nets to an empty ΔO when content returns.
        g = DiGraph(labels={1: ALPHABET[0], 2: ALPHABET[1], 3: ALPHABET[2],
                            4: ALPHABET[1]},
                    edges=[(1, 2), (2, 3), (1, 4)])
        pattern = path_pattern()
        index = ISOIndex(g, pattern)
        assert len(index.matches) == 1
        delta = Delta([delete(2, 3), insert(4, 3)])
        delta_o = index.apply(delta)
        assert len(index.matches) == 1
        assert len(delta_o.added) == 1 and len(delta_o.removed) == 1
        index.check_consistency()


class TestLocality:
    def test_insert_work_confined_to_dq_neighborhood(self):
        # A long path graph with an insertion at one end: VF2 must only
        # inspect the d_Q-neighborhood of the insertion.
        labels = {i: ALPHABET[i % 4] for i in range(400)}
        g = DiGraph(labels=labels)
        for i in range(399):
            g.add_edge(i, i + 1)
        pattern = path_pattern()  # d_Q = 2
        index = ISOIndex(g, pattern)
        meter = CostMeter()
        index.meter = meter
        delta = Delta([insert(0, 5)])
        index.apply(delta)
        report = check_locality(
            index.graph, delta, meter, radius=pattern.diameter
        )
        assert report.is_local, f"escaped: {report.escaped}"

    def test_insertion_region_cost_independent_of_graph_size(self):
        costs = []
        pattern = path_pattern()
        for scale in (100, 400, 1600):
            labels = {i: ALPHABET[i % 4] for i in range(scale)}
            g = DiGraph(labels=labels)
            for i in range(scale - 1):
                g.add_edge(i, i + 1)
            index = ISOIndex(g, pattern)
            meter = CostMeter()
            index.meter = meter
            index.apply(Delta([insert(0, 5)]))
            index.apply(Delta([delete(0, 5)]))
            costs.append(meter.total())
        assert costs[2] <= max(costs[0], 1) * 3

"""Property-based round-trip tests for the plain-text graph/delta format,
plus regressions for the serialization bugs the quoting scheme fixes:
one-sided insert labels, whitespace truncation, and int/str label
confusion."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delta import Delta, InvalidDeltaError, delete, insert
from repro.graph import DiGraph
from repro.graph.io import (
    FormatError,
    SerializationError,
    read_delta,
    read_graph,
    write_delta,
    write_graph,
)

# Labels exercise every quoting hazard: whitespace (incl. leading/trailing
# and newlines), the empty string, comment/quote/escape characters,
# int-lookalike strings, and genuine ints.
labels = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.text(max_size=8),
    st.sampled_from(["new york", " padded ", "", "5", "-12", '"', "\\", "#x", "a\nb", "\t"]),
)
nodes = st.one_of(
    st.integers(min_value=-100, max_value=100),
    st.text(min_size=1, max_size=6),
    st.sampled_from(["new york", "007", "two words", '"q"']),
)


@st.composite
def labeled_graphs(draw) -> DiGraph:
    node_list = draw(st.lists(nodes, unique=True, min_size=0, max_size=8))
    graph = DiGraph()
    for node in node_list:
        graph.add_node(node, label=draw(labels))
    pairs = [(s, t) for s in node_list for t in node_list]
    for source, target in draw(
        st.lists(st.sampled_from(pairs), unique=True, max_size=12)
        if pairs
        else st.just([])
    ):
        graph.add_edge(source, target)
    return graph


@st.composite
def deltas(draw) -> Delta:
    updates = []
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        source, target = draw(nodes), draw(nodes)
        if draw(st.booleans()):
            updates.append(
                insert(source, target, source_label=draw(labels), target_label=draw(labels))
            )
        else:
            updates.append(delete(source, target))
    return Delta(updates)


def roundtrip_graph(graph: DiGraph) -> DiGraph:
    buffer = io.StringIO()
    write_graph(graph, buffer)
    buffer.seek(0)
    return read_graph(buffer)


def roundtrip_delta(delta: Delta) -> Delta:
    buffer = io.StringIO()
    write_delta(delta, buffer)
    buffer.seek(0)
    return read_delta(buffer)


@settings(max_examples=150, deadline=None)
@given(labeled_graphs())
def test_graph_roundtrip_lossless(graph):
    loaded = roundtrip_graph(graph)
    assert loaded == graph
    for node in graph.nodes():
        assert type(loaded.label(node)) is type(graph.label(node))


@settings(max_examples=150, deadline=None)
@given(deltas())
def test_delta_roundtrip_lossless(delta):
    loaded = roundtrip_delta(delta)
    assert len(loaded) == len(delta)
    for original, read_back in zip(delta, loaded):
        assert read_back == original


class TestQuotingRegressions:
    def test_one_sided_insert_label(self):
        # Previously emitted a 4-field "+" record that read_delta rejected.
        delta = Delta([insert(1, 2, source_label="x")])
        loaded = roundtrip_delta(delta)
        assert loaded[0].source_label == "x"
        assert loaded[0].target_label == ""

    def test_whitespace_label_does_not_truncate(self):
        graph = DiGraph(labels={1: "new york"})
        assert roundtrip_graph(graph).label(1) == "new york"

    def test_int_label_stays_int(self):
        graph = DiGraph(labels={1: 42})
        assert roundtrip_graph(graph).label(1) == 42

    def test_int_lookalike_string_stays_string(self):
        graph = DiGraph(labels={1: "42"})
        loaded = roundtrip_graph(graph)
        assert loaded.label(1) == "42" and type(loaded.label(1)) is str

    def test_empty_label_roundtrips(self):
        graph = DiGraph(labels={1: ""})
        assert roundtrip_graph(graph).label(1) == ""

    def test_node_with_spaces(self):
        graph = DiGraph(labels={"new york": "city"}, edges=[("new york", "new york")])
        loaded = roundtrip_graph(graph)
        assert loaded.has_edge("new york", "new york")

    def test_unserializable_label_fails_loudly(self):
        for bad in (("tuple",), 1.5, True, frozenset()):
            with pytest.raises(SerializationError):
                write_graph(DiGraph(labels={1: bad}), io.StringIO())

    def test_unserializable_node_fails_loudly(self):
        with pytest.raises(SerializationError):
            write_graph(DiGraph(labels={(1, 2): "a"}), io.StringIO())

    def test_unterminated_quote_is_a_format_error(self):
        with pytest.raises(FormatError, match="unterminated"):
            read_graph(io.StringIO('n "oops\n'))

    def test_extra_node_fields_rejected(self):
        # "n 1 new york" used to silently read label "new"; bare extra
        # tokens are now a loud arity error.
        with pytest.raises(FormatError):
            read_graph(io.StringIO("n 1 new york\n"))


class TestNormalizedNeverDuplicates:
    @settings(max_examples=100, deadline=None)
    @given(deltas())
    def test_normalized_output_has_no_duplicate_inserts(self, delta):
        try:
            cleaned = delta.normalized()
        except InvalidDeltaError:
            return  # |net| > 1 is rejected, never silently emitted
        seen = set()
        for update in cleaned:
            if update.is_insert:
                assert update.edge not in seen
                seen.add(update.edge)
        assert cleaned.is_normalized()

    def test_net_balance_two_raises(self):
        with pytest.raises(InvalidDeltaError, match="net balance"):
            Delta([insert(1, 2), insert(1, 2)]).normalized()

    def test_net_balance_minus_two_raises(self):
        with pytest.raises(InvalidDeltaError, match="net balance"):
            Delta([delete(1, 2), delete(1, 2)]).normalized()

    def test_net_one_with_history_still_collapses(self):
        cleaned = Delta([delete(1, 2), insert(1, 2), delete(1, 2)]).normalized()
        assert len(cleaned) == 1 and cleaned[0].is_delete

"""Tests for the update algebra G ⊕ ΔG (paper Section 2.2)."""

import pytest

from repro.core.delta import (
    Delta,
    InvalidDeltaError,
    concat,
    delete,
    insert,
    split_batch,
)
from repro.graph import DiGraph


@pytest.fixture
def square() -> DiGraph:
    g = DiGraph(labels={i: "n" for i in range(4)}, edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
    return g


class TestUnitUpdates:
    def test_insert_roundtrip(self):
        update = insert(1, 2, target_label="b")
        assert update.is_insert and not update.is_delete
        assert update.edge == (1, 2)
        assert update.inverted().inverted() == update

    def test_inverted_flips_kind(self):
        assert insert(1, 2).inverted().is_delete
        assert delete(1, 2).inverted().is_insert

    def test_str(self):
        assert str(delete(1, 2)) == "delete(1, 2)"


class TestDeltaViews:
    def test_split_views(self):
        delta = Delta([insert(1, 2), delete(3, 4), insert(5, 6)])
        assert [u.edge for u in delta.insertions] == [(1, 2), (5, 6)]
        assert [u.edge for u in delta.deletions] == [(3, 4)]

    def test_len_iter_getitem_bool(self):
        delta = Delta([insert(1, 2)])
        assert len(delta) == 1
        assert list(delta)[0].edge == (1, 2)
        assert delta[0].is_insert
        assert bool(delta)
        assert not Delta([])

    def test_touched_nodes(self):
        delta = Delta([insert(1, 2), delete(2, 3)])
        assert delta.touched_nodes() == {1, 2, 3}

    def test_edges(self):
        delta = Delta([insert(1, 2), delete(2, 3)])
        assert delta.edges() == {(1, 2), (2, 3)}


class TestNormalization:
    def test_detects_conflict(self):
        delta = Delta([insert(1, 2), delete(1, 2)])
        assert not delta.is_normalized()

    def test_normalized_cancels_pairs(self):
        delta = Delta([insert(1, 2), delete(1, 2), insert(3, 4)])
        cleaned = delta.normalized()
        assert [u.edge for u in cleaned] == [(3, 4)]
        assert cleaned.is_normalized()

    def test_normalized_keeps_excess_inserts(self):
        delta = Delta([delete(1, 2), insert(1, 2), insert_again := insert(1, 2)])
        # net +1 insert of (1,2)
        cleaned = delta.normalized()
        assert len(cleaned) == 1
        assert cleaned[0].is_insert

    def test_split_batch_rejects_conflict(self):
        with pytest.raises(InvalidDeltaError):
            split_batch(Delta([insert(1, 2), delete(1, 2)]))

    def test_split_batch_ok(self):
        ins, dels = split_batch(Delta([insert(1, 2), delete(3, 4)]))
        assert [u.edge for u in ins] == [(1, 2)]
        assert [u.edge for u in dels] == [(3, 4)]


class TestApplication:
    def test_apply_insert_and_delete(self, square):
        delta = Delta([insert(0, 2), delete(1, 2)])
        patched = delta.applied(square)
        assert patched.has_edge(0, 2)
        assert not patched.has_edge(1, 2)
        # original untouched
        assert square.has_edge(1, 2)
        assert not square.has_edge(0, 2)

    def test_apply_creates_new_nodes_with_labels(self, square):
        delta = Delta([insert(0, 99, target_label="fresh")])
        patched = delta.applied(square)
        assert patched.label(99) == "fresh"

    def test_apply_duplicate_insert_fails(self, square):
        with pytest.raises(InvalidDeltaError) as err:
            Delta([insert(0, 1)]).applied(square)
        assert "update #0" in str(err.value)

    def test_apply_missing_delete_fails(self, square):
        with pytest.raises(InvalidDeltaError):
            Delta([delete(0, 2)]).applied(square)

    def test_sequence_order_matters(self, square):
        # delete then re-insert the same edge is applicable in order...
        delta = Delta([delete(0, 1), insert(0, 1)])
        patched = delta.applied(square)
        assert patched.has_edge(0, 1)

    def test_inverted_roundtrip(self, square):
        delta = Delta([insert(0, 2), delete(1, 2), insert(1, 3)])
        patched = delta.applied(square)
        restored = delta.inverted().applied(patched)
        assert restored == square

    def test_concat(self):
        combined = concat([Delta([insert(1, 2)]), [delete(3, 4)]])
        assert len(combined) == 2

"""Sharded graph store + segmented delta log test suite.

Three layers of coverage:

* ``ShardMap`` / ``ShardedGraphStore`` — deterministic placement and a
  differential property test driving the same random mutation sequence
  through a sharded store and a plain ``DiGraph``, comparing the full
  read API after every step;
* the engine over a sharded store — four-view equivalence against the
  unsharded reference on random batch streams, under every executor;
* ``SegmentedDeltaLog`` — global seq allocation, cross-segment commit
  atomicity (a partially fsynced append must be discarded whole),
  order-independent replay via insert-label stabilization, per-segment
  and rotating compaction, and snapshot-v3 save/load of sharded
  sessions (including layout adoption by a map-less store).
"""

import random

import pytest

from repro import (
    Delta,
    DiGraph,
    Engine,
    SegmentedDeltaLog,
    ShardedGraphStore,
    ShardMap,
    SnapshotStore,
    delete,
    insert,
)
from repro.graph.digraph import (
    DuplicateEdgeError,
    MissingEdgeError,
    MissingNodeError,
)
from repro.graph.sharding import route_updates, stable_shard_hash
from repro.iso import ISOIndex, Pattern
from repro.kws import KWSIndex, KWSQuery
from repro.persist import DeltaLog, PersistFormatError, SnapshotPolicy
from repro.rpq import RPQIndex
from repro.scc import SCCIndex

KWS_QUERY = KWSQuery(("a", "b"), bound=2)
RPQ_QUERY = "a . (b + c)* . c"
ISO_PATTERN = Pattern.from_edges({0: "a", 1: "b"}, [(0, 1)])
LABELS = ["a", "b", "c", "d"]


def four_view_engine(graph) -> Engine:
    engine = Engine(graph)
    engine.register("kws", lambda g, m: KWSIndex(g, KWS_QUERY, meter=m))
    engine.register("rpq", lambda g, m: RPQIndex(g, RPQ_QUERY, meter=m))
    engine.register("scc", lambda g, m: SCCIndex(g, meter=m))
    engine.register("iso", lambda g, m: ISOIndex(g, ISO_PATTERN, meter=m))
    return engine


def assert_same_graph(sharded: ShardedGraphStore, plain: DiGraph) -> None:
    """Full read-API comparison between a sharded store and a DiGraph."""
    assert sharded == plain
    assert plain == sharded  # reflected through DiGraph.__eq__ fallback
    assert sharded.num_nodes == plain.num_nodes
    assert sharded.num_edges == plain.num_edges
    assert sharded.size() == plain.size()
    assert set(sharded.nodes()) == set(plain.nodes())
    assert set(sharded.edges()) == set(plain.edges())
    assert sharded.labels == plain.labels
    for node in plain.nodes():
        assert sharded.has_node(node) and node in sharded
        assert sharded.label(node) == plain.label(node)
        assert sharded.successor_set(node) == plain.successor_set(node)
        assert sharded.predecessor_set(node) == plain.predecessor_set(node)
        assert set(sharded.successors(node)) == set(plain.successors(node))
        assert set(sharded.predecessors(node)) == set(plain.predecessors(node))
        assert sharded.out_degree(node) == plain.out_degree(node)
        assert sharded.in_degree(node) == plain.in_degree(node)
    for label in LABELS:
        assert set(sharded.nodes_with_label(label)) == set(
            plain.nodes_with_label(label)
        )


# ----------------------------------------------------------------------
# ShardMap
# ----------------------------------------------------------------------


class TestShardMap:
    def test_hash_assignment_is_deterministic_and_total(self):
        first, second = ShardMap(5), ShardMap(5)
        for node in [0, 1, 17, "v1", "spaced node", ("tuple", 3)]:
            assert first.shard_of(node) == second.shard_of(node)
            assert 0 <= first.shard_of(node) < 5

    def test_stable_hash_does_not_use_salted_str_hash(self):
        import zlib

        # crc32 of the utf-8 bytes — a fixed value, not PYTHONHASHSEED'd
        assert stable_shard_hash("v1") == zlib.crc32(b"v1")
        assert stable_shard_hash(42) == stable_shard_hash("42")
        # dict semantics make True the same node key as 1 — it must
        # land on the same shard (regression: a bool special case once
        # split one logical node across two owners)
        assert stable_shard_hash(True) == stable_shard_hash(1)
        assert stable_shard_hash(False) == stable_shard_hash(0)

    def test_bool_nodes_share_their_int_twin_everywhere(self):
        store = ShardedGraphStore(shards=3)
        store.add_node(True, label="x")
        assert store.label(1) == "x"  # DiGraph parity: True is 1
        store.add_edge(1, 2, target_label="y")
        store.add_edge(True, 5, target_label="z")
        assert store.num_edges == 2
        assert set(store.edges()) == {(True, 2), (True, 5)}
        assert store.successor_set(1) == {2, 5}

    def test_range_assignment(self):
        by_range = ShardMap(kind="range", boundaries=[100, 200])
        assert by_range.count == 3
        assert by_range.shard_of(5) == 0
        assert by_range.shard_of(100) == 1  # boundary goes right
        assert by_range.shard_of(150) == 1
        assert by_range.shard_of(999) == 2

    def test_invalid_configurations(self):
        with pytest.raises(ValueError):
            ShardMap(0)
        with pytest.raises(ValueError):
            ShardMap(kind="modulo")
        with pytest.raises(ValueError):
            ShardMap(3, boundaries=[1, 2])
        with pytest.raises(ValueError):
            ShardMap(kind="range", boundaries=[5, 1])
        with pytest.raises(ValueError, match="contradicts"):
            ShardMap(4, kind="range", boundaries=[100])  # implies 2
        assert ShardMap(2, kind="range", boundaries=[100]).count == 2

    def test_equality(self):
        assert ShardMap(4) == ShardMap(4)
        assert ShardMap(4) != ShardMap(5)
        assert ShardMap(kind="range", boundaries=[7]) == ShardMap(
            kind="range", boundaries=[7]
        )
        assert ShardMap(2) != ShardMap(kind="range", boundaries=[7])


def test_route_updates_groups_by_source_shard():
    shard_map = ShardMap(3)
    batch = Delta(
        [insert(n, n + 1, "a", "b") for n in range(6)]
        + [delete(0, 1), insert(0, 1, "a", "b")]
    )
    routed = route_updates(batch, shard_map)
    seen = []
    for index, updates in routed.items():
        for update in updates:
            assert shard_map.shard_of(update.source) == index
            seen.append(update)
    assert sorted(map(str, seen)) == sorted(map(str, batch))
    # same-edge updates stay in one shard, in original relative order
    zero_shard = routed[shard_map.shard_of(0)]
    zero_edge = [u for u in zero_shard if u.edge == (0, 1)]
    assert [u.kind.value for u in zero_edge] == ["insert", "delete", "insert"]


# ----------------------------------------------------------------------
# ShardedGraphStore vs DiGraph — differential property
# ----------------------------------------------------------------------


class TestShardedGraphStore:
    def test_basic_construction_and_ownership(self):
        store = ShardedGraphStore(
            shards=3, labels={1: "a", 2: "b"}, edges=[(1, 2), (2, 1)]
        )
        assert store.num_shards == 3
        assert store.shard_of(1) == store.shard_map.shard_of(1)
        # the edge (1, 2) lives in 1's shard and nowhere else
        owner = store.shard(store.shard_of(1))
        assert owner.has_edge(1, 2)
        assert sum(shard.num_edges for shard in map(store.shard, range(3))) == 2

    def test_exceptions_match_digraph(self):
        store = ShardedGraphStore(shards=2, labels={1: "a"}, edges=[])
        with pytest.raises(MissingNodeError):
            store.label(9)
        with pytest.raises(MissingNodeError):
            store.successors(9)
        with pytest.raises(MissingNodeError):
            list(store.predecessors(9))
        with pytest.raises(MissingNodeError):
            store.remove_node(9)
        with pytest.raises(MissingNodeError):
            store.set_label(9, "x")
        with pytest.raises(MissingEdgeError):
            store.remove_edge(1, 9)
        with pytest.raises(MissingEdgeError):
            store.remove_edge(9, 1)
        store.add_edge(1, 2, target_label="b")
        with pytest.raises(DuplicateEdgeError):
            store.add_edge(1, 2)

    def test_remove_node_spans_shards(self):
        # a hub with in/out edges on every shard, plus a self-loop
        store = ShardedGraphStore(shards=4)
        store.add_node("hub", label="h")
        for k in range(8):
            store.add_edge("hub", k, target_label="t")
            store.add_edge(100 + k, "hub", source_label="s")
        store.add_edge("hub", "hub")
        assert store.num_edges == 17
        store.remove_node("hub")
        assert store.num_edges == 0
        assert not store.has_node("hub")
        assert store.num_nodes == 16  # endpoints survive, as in DiGraph

    def test_oob_version_tripwire(self):
        store = ShardedGraphStore(shards=2, labels={1: "a", 2: "b"}, edges=[(1, 2)])
        base = store.oob_version
        store.add_edge(2, 3, target_label="c")  # expressible: no bump
        assert store.oob_version == base
        store.set_label(2, "z")  # relabel: bump
        assert store.oob_version > base
        bumped = store.oob_version
        store.set_label(2, "z")  # no-op relabel: no bump
        assert store.oob_version == bumped
        store.remove_node(3)
        assert store.oob_version > bumped

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("shards", [1, 2, 5])
    def test_differential_against_digraph(self, seed, shards):
        """The same random mutation sequence, step-compared against a
        plain DiGraph across the whole read API."""
        rng = random.Random(0x5AAD + seed)
        store = ShardedGraphStore(shards=shards)
        plain = DiGraph()
        next_node = 0
        for step in range(120):
            action = rng.random()
            nodes = list(plain.nodes())
            if action < 0.35 or not nodes:
                node = next_node
                next_node += 1
                label = rng.choice(LABELS)
                store.add_node(node, label=label)
                plain.add_node(node, label=label)
            elif action < 0.70:
                source, target = rng.choice(nodes), rng.choice(nodes)
                if plain.has_edge(source, target):
                    store.remove_edge(source, target)
                    plain.remove_edge(source, target)
                else:
                    store.add_edge(source, target)
                    plain.add_edge(source, target)
            elif action < 0.80:
                node = rng.choice(nodes)
                label = rng.choice(LABELS)
                store.set_label(node, label)
                plain.set_label(node, label)
            elif action < 0.88:
                edges = list(plain.edges())
                if edges:
                    edge = rng.choice(edges)
                    store.remove_edge(*edge)
                    plain.remove_edge(*edge)
            else:
                node = rng.choice(nodes)
                store.remove_node(node)
                plain.remove_node(node)
            if step % 17 == 0:
                assert_same_graph(store, plain)
        assert_same_graph(store, plain)
        assert_same_graph(store.copy(), plain)
        assert store.to_digraph() == plain
        # round-trip through from_digraph preserves everything
        assert_same_graph(
            ShardedGraphStore.from_digraph(plain, ShardMap(shards)), plain
        )
        # derived subgraphs agree with the plain ones
        keep = set(rng.sample(sorted(plain.nodes()), k=len(plain) // 2))
        assert store.subgraph(keep) == plain.subgraph(keep)
        assert store.reverse() == plain.reverse()

    def test_shard_sizes_and_cross_shard_edges(self):
        store = ShardedGraphStore(
            shards=2, labels={n: "a" for n in range(10)}, edges=[]
        )
        for n in range(9):
            store.add_edge(n, n + 1)
        sizes = store.shard_sizes()
        assert sum(nodes for nodes, _ in sizes) == 10
        assert sum(edges for _, edges in sizes) == 9
        crossing = store.cross_shard_edges()
        assert 0 <= crossing <= 9
        assert crossing == sum(
            1 for s, t in store.edges() if store.shard_of(s) != store.shard_of(t)
        )


class TestEngineOverShardedStore:
    @pytest.mark.parametrize(
        "executor", ["serial", "threads", "processes", "workers"]
    )
    @pytest.mark.parametrize("seed", range(4))
    def test_four_view_equivalence(self, seed, executor):
        """Random batch streams: the sharded engine's views equal the
        unsharded reference engine's, under every dispatch strategy."""
        rng = random.Random(0x7A8D + seed)
        labels = {n: rng.choice(LABELS) for n in range(8)}
        edges = []
        for source in range(8):
            for target in range(8):
                if source != target and rng.random() < 0.25:
                    edges.append((source, target))
        sharded = four_view_engine(
            ShardedGraphStore(shards=3, labels=labels, edges=edges)
        )
        sharded.scheduler.executor = executor
        reference = four_view_engine(DiGraph(labels=dict(labels), edges=edges))
        for _ in range(10):
            batch = self.random_batch(rng, reference.graph)
            if not batch:
                continue
            sharded.apply(batch)
            reference.apply(batch)
            assert sharded.graph == reference.graph
            assert sharded["kws"].roots() == reference["kws"].roots()
            assert sharded["rpq"].matches == reference["rpq"].matches
            assert sharded["scc"].components() == reference["scc"].components()
            assert sharded["iso"].matches == reference["iso"].matches
        checkpoint_target = rng.randint(0, sharded.applied_count)
        sharded.rollback(checkpoint_target)
        reference.rollback(checkpoint_target)
        assert sharded.graph == reference.graph
        assert sharded["scc"].components() == reference["scc"].components()

    @staticmethod
    def random_batch(rng, graph):
        nodes = list(graph.nodes())
        edges = list(graph.edges())
        non_edges = [
            (s, t)
            for s in nodes
            for t in nodes
            if s != t and not graph.has_edge(s, t)
        ]
        updates = [
            delete(*edge)
            for edge in rng.sample(edges, k=min(len(edges), rng.randint(0, 2)))
        ]
        updates += [
            insert(*edge)
            for edge in rng.sample(
                non_edges, k=min(len(non_edges), rng.randint(0, 3))
            )
        ]
        rng.shuffle(updates)
        return Delta(updates)


# ----------------------------------------------------------------------
# SegmentedDeltaLog
# ----------------------------------------------------------------------


def segmented(tmp_path, shards=3, executor="serial") -> SegmentedDeltaLog:
    return SegmentedDeltaLog(
        tmp_path / "segments", ShardMap(shards), executor=executor
    )


class TestSegmentedDeltaLog:
    def test_append_routes_by_source_shard(self, tmp_path):
        log = segmented(tmp_path)
        batch = Delta([insert(n, n + 10, "a", "b") for n in range(6)])
        assert log.append(batch) == 1
        routed = route_updates(batch, log.shard_map)
        for index, updates in routed.items():
            segment_entries = log.segment(index).entries()
            assert [u.edge for u in segment_entries[0].delta] == [
                u.edge for u in updates
            ]
            assert segment_entries[0].participants == len(routed)

    def test_merged_entries_and_global_last_seq(self, tmp_path):
        log = segmented(tmp_path)
        log.append(Delta([insert(1, 2, "a", "b"), insert(3, 4, "c", "d")]))
        log.append(Delta([delete(1, 2)]))
        log.append(Delta([]))  # empty batches burn a frame
        entries = log.entries()
        assert [entry.seq for entry in entries] == [1, 2, 3]
        assert {update.edge for update in entries[0].delta} == {(1, 2), (3, 4)}
        assert log.last_seq() == 3
        assert log.entries(after=2)[0].seq == 3

    def test_cold_reopen_without_map_reads_everything(self, tmp_path):
        log = segmented(tmp_path, shards=4)
        log.append(Delta([insert(n, n + 1, "a", "b") for n in range(8)]))
        reopened = SegmentedDeltaLog(tmp_path / "segments")
        assert [e.seq for e in reopened.entries()] == [1]
        assert reopened.last_seq() == 1
        with pytest.raises(ValueError, match="no shard map"):
            reopened.append(Delta([insert(99, 100)]))
        reopened.bind_map(ShardMap(4))
        assert reopened.append(Delta([insert(99, 100)])) == 2
        with pytest.raises(ValueError, match="contradicts"):
            reopened.bind_map(ShardMap(5))

    def test_partial_cross_segment_commit_is_discarded(self, tmp_path):
        """A seq committed in fewer segments than its participant count
        was never acknowledged — recovery must drop it whole, and the
        seq must stay spoken for."""
        log = segmented(tmp_path)
        log.append(Delta([insert(1, 2, "a", "b"), insert(2, 3, "b", "c")]))
        # simulate the crash: a two-participant append that only reached
        # one segment before the process died
        log.segment(0).append(Delta([insert(7, 8)]), seq=2, participants=2)
        fresh = SegmentedDeltaLog(tmp_path / "segments", ShardMap(3))
        assert [entry.seq for entry in fresh.entries()] == [1]
        assert fresh.last_seq() == 1
        assert fresh.append(Delta([insert(9, 10)])) == 3  # 2 is spoken for
        assert [entry.seq for entry in fresh.entries()] == [1, 3]

    def test_disagreeing_participant_counts_raise(self, tmp_path):
        log = segmented(tmp_path)
        (tmp_path / "segments").mkdir(exist_ok=True)
        log.segment(0).append(Delta([insert(1, 2)]), seq=1, participants=2)
        log.segment(1).append(Delta([insert(3, 4)]), seq=1, participants=3)
        with pytest.raises(PersistFormatError, match="participants"):
            SegmentedDeltaLog(tmp_path / "segments").entries()

    def test_insert_label_stabilization_across_segments(self, tmp_path):
        """A node introduced twice in one batch must get the same label
        whether the batch replays monolithically (original interleaving)
        or merged from segments (shard order)."""
        shard_map = ShardMap(2)
        # find two sources on different shards and a fresh target node
        a, b = 0, next(
            n for n in range(1, 50) if shard_map.shard_of(n) != shard_map.shard_of(0)
        )
        target = "fresh-node"
        batch = Delta(
            [
                insert(a, target, "x", "first"),
                insert(b, target, "y", "second"),
            ]
        )
        log = SegmentedDeltaLog(tmp_path / "segments", shard_map)
        log.append(batch)
        merged = log.entries()[0].delta
        replayed = DiGraph()
        merged.apply_to(replayed)
        reference = DiGraph()
        batch.apply_to(reference)
        assert replayed.label(target) == reference.label(target) == "first"

    def test_failed_append_burns_its_seq(self, tmp_path):
        """Regression: an append that fails part-way (one segment
        committed, a sibling raised) must not hand the same seq to the
        next append — the committed sub-entry already spoke for it."""
        log = segmented(tmp_path, shards=2)
        a, b = 0, next(
            n for n in range(1, 50)
            if log.shard_map.shard_of(n) != log.shard_map.shard_of(0)
        )
        log.append(Delta([insert(a, b, "x", "y")]))  # seq 1

        boom = RuntimeError("disk full")
        victim = log.segment(log.shard_map.shard_of(b))
        original = victim.append
        def failing_append(*args, **kwargs):
            raise boom
        victim.append = failing_append
        with pytest.raises(RuntimeError, match="disk full"):
            log.append(Delta([insert(a, 7, "x", "z"), insert(b, 8, "y", "z")]))
        victim.append = original

        third = log.append(Delta([insert(a, 9, "x", "w")]))
        assert third == 3  # seq 2 burned, never reused
        entries = log.entries()
        assert [entry.seq for entry in entries] == [1, 3]  # 2 is torn
        # and the file still reads cleanly from a fresh process
        fresh = SegmentedDeltaLog(tmp_path / "segments", ShardMap(2))
        assert [entry.seq for entry in fresh.entries()] == [1, 3]
        assert fresh.append(Delta([insert(9, 9)])) == 4

    def test_seq_pinning_rejects_regression(self, tmp_path):
        log = DeltaLog(tmp_path / "seg.log")
        log.append(Delta([insert(1, 2)]))
        with pytest.raises(ValueError, match="regresses"):
            log.append(Delta([insert(3, 4)]), seq=1, participants=1)

    @pytest.mark.parametrize(
        "executor", ["serial", "threads", "processes", "workers"]
    )
    def test_append_parallelism_is_equivalent(self, tmp_path, executor):
        log = SegmentedDeltaLog(
            tmp_path / executor, ShardMap(4), executor=executor
        )
        batches = [
            Delta([insert(n, n + 100, "a", "b") for n in range(k, k + 6)])
            for k in range(0, 18, 6)
        ]
        for batch in batches:
            log.append(batch)
        log.flush()  # workers strategy journals under windows
        entries = log.entries()
        assert [entry.seq for entry in entries] == [1, 2, 3]
        for entry, batch in zip(entries, batches):
            assert {u.edge for u in entry.delta} == {u.edge for u in batch}
        assert log.last_seq() == 3

    def test_compact_per_segment_and_floor(self, tmp_path):
        log = segmented(tmp_path)
        for k in range(5):
            log.append(Delta([insert(k, k + 50, "a", "b")]))
        kept = log.compact(after=3, graph_nodes=set(range(200)))
        assert kept == len(log.entries())
        assert [entry.seq for entry in log.entries()] == [4, 5]
        assert log.last_seq() == 5
        fresh = SegmentedDeltaLog(tmp_path / "segments", ShardMap(3))
        assert fresh.append(Delta([insert(99, 98)])) == 6  # floor holds seqs

    def test_rotating_compaction_only_touches_one_segment(self, tmp_path):
        graph = ShardedGraphStore(
            shard_map=ShardMap(3),
            labels={n: "a" for n in range(9)},
            edges=[],
        )
        engine = four_view_engine(graph)
        store = SnapshotStore(tmp_path / "store", shard_map=ShardMap(3))
        store.log.executor = "serial"
        store.attach(engine)
        for n in range(8):
            engine.apply(Delta([insert(n, n + 1)]))
        store.save(engine)
        before = [
            path.read_text() if path.exists() else None
            for path in store.log.segment_paths()
        ]
        kept = store.compact_log(engine, rotate=True)
        after = [
            path.read_text() if path.exists() else None
            for path in store.log.segment_paths()
        ]
        changed = [b != a for b, a in zip(before, after)]
        assert sum(changed) <= 1  # one segment per rotation, at most
        assert kept >= 0
        # a full rotation compacts everything; recovery still equals live
        for _ in range(store.log.num_segments):
            store.compact_log(engine, rotate=True)
        revived = SnapshotStore(tmp_path / "store").load(attach_journal=False)
        assert revived.graph == engine.graph
        assert revived["scc"].components() == engine["scc"].components()


# ----------------------------------------------------------------------
# Snapshot format v3: sharded save/load
# ----------------------------------------------------------------------


class TestShardedSnapshots:
    def build(self, tmp_path, shard_map=None, store_map="same"):
        shard_map = shard_map or ShardMap(3)
        graph = ShardedGraphStore(
            shard_map=shard_map,
            labels={1: "a", 2: "b", 3: "c", 4: "a", 5: "b", 6: "d", 7: "d"},
            edges=[(1, 2), (2, 3), (3, 1), (4, 5), (6, 7)],
        )
        engine = four_view_engine(graph)
        store = SnapshotStore(
            tmp_path / "store",
            shard_map=shard_map if store_map == "same" else None,
        )
        if hasattr(store.log, "executor"):
            store.log.executor = "serial"
        return engine, store

    def assert_sessions_equal(self, recovered, reference):
        assert recovered.graph == reference.graph
        assert recovered["kws"].roots() == reference["kws"].roots()
        assert recovered["rpq"].matches == reference["rpq"].matches
        assert recovered["scc"].components() == reference["scc"].components()
        assert recovered["iso"].matches == reference["iso"].matches

    def test_snapshot_round_trip_with_segmented_tail(self, tmp_path):
        engine, store = self.build(tmp_path)
        store.attach(engine)
        store.save(engine)
        engine.apply(Delta([delete(6, 7), insert(6, 1, "d", "a")]))
        engine.apply(Delta([insert(8, 2, "e", "b"), delete(3, 1)]))
        text = store.snapshot_path.read_text(encoding="utf-8")
        assert "%repro-snapshot 5" in text
        assert "%meta sharding hash 3" in text
        revived = SnapshotStore(tmp_path / "store").load(attach_journal=False)
        assert isinstance(revived.graph, ShardedGraphStore)
        assert revived.graph.shard_map == engine.graph.shard_map
        self.assert_sessions_equal(revived, engine)

    def test_maples_store_adopts_layout_and_resumes_journaling(self, tmp_path):
        engine, store = self.build(tmp_path)
        store.attach(engine)
        store.save(engine)
        engine.apply(Delta([insert(7, 2, "d", "b")]))
        adopted = SnapshotStore(tmp_path / "store")  # no map repeated
        revived = adopted.load()  # journal re-attached, segmented
        assert adopted.shard_map == engine.graph.shard_map
        assert isinstance(adopted.log, SegmentedDeltaLog)
        revived.apply(Delta([delete(7, 2)]))
        final = SnapshotStore(tmp_path / "store").load(attach_journal=False)
        self.assert_sessions_equal(final, revived)

    def test_range_map_round_trips(self, tmp_path):
        shard_map = ShardMap(kind="range", boundaries=[3, 6])
        engine, store = self.build(tmp_path, shard_map=shard_map)
        store.attach(engine)
        store.save(engine)
        engine.apply(Delta([insert(2, 6)]))
        text = store.snapshot_path.read_text(encoding="utf-8")
        assert "%meta sharding range 3 3 6" in text
        revived = SnapshotStore(tmp_path / "store").load(attach_journal=False)
        assert revived.graph.shard_map == shard_map
        self.assert_sessions_equal(revived, engine)

    def test_incremental_saves_and_graphdiff_on_sharded_store(self, tmp_path):
        engine, store = self.build(tmp_path)
        store.attach(engine)
        store.save(engine)
        engine.apply(Delta([delete(6, 7)]))
        store.save(engine, incremental=True)
        engine.apply(Delta([insert(6, 1, "d", "a")]))
        store.save(engine, incremental=True)
        text = store.snapshot_path.read_text(encoding="utf-8")
        assert "%graphdiff" in text  # the graph section went incremental
        revived = SnapshotStore(tmp_path / "store").load(attach_journal=False)
        self.assert_sessions_equal(revived, engine)

    def test_sharded_graph_over_monolithic_log(self, tmp_path):
        """A sharded graph journaling into a monolithic log is a legal
        (just unsegmented) deployment, and survives recovery."""
        engine, store = self.build(tmp_path, store_map="none")
        assert isinstance(store.log, DeltaLog)
        store.attach(engine)
        store.save(engine)
        engine.apply(Delta([delete(6, 7), insert(7, 1, "d", "a")]))
        revived = SnapshotStore(tmp_path / "store").load(attach_journal=False)
        assert isinstance(revived.graph, ShardedGraphStore)
        self.assert_sessions_equal(revived, engine)

    def test_sharding_meta_rejected_below_v3(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        store.snapshot_path.write_text(
            "%repro-snapshot 2\n%meta sharding hash 2\n"
            "%section graph\nn 1 a\n%end\n",
            encoding="utf-8",
        )
        with pytest.raises(PersistFormatError, match="version-3 construct"):
            store.load()

    def test_malformed_sharding_meta_rejected(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        for operands in ("hash", "hash 0", "modulo 2", "range 3 9"):
            store.snapshot_path.write_text(
                f"%repro-snapshot 3\n%meta sharding {operands}\n"
                "%section graph\nn 1 a\n%end\n",
                encoding="utf-8",
            )
            with pytest.raises(PersistFormatError):
                store.load()

    def test_monolithic_store_refuses_segmented_reopen(self, tmp_path):
        """Regression: reopening a store that already journals a
        monolithic deltas.log with a shard map must refuse loudly —
        silently switching layouts would orphan committed entries."""
        engine = four_view_engine(
            DiGraph(labels={1: "a", 2: "b"}, edges=[(1, 2)])
        )
        store = SnapshotStore(tmp_path / "store")
        store.attach(engine)
        store.save(engine)
        engine.apply(Delta([insert(2, 3, "b", "c")]))  # journaled tail
        with pytest.raises(ValueError, match="orphan"):
            SnapshotStore(tmp_path / "store", shard_map=ShardMap(2))
        # the refusal preserved everything: a plain reopen recovers it
        revived = SnapshotStore(tmp_path / "store").load(attach_journal=False)
        assert revived.graph == engine.graph

    def test_segmented_store_requires_matching_sharded_graph(self, tmp_path):
        """Regression: a segmented store over a plain DiGraph (or a
        differently-sharded graph) journals fine but can never recover
        — the mismatch must be refused at attach/save time."""
        plain = four_view_engine(DiGraph(labels={1: "a"}, edges=[]))
        store = SnapshotStore(tmp_path / "store", shard_map=ShardMap(3))
        with pytest.raises(ValueError, match="not a ShardedGraphStore"):
            store.attach(plain)
        with pytest.raises(ValueError, match="not a ShardedGraphStore"):
            store.save(plain)
        mismatched = four_view_engine(
            ShardedGraphStore(shard_map=ShardMap(2), labels={1: "a"}, edges=[])
        )
        with pytest.raises(ValueError, match="differs"):
            store.attach(mismatched)

    def test_attach_propagates_engine_executor_to_segmented_log(self, tmp_path):
        shard_map = ShardMap(2)
        engine = four_view_engine(ShardedGraphStore(shard_map=shard_map))
        engine.scheduler.executor = "threads"
        store = SnapshotStore(tmp_path / "store", shard_map=shard_map)
        assert store.log.executor is None
        store.attach(engine)
        assert store.log.executor == "threads"
        # an explicit choice on the log is never overridden
        other = SnapshotStore(tmp_path / "other", shard_map=shard_map)
        other.log.executor = "serial"
        other.attach(engine)
        assert other.log.executor == "serial"

    def test_torn_seq_is_not_resurrected_below_the_floor(self, tmp_path):
        """Regression: a torn cross-segment append is dropped while its
        seq sits above every truncation floor — and must STAY dropped
        once compaction (with conservative lagging retention) moves the
        floor past it, instead of resurrecting half a batch."""
        log = segmented(tmp_path, shards=2)
        a, b = 0, next(
            n for n in range(1, 50)
            if log.shard_map.shard_of(n) != log.shard_map.shard_of(0)
        )
        log.append(Delta([insert(a, b, "x", "y")]))  # seq 1
        # the crash: a two-participant seq 2 reaches only one segment
        log.segment(log.shard_map.shard_of(a)).append(
            Delta([insert(a, 100, "x", "z")]), seq=2, participants=2
        )
        log._next_seq = None
        log.append(Delta([insert(b, 101, "y", "z")]))  # seq 3
        assert [e.seq for e in log.entries()] == [1, 3]  # 2 is torn
        # floor moves past seq 2, with a broadcast lagging view that
        # conservatively retains every below-floor entry it might want
        log.compact(after=3, lagging=[(0, None)], graph_nodes={a, b})
        for entry in log.entries():
            if entry.seq == 2:
                assert not entry.delta, "torn seq 2 resurrected with content"
        # recovery-style read above the floor is unaffected
        assert [e.seq for e in log.entries(after=3)] == []
        log2 = SegmentedDeltaLog(tmp_path / "segments", ShardMap(2))
        assert log2.append(Delta([insert(9, 9)])) == 4

    def test_failed_void_rewrite_is_retried(self, tmp_path):
        """Regression: a transient error while voiding torn debris must
        not mark the floor as vetted — a retried compaction has to void
        again, or the half-batch resurrects below the floor."""
        log = segmented(tmp_path, shards=2)
        a, b = 0, next(
            n for n in range(1, 50)
            if log.shard_map.shard_of(n) != log.shard_map.shard_of(0)
        )
        log.append(Delta([insert(a, b, "x", "y")]))  # seq 1
        holder = log.shard_map.shard_of(a)
        log.segment(holder).append(
            Delta([insert(a, 99, "x", "z")]), seq=2, participants=2
        )
        log._next_seq = None
        log.append(Delta([insert(b, 101, "y", "z")]))  # seq 3

        victim = log.segment(holder)
        original = victim.compact
        def failing_compact(*args, **kwargs):
            raise OSError("no space left on device")
        victim.compact = failing_compact
        with pytest.raises(OSError):
            log.compact_segment(0, 3, graph_nodes={a, b})
        victim.compact = original

        # the retry must re-void; seq 2 never resurrects with content
        log.compact(after=3, lagging=[(0, None)], graph_nodes={a, b})
        for entry in log.entries():
            if entry.seq == 2:
                assert not entry.delta, "torn seq 2 resurrected after retry"

    def test_autosnapshot_policy_with_rotating_compaction(self, tmp_path):
        engine, store = self.build(tmp_path)
        policy = SnapshotPolicy(every_batches=2, compact_every_batches=3)
        store.attach(engine, policy=policy)
        store.save(engine)
        for n in range(9):
            engine.apply(Delta([insert(10 + n, 11 + n, "a", "b")]))
        assert policy.saves >= 3 and policy.compactions >= 2
        revived = SnapshotStore(tmp_path / "store").load(attach_journal=False)
        self.assert_sessions_equal(revived, engine)

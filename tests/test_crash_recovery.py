"""Crash-injection torture tests for the persistence layer.

Every byte boundary of ``DeltaLog.append``, ``DeltaLog.compact``, and
``SnapshotStore.save`` (full *and* incremental, including ``%graphdiff``
chunks and ``compact=True``) is a kill point: the write is severed
there, the torn bytes really reach the disk, and a fresh process must
recover to a state equal to either the pre-operation or the
post-operation state — never a torn hybrid.

Tier-1 strides the byte space (every write-call boundary is still always
covered, because each record/directive is a separate ``write``);
``REPRO_CRASHSIM_EXHAUSTIVE=1`` (the nightly CI job) walks every single
byte.
"""

import os
import shutil

import pytest

from crashsim import FaultyStore
from repro import (
    Delta,
    DiGraph,
    Engine,
    ShardedGraphStore,
    ShardMap,
    delete,
    insert,
)
from repro.dataflow import DataflowView
from repro.iso import ISOIndex, Pattern
from repro.kws import KWSIndex, KWSQuery
from repro.persist import DeltaLog, SegmentedDeltaLog, SnapshotStore
from repro.rpq import RPQIndex
from repro.scc import SCCIndex

EXHAUSTIVE = os.environ.get("REPRO_CRASHSIM_EXHAUSTIVE") == "1"
#: Byte stride between kill points in the quick configuration.  Chosen
#: co-prime with common record lengths so strided points drift across
#: line offsets instead of hitting the same column every time.
STRIDE = 1 if EXHAUSTIVE else 7
#: Snapshot saves are a few KB; a wider (still co-prime) stride keeps
#: tier-1 fast while every record boundary is still crossed — each
#: record is its own write call, so a kill point inside *any* record
#: severs at that record's boundary offset.  Nightly walks every byte.
SAVE_STRIDE = 1 if EXHAUSTIVE else 23

KWS_QUERY = KWSQuery(("a", "b"), bound=2)
RPQ_QUERY = "a . (b + c)* . c"
ISO_PATTERN = Pattern.from_edges({0: "a", 1: "b"}, [(0, 1)])
SHARD_MAP = ShardMap(3)


def clear_dir(root) -> None:
    """Reset a torture root between kill points (segment directories
    nest one level, so a flat unlink loop is not enough)."""
    if root.exists():
        for child in root.iterdir():
            if child.is_dir():
                shutil.rmtree(child)
            else:
                child.unlink()
    root.mkdir(exist_ok=True)


def sample_graph() -> DiGraph:
    return DiGraph(
        labels={1: "a", 2: "b", 3: "c", 4: "a", 5: "b", 6: "d", 7: "d"},
        edges=[(1, 2), (2, 3), (3, 1), (4, 5), (6, 7)],
    )


def four_view_engine(graph: DiGraph) -> Engine:
    """The four paper indexes plus a ``dataflow`` section (triangle
    count), so every save/load kill point also tortures the dataflow
    view kind's snapshot + restore + replay path."""
    engine = Engine(graph)
    engine.register("kws", lambda g, m: KWSIndex(g, KWS_QUERY, meter=m))
    engine.register("rpq", lambda g, m: RPQIndex(g, RPQ_QUERY, meter=m))
    engine.register("scc", lambda g, m: SCCIndex(g, meter=m))
    engine.register("iso", lambda g, m: ISOIndex(g, ISO_PATTERN, meter=m))
    engine.register(
        "tri", lambda g, m: DataflowView(g, "triangle-count", meter=m)
    )
    return engine


def assert_recovered_equals(recovered: Engine, reference: Engine) -> None:
    assert recovered.graph == reference.graph
    assert recovered["kws"].roots() == reference["kws"].roots()
    assert recovered["rpq"].matches == reference["rpq"].matches
    assert recovered["scc"].components() == reference["scc"].components()
    assert recovered["iso"].matches == reference["iso"].matches
    assert recovered["tri"].value() == reference["tri"].value()
    assert recovered["tri"].snapshot() == reference["tri"].snapshot()


# ----------------------------------------------------------------------
# DeltaLog.append
# ----------------------------------------------------------------------


class TestTornAppend:
    def test_append_recovers_at_every_kill_point(self, tmp_path):
        """A killed append leaves either the old committed entries or the
        old entries plus the new one — and the log stays appendable with
        never-reused seqs."""
        root = tmp_path / "log"
        pre = [
            Delta([insert(1, 2, "a", "b"), delete(3, 4)]),
            Delta([insert("spaced node", 'quo"ted', "x y", "")]),
        ]
        new_batch = Delta([insert(7, 8, "c", "d"), delete(1, 2)])

        def setup():
            if root.exists():
                for child in root.iterdir():
                    child.unlink()
            root.mkdir(exist_ok=True)
            log = DeltaLog(root / "deltas.log")
            for batch in pre:
                log.append(batch)

        def operation():
            DeltaLog(root / "deltas.log").append(new_batch)

        def recover(completed):
            log = DeltaLog(root / "deltas.log")
            entries = log.entries()
            seqs = [entry.seq for entry in entries]
            # pre- or post-state, never a hybrid: a kill that tore only
            # the final newline leaves a fully parseable entry, which
            # recovery MAY keep (redo semantics — unacknowledged but
            # intact); every other kill must drop the whole entry.
            assert seqs in ([1, 2], [1, 2, 3])
            if completed:
                assert seqs == [1, 2, 3]
            if seqs == [1, 2, 3]:
                assert entries[-1].delta.updates == new_batch.updates
            assert entries[0].delta.updates == pre[0].updates
            assert entries[1].delta.updates == pre[1].updates
            # the log must stay appendable, without seq reuse
            next_seq = log.append(Delta([insert(9, 9)]))
            assert next_seq >= 3 and next_seq > max(seqs)
            tail = DeltaLog(root / "deltas.log").entries()
            assert tail[-1].delta.updates == [insert(9, 9)]

        harness = FaultyStore(root, setup, operation, recover, stride=STRIDE)
        assert harness.torture() > 4

    def test_append_after_torn_append_never_reuses_a_mentioned_seq(
        self, tmp_path
    ):
        """If the torn fragment already mentioned its seq on disk, a
        fresh process must skip past it."""
        root = tmp_path / "log"
        root.mkdir()
        path = root / "deltas.log"
        log = DeltaLog(path)
        log.append(Delta([insert(1, 2)]))
        harness = FaultyStore(root, lambda: None, lambda: None, lambda _: None)
        killed = harness.run(fuel=12)  # dies mid-entry, after "%batch 2\n"
        assert killed  # nothing ran; arming alone must not crash

        def torn_append():
            DeltaLog(path).append(Delta([insert(5, 6)]))

        harness.operation = torn_append
        assert not harness.run(fuel=9)  # "%batch 2\n" is 9 bytes: seq torn in
        fresh = DeltaLog(path)
        assert [entry.seq for entry in fresh.entries()] == [1]
        assert fresh.append(Delta([insert(6, 7)])) == 3  # 2 is spoken for


# ----------------------------------------------------------------------
# DeltaLog.compact
# ----------------------------------------------------------------------


class TestTornCompact:
    def test_compact_recovers_at_every_kill_point(self, tmp_path):
        root = tmp_path / "log"
        batches = [Delta([insert(k, k + 1)]) for k in range(4)]

        def setup():
            if root.exists():
                for child in root.iterdir():
                    child.unlink()
            root.mkdir(exist_ok=True)
            log = DeltaLog(root / "deltas.log")
            for batch in batches:
                log.append(batch)

        def operation():
            DeltaLog(root / "deltas.log").compact(after=2)

        def recover(completed):
            log = DeltaLog(root / "deltas.log")
            seqs = [entry.seq for entry in log.entries()]
            if completed:
                assert seqs == [3, 4]
                assert log.last_seq() == 4
            else:
                # temp-and-rename: the old log must be fully intact
                assert seqs == [1, 2, 3, 4]
            assert DeltaLog(root / "deltas.log").append(Delta([insert(9, 9)])) == 5

        harness = FaultyStore(root, setup, operation, recover, stride=STRIDE)
        assert harness.torture() > 3


# ----------------------------------------------------------------------
# SnapshotStore.save — full, incremental (%graphdiff), compacting
# ----------------------------------------------------------------------


class SaveTorture:
    """Shared harness: build a journaling session with a snapshot and a
    journaled tail, torture one save variant, and require every recovery
    to equal the live session."""

    #: Batches journaled after the first save (the tail at crash time).
    TAIL = [
        Delta([delete(6, 7)]),
        Delta([insert(6, 1, "d", "a"), delete(3, 1)]),
    ]

    def build(self, root):
        """Returns (engine, store) with a saved snapshot + journaled tail."""
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(root)
        store.attach(engine)
        store.save(engine)
        for batch in self.TAIL:
            engine.apply(batch)
        return engine, store

    def tortured_save(self, engine, store):
        raise NotImplementedError

    def run(self, tmp_path):
        root = tmp_path / "store"
        state = {}

        def setup():
            clear_dir(root)
            state["engine"], state["store"] = self.build(root)

        def operation():
            self.tortured_save(state["engine"], state["store"])

        def recover(completed):
            # a fresh process: nothing but the disk survives
            revived = SnapshotStore(root).load(attach_journal=False)
            assert_recovered_equals(revived, state["engine"])

        harness = FaultyStore(root, setup, operation, recover, stride=SAVE_STRIDE)
        assert harness.torture() > 10


class TestTornFullSave(SaveTorture):
    def tortured_save(self, engine, store):
        store.save(engine)

    def test_full_save(self, tmp_path):
        self.run(tmp_path)


class TestTornIncrementalSave(SaveTorture):
    """The incremental writer path: carried view sections, carried graph
    base, and a fresh ``%graphdiff`` chunk."""

    def build(self, root):
        engine, store = super().build(root)
        # an intermediate incremental save seeds carried sections and a
        # first %graphdiff chunk; the tortured save then appends another
        store.save(engine, incremental=True)
        engine.apply(Delta([insert(7, 2, "d", "b")]))
        return engine, store

    def tortured_save(self, engine, store):
        store.save(engine, incremental=True)

    def test_incremental_save(self, tmp_path):
        self.run(tmp_path)


class TestTornCompactingSave(SaveTorture):
    """``save(compact=True)`` spans two atomic writes (snapshot rename,
    then log rewrite); a kill between them must leave the new snapshot
    with the old log — still consistent, because compaction only drops
    what the already-durable snapshot covers."""

    def tortured_save(self, engine, store):
        store.save(engine, compact=True)

    def test_compacting_save(self, tmp_path):
        self.run(tmp_path)


class TestTornCompressedFullSave(SaveTorture):
    """The v5 compressed writer: ``%packed`` bodies flow through the
    same temp-write/fsync/rename discipline as plaintext, so a torn
    compressed save must leave the previous snapshot intact and a
    completed one must read back exactly."""

    def build(self, root):
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(root, codec="zlib")
        store.attach(engine)
        store.save(engine)
        for batch in self.TAIL:
            engine.apply(batch)
        return engine, store

    def tortured_save(self, engine, store):
        store.save(engine)

    def test_compressed_full_save(self, tmp_path):
        self.run(tmp_path)


class TestTornCompressedIncrementalSave(TestTornCompressedFullSave):
    """Compressed incremental saves carry earlier ``%packed`` blocks
    byte-for-byte and append fresh ones; a kill anywhere in that copy
    must not corrupt the carried bytes the next load depends on."""

    def build(self, root):
        engine, store = super().build(root)
        store.save(engine, incremental=True)
        engine.apply(Delta([insert(7, 2, "d", "b")]))
        return engine, store

    def tortured_save(self, engine, store):
        store.save(engine, incremental=True)

    def test_compressed_incremental_save(self, tmp_path):
        self.run(tmp_path)


class TestTornAppendInSession:
    """A crash inside the journal append of ``engine.apply``: the batch
    was never acknowledged, so recovery must equal the session *without*
    it (write-ahead ordering: the log may lead the session by at most the
    torn, unacknowledged entry — which recovery discards)."""

    def test_session_append_crash(self, tmp_path):
        root = tmp_path / "store"
        batch = Delta([delete(6, 7), insert(7, 1, "d", "a")])
        state = {}

        def setup():
            if root.exists():
                for child in root.iterdir():
                    child.unlink()
            engine = four_view_engine(sample_graph())
            store = SnapshotStore(root)
            store.attach(engine)
            store.save(engine)
            state["engine"], state["store"] = engine, store

        def operation():
            state["engine"].apply(batch)

        def recover(completed):
            revived = SnapshotStore(root).load(attach_journal=False)
            with_batch = four_view_engine(sample_graph())
            with_batch.apply(batch)
            if completed or revived.graph == with_batch.graph:
                # redo semantics: a kill that tore only the entry's final
                # newline leaves it intact on disk, and recovery replays
                # it even though the session never acknowledged it.
                assert_recovered_equals(revived, with_batch)
            else:
                assert_recovered_equals(revived, four_view_engine(sample_graph()))

        harness = FaultyStore(root, setup, operation, recover, stride=STRIDE)
        assert harness.torture() > 3


# ----------------------------------------------------------------------
# SegmentedDeltaLog — cross-segment commit atomicity under crashes
# ----------------------------------------------------------------------


def sharded_sample_graph() -> ShardedGraphStore:
    return ShardedGraphStore.from_digraph(sample_graph(), SHARD_MAP)


def open_segmented(root) -> SegmentedDeltaLog:
    """A serial-executor segmented log (kill points must be
    deterministic, and the crash shims live in this process)."""
    return SegmentedDeltaLog(root / "segments", SHARD_MAP, executor="serial")


class TestTornSegmentedAppend:
    def test_append_recovers_at_every_kill_point(self, tmp_path):
        """A killed multi-segment append must recover to the old
        committed entries — or, when every participant's sub-entry
        landed intact, the old entries plus the new one (the same redo
        caveat as the monolithic log) — never a partially merged batch."""
        root = tmp_path / "log"
        pre = [
            Delta([insert(1, 2, "a", "b"), insert(6, 7, "d", "d")]),
            Delta([insert(4, 5, "a", "b")]),
        ]
        # spans several shards, so the kill space covers inter-segment gaps
        new_batch = Delta(
            [insert(10, 11, "c", "d"), insert(11, 12, "d", "a"), delete(1, 2)]
        )
        participants = len(
            {SHARD_MAP.shard_of(update.source) for update in new_batch}
        )
        assert participants >= 2  # the scenario must actually span segments

        def setup():
            clear_dir(root)
            log = open_segmented(root)
            for batch in pre:
                log.append(batch)

        def operation():
            open_segmented(root).append(new_batch)

        def recover(completed):
            log = open_segmented(root)
            entries = log.entries()
            seqs = [entry.seq for entry in entries]
            assert seqs in ([1, 2], [1, 2, 3])
            if completed:
                assert seqs == [1, 2, 3]
            if seqs == [1, 2, 3]:
                # all-or-nothing: the merged batch is complete, never a
                # subset of its updates
                assert {u.edge for u in entries[-1].delta} == {
                    u.edge for u in new_batch
                }
            assert {u.edge for u in entries[0].delta} == {
                u.edge for u in pre[0]
            }
            # appendable, without reusing any mentioned seq
            next_seq = log.append(Delta([insert(9, 9)]))
            assert next_seq > max(seqs) and next_seq >= 3
            tail = open_segmented(root).entries()
            assert tail[-1].delta.updates == [insert(9, 9)]

        harness = FaultyStore(root, setup, operation, recover, stride=STRIDE)
        assert harness.torture() > 4


class TestTornSegmentedCompact:
    def test_compact_recovers_at_every_kill_point(self, tmp_path):
        """Compaction rewrites one segment at a time (temp-and-rename
        each); a kill between segments leaves a mix of compacted and
        uncompacted files — which must still read consistently above
        the floor, keep every covered seq spoken for, and stay
        appendable."""
        root = tmp_path / "log"
        batches = [
            Delta([insert(k, k + 1, "a", "b"), insert(k + 10, k, "c", "d")])
            for k in range(4)
        ]

        def setup():
            clear_dir(root)
            log = open_segmented(root)
            for batch in batches:
                log.append(batch)

        def operation():
            open_segmented(root).compact(
                after=2, graph_nodes=set(range(40))
            )

        def recover(completed):
            log = open_segmented(root)
            tail = log.entries(after=2)
            assert [entry.seq for entry in tail] == [3, 4]
            for entry, batch in zip(tail, batches[2:]):
                assert {u.edge for u in entry.delta} == {u.edge for u in batch}
            assert log.last_seq() == 4
            if completed:
                # every segment carries the floor: nothing below it is
                # merged back
                assert [entry.seq for entry in log.entries()] == [3, 4]
            assert open_segmented(root).append(Delta([insert(9, 9)])) == 5

        harness = FaultyStore(root, setup, operation, recover, stride=STRIDE)
        assert harness.torture() > 3


class TestTornShardedSave(SaveTorture):
    """The full save path of a sharded session: v3 header + ``%meta
    sharding`` stamp + segmented journal, recovered by a fresh store
    that discovers the layout from disk."""

    def build(self, root):
        engine = four_view_engine(sharded_sample_graph())
        store = SnapshotStore(root, shard_map=SHARD_MAP)
        store.log.executor = "serial"
        store.attach(engine)
        store.save(engine)
        for batch in self.TAIL:
            engine.apply(batch)
        return engine, store

    def tortured_save(self, engine, store):
        store.save(engine)

    def test_sharded_save(self, tmp_path):
        self.run(tmp_path)


class TestTornShardedIncrementalSave(TestTornShardedSave):
    """Sharded + incremental: carried sections and %graphdiff chunks on
    top of the segmented journal."""

    def build(self, root):
        engine, store = super().build(root)
        store.save(engine, incremental=True)
        engine.apply(Delta([insert(7, 2, "d", "b")]))
        return engine, store

    def tortured_save(self, engine, store):
        store.save(engine, incremental=True)

    def test_sharded_incremental_save(self, tmp_path):
        self.run(tmp_path)


class TestTornShardSplit:
    """Every kill point of an online shard split — the pre-split seal,
    the snapshot temp write, and the committing rename.  Recovery must
    see the whole split (new map, migrated sub-graph) or none of it
    (the live session rolls the migration back and the disk still holds
    the old layout) — never a torn hybrid, and never a lost tail
    batch."""

    def test_split_recovers_at_every_kill_point(self, tmp_path):
        root = tmp_path / "store"
        old_map = SHARD_MAP
        new_map = SHARD_MAP.split(1)
        state = {}

        def setup():
            clear_dir(root)
            engine = four_view_engine(sharded_sample_graph())
            store = SnapshotStore(root, shard_map=old_map)
            store.log.executor = "serial"
            store.attach(engine)
            store.save(engine)
            for batch in SaveTorture.TAIL:
                engine.apply(batch)
            state["engine"], state["store"] = engine, store

        def operation():
            state["store"].split_shard(state["engine"], 1)

        def recover(completed):
            engine = state["engine"]
            # in-process rollback: a failed split restores the old map
            # before the error propagates, so the live session and the
            # disk agree on the layout either way
            live_map = engine.graph.shard_map
            assert live_map == (new_map if completed else old_map)
            revived = SnapshotStore(root).load(attach_journal=False)
            assert revived.graph.shard_map == live_map
            assert_recovered_equals(revived, engine)

        harness = FaultyStore(root, setup, operation, recover, stride=SAVE_STRIDE)
        assert harness.torture() > 10


class TestTornSegmentedAppendInSession:
    """A crash inside the segmented journal append of ``engine.apply``:
    the batch was never acknowledged, so recovery must equal the session
    without it — or with it entirely, when every sub-entry landed intact
    (redo semantics); never a partially applied batch."""

    def test_session_append_crash(self, tmp_path):
        root = tmp_path / "store"
        batch = Delta(
            [delete(6, 7), insert(7, 1, "d", "a"), insert(1, 6, "a", "d")]
        )
        state = {}

        def setup():
            clear_dir(root)
            engine = four_view_engine(sharded_sample_graph())
            store = SnapshotStore(root, shard_map=SHARD_MAP)
            store.log.executor = "serial"
            store.attach(engine)
            store.save(engine)
            state["engine"], state["store"] = engine, store

        def operation():
            state["engine"].apply(batch)

        def recover(completed):
            revived = SnapshotStore(root).load(attach_journal=False)
            with_batch = four_view_engine(sharded_sample_graph())
            with_batch.apply(batch)
            if completed or revived.graph == with_batch.graph:
                assert_recovered_equals(revived, with_batch)
            else:
                assert_recovered_equals(
                    revived, four_view_engine(sharded_sample_graph())
                )

        harness = FaultyStore(root, setup, operation, recover, stride=STRIDE)
        assert harness.torture() > 3


# ----------------------------------------------------------------------
# Group-commit windows (format v4) — discard-whole under crashes
# ----------------------------------------------------------------------


def open_windowed(root, window_size=4) -> SegmentedDeltaLog:
    """An in-process windowed segmented log (``executor="serial"``,
    explicit window size): same ``%window``/``%seal`` framing the worker
    tier writes, but every byte leaves *this* process, which is where
    the crash shims live."""
    return SegmentedDeltaLog(
        root / "segments", SHARD_MAP, executor="serial", window_size=window_size
    )


class TestTornWindowedAppend:
    def test_windowed_append_and_seal_recover_at_every_kill_point(
        self, tmp_path
    ):
        """Kill points across two windowed appends *and* the seal that
        makes them durable: recovery sees either the previously sealed
        prefix or the whole new window — never one of its batches
        without the other (invariant 11: torn windows are discarded
        whole)."""
        root = tmp_path / "log"
        pre = [
            Delta([insert(1, 2, "a", "b"), insert(6, 7, "d", "d")]),
            Delta([insert(4, 5, "a", "b")]),
        ]
        window_batches = [
            Delta([insert(10, 11, "c", "d"), insert(11, 12, "d", "a")]),
            Delta([delete(1, 2), insert(12, 13, "a", "b")]),
        ]

        def setup():
            clear_dir(root)
            log = open_windowed(root)
            for batch in pre:
                log.append(batch)
            log.flush()  # window 0 sealed: the durable prefix

        def operation():
            log = open_windowed(root)
            for batch in window_batches:
                log.append(batch)
            log.flush()

        def recover(completed):
            log = open_windowed(root)
            seqs = [entry.seq for entry in log.entries()]
            # all-or-nothing at window granularity: seq 3 without seq 4
            # (or vice versa) would be a torn window leaking through
            assert seqs in ([1, 2], [1, 2, 3, 4])
            if completed:
                assert seqs == [1, 2, 3, 4]
                assert log.last_seq() == 4
            # appendable after recovery, never reusing a mentioned seq
            next_seq = log.append(Delta([insert(9, 9)]))
            log.flush()
            assert next_seq > max(seqs)
            tail = open_windowed(root).entries()
            assert tail[-1].delta.updates == [insert(9, 9)]
            assert tail[-1].seq == next_seq

        harness = FaultyStore(root, setup, operation, recover, stride=STRIDE)
        assert harness.torture() > 4

    def test_seal_alone_recovers_at_every_kill_point(self, tmp_path):
        """The seal in isolation (appends already on disk, unsealed):
        a kill before the last participant's ``%seal`` fsync discards
        the window whole; after it, the window replays whole."""
        root = tmp_path / "log"
        state = {}
        window_batches = [
            Delta([insert(10, 11, "c", "d"), insert(11, 12, "d", "a")]),
            Delta([insert(12, 13, "a", "b")]),
        ]

        def setup():
            clear_dir(root)
            log = open_windowed(root)
            log.append(Delta([insert(1, 2, "a", "b")]))
            log.flush()  # sealed prefix: seq 1
            for batch in window_batches:
                log.append(batch)  # window open across both
            state["log"] = log

        def operation():
            state["log"].seal_window()

        def recover(completed):
            log = open_windowed(root)
            seqs = [entry.seq for entry in log.entries()]
            assert seqs in ([1], [1, 2, 3])
            if completed:
                assert seqs == [1, 2, 3]
                assert log.last_seq() == 3

        harness = FaultyStore(root, setup, operation, recover, stride=STRIDE)
        assert harness.torture() > 2


class TestCoordinatorDeathMidWindow:
    """The worker-tier crash story: the coordinator (and with it every
    resident worker) dies while a window is open mid-absorb.  Workers
    were appending pipelined sub-entries with no fsync — any prefix of
    them may have reached the segments — but no ``%seal`` ever landed,
    so a fresh process must recover exactly the sealed prefix."""

    def test_terminated_pool_leaves_only_sealed_windows(self, tmp_path):
        pytest.importorskip("multiprocessing")
        from repro.shardexec import shutdown_pools

        root = tmp_path / "store"
        shard_map = ShardMap(3)
        engine = four_view_engine(
            ShardedGraphStore.from_digraph(sample_graph(), shard_map)
        )
        engine.scheduler.executor = "workers"
        reference = four_view_engine(sample_graph())
        store = SnapshotStore(root, shard_map=shard_map)
        store.attach(engine)
        store.log.window_size = 100  # no auto-seal: flush() decides
        try:
            store.save(engine)
            durable = [
                Delta([delete(6, 7)]),
                Delta([insert(6, 1, "d", "a"), delete(3, 1)]),
            ]
            for batch in durable:
                engine.apply(batch)
                reference.apply(batch)
            store.log.flush()  # the sealed (durable) prefix
            pool = store.log._worker_pool
            if pool is None:
                pytest.skip("worker processes unavailable in this interpreter")
            # these ride the open window; the kill races their absorb
            for batch in [
                Delta([insert(7, 2, "d", "b")]),
                Delta([insert(2, 6, "b", "d"), delete(4, 5)]),
            ]:
                engine.apply(batch)
            pool.terminate()  # coordinator death: workers killed mid-pipeline
            revived = SnapshotStore(root).load(attach_journal=False)
            assert_recovered_equals(revived, reference)
            # the root stays serviceable: a fresh session re-spawns
            # workers and the next sealed window lands on top
            fresh_store = SnapshotStore(root, shard_map=shard_map)
            fresh = fresh_store.load()
            fresh.scheduler.executor = "workers"
            fresh_store.log.window_size = 100
            follow_up = Delta([insert(1, 5, "a", "b")])
            fresh.apply(follow_up)
            reference.apply(follow_up)
            fresh_store.log.flush()
            final = SnapshotStore(root).load(attach_journal=False)
            assert_recovered_equals(final, reference)
        finally:
            shutdown_pools()


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])

"""Gap-filling tests: match-tree extraction errors, gadget validation,
DynSCC unit behaviours, generator edge shapes."""

import pytest

from repro.core.delta import Delta, delete, insert
from repro.graph import DiGraph
from repro.graph.generators import cycle_graph, label_alphabet, layered_dag
from repro.kws import KDistEntry, KDistIndex, KWSQuery
from repro.kws.matches import MatchExtractionError, follow_path, match_at
from repro.scc import DynSCC, tarjan_scc
from repro.theory import (
    kws_chain_gadget,
    rpq_two_cycle_gadget,
    scc_cycle_gadget,
    ssrp_chain_gadget,
)


class TestMatchExtraction:
    def test_follow_path_missing_entry(self):
        index = KDistIndex(KWSQuery(("a",), 2))
        with pytest.raises(MatchExtractionError):
            follow_path(index, "nowhere", "a")

    def test_follow_path_broken_chain_detected(self):
        index = KDistIndex(KWSQuery(("a",), 3))
        # corrupt chain: v's next points at a node with the wrong distance
        index.set("v", "a", KDistEntry(2, "w"))
        index.set("w", "a", KDistEntry(2, "x"))  # should be 1
        index.set("x", "a", KDistEntry(0, None))
        with pytest.raises(MatchExtractionError):
            follow_path(index, "v", "a")

    def test_match_at_requires_all_keywords(self):
        index = KDistIndex(KWSQuery(("a", "b"), 2))
        index.set("v", "a", KDistEntry(0, None))
        assert match_at(index, "v") is None

    def test_kdist_check_shape_catches_bound_violation(self):
        index = KDistIndex(KWSQuery(("a",), 1))
        index.set("v", "a", KDistEntry(1, "w"))
        index.set("w", "a", KDistEntry(0, None))
        index.check_shape()  # fine at the bound
        bad = KDistIndex(KWSQuery(("a",), 0))
        bad.set("v", "a", KDistEntry(1, "w"))
        with pytest.raises(AssertionError):
            bad.check_shape()

    def test_parents_of_tracks_rewrites(self):
        index = KDistIndex(KWSQuery(("a",), 3))
        index.set("v", "a", KDistEntry(1, "w"))
        assert index.parents_of("w", "a") == frozenset({"v"})
        index.set("v", "a", KDistEntry(1, "x"))
        assert index.parents_of("w", "a") == frozenset()
        index.clear("v", "a")
        assert index.parents_of("x", "a") == frozenset()


class TestGadgetValidation:
    def test_all_gadgets_reject_tiny_n(self):
        for gadget in (rpq_two_cycle_gadget, scc_cycle_gadget, ssrp_chain_gadget):
            with pytest.raises(ValueError):
                gadget(1)
        with pytest.raises(ValueError):
            kws_chain_gadget(1, 4)
        with pytest.raises(ValueError):
            kws_chain_gadget(4, 1)

    def test_scc_gadget_single_component(self):
        gadget = scc_cycle_gadget(5)
        parts = tarjan_scc(gadget.graph).partition()
        assert len(parts) == 1
        after = gadget.first_update.applied(gadget.graph)
        assert len(tarjan_scc(after).partition()) == 1  # chord was redundant

    def test_kws_gadget_has_parallel_lanes(self):
        gadget = kws_chain_gadget(3, 3)
        # root reaches the keyword through 3 lanes of length 3
        assert gadget.graph.out_degree("root") == 3

    def test_gadget_updates_are_applicable(self):
        for gadget in (
            rpq_two_cycle_gadget(3),
            scc_cycle_gadget(3),
            ssrp_chain_gadget(3),
            kws_chain_gadget(3, 3),
        ):
            patched = gadget.first_update.applied(gadget.graph)
            if gadget.second_update is not None:
                gadget.second_update.applied(patched)


class TestDynSCCUnits:
    def test_insert_into_same_component_is_cheap(self):
        g = cycle_graph(6)
        dyn = DynSCC(g)
        dyn.apply(Delta([insert(0, 3)]))
        assert dyn.components() == tarjan_scc(dyn.graph).partition()

    def test_new_node_insertion(self):
        g = cycle_graph(4)
        dyn = DynSCC(g)
        dyn.apply(Delta([insert(0, 99, target_label="x")]))
        assert frozenset({99}) in dyn.components()

    def test_delete_splits(self):
        g = cycle_graph(5)
        dyn = DynSCC(g)
        dyn.apply(Delta([delete(2, 3)]))
        assert all(len(c) == 1 for c in dyn.components())


class TestGeneratorShapes:
    def test_layered_dag_validation(self):
        with pytest.raises(ValueError):
            layered_dag(0, 3, label_alphabet(2))

    def test_cycle_graph_validation(self):
        with pytest.raises(ValueError):
            cycle_graph(0)

    def test_single_node_cycle_has_no_edges(self):
        g = cycle_graph(1)
        assert g.num_nodes == 1 and g.num_edges == 0

    def test_power_law_forward_bias_bounds(self):
        from repro.graph.generators import power_law_graph

        with pytest.raises(ValueError):
            power_law_graph(10, 20, label_alphabet(2), forward_bias=1.5)

"""Tests for anchored VF2 search and graph statistics helpers."""

import pytest

from repro.graph import DiGraph
from repro.graph.generators import label_alphabet, uniform_random_graph
from repro.graph.stats import degree_histogram, label_histogram, profile
from repro.iso import Pattern, vf2_matches
from repro.iso.vf2 import anchored_matches
from repro.workloads.datasets import with_selectivity

ALPHABET = label_alphabet(4)


class TestAnchoredMatches:
    @pytest.fixture
    def pattern(self) -> Pattern:
        return Pattern.from_edges(
            {0: ALPHABET[0], 1: ALPHABET[1], 2: ALPHABET[2]}, [(0, 1), (1, 2)]
        )

    def test_anchored_equals_filtered_full_search(self, pattern):
        graph = uniform_random_graph(30, 90, ALPHABET, seed=3)
        for edge in list(graph.edges())[:20]:
            expected = {
                match for match in vf2_matches(graph, pattern)
                if match.uses_edge(edge)
            }
            assert anchored_matches(graph, pattern, edge) == expected

    def test_union_over_edges_is_complete(self, pattern):
        graph = uniform_random_graph(25, 70, ALPHABET, seed=4)
        collected = set()
        for edge in graph.edges():
            collected |= anchored_matches(graph, pattern, edge)
        assert collected == vf2_matches(graph, pattern)

    def test_missing_edge_returns_empty(self, pattern):
        graph = uniform_random_graph(10, 20, ALPHABET, seed=5)
        assert anchored_matches(graph, pattern, ("nope", "nope2")) == set()

    def test_label_incompatible_edge_prunes_instantly(self, pattern):
        g = DiGraph(labels={1: ALPHABET[3], 2: ALPHABET[3]}, edges=[(1, 2)])
        assert anchored_matches(g, pattern, (1, 2)) == set()

    def test_self_loop_pattern_edge(self):
        looped = Pattern.from_edges({0: "q"}, [(0, 0)])
        g = DiGraph(labels={5: "q"})
        g.add_edge(5, 5)
        found = anchored_matches(g, looped, (5, 5))
        assert len(found) == 1

    def test_symmetric_pattern_dedupes(self):
        pattern = Pattern.from_edges({0: "a", 1: "a"}, [(0, 1), (1, 0)])
        g = DiGraph(labels={1: "a", 2: "a"}, edges=[(1, 2), (2, 1)])
        assert len(anchored_matches(g, pattern, (1, 2))) == 1


class TestStats:
    def test_profile_counts(self):
        graph = uniform_random_graph(40, 100, ALPHABET, seed=6)
        shape = profile(graph)
        assert shape.num_nodes == 40
        assert shape.num_edges == 100
        assert shape.avg_degree == pytest.approx(2 * 100 / 40)
        assert 0 < shape.max_scc_fraction <= 1

    def test_profile_empty_graph(self):
        shape = profile(DiGraph())
        assert shape.num_nodes == 0
        assert shape.max_scc_fraction == 0.0

    def test_label_histogram_sums_to_nodes(self):
        graph = uniform_random_graph(50, 120, ALPHABET, seed=7)
        histogram = label_histogram(graph)
        assert sum(histogram.values()) == 50

    def test_degree_histogram(self):
        g = DiGraph(labels={0: "x", 1: "x", 2: "x"}, edges=[(0, 1), (0, 2)])
        histogram = degree_histogram(g)
        assert histogram[2] == 1  # node 0
        assert histogram[0] == 2  # nodes 1 and 2

    def test_str_is_informative(self):
        graph = uniform_random_graph(20, 40, ALPHABET, seed=8)
        text = str(profile(graph))
        assert "|V|=20" in text and "|E|=40" in text


class TestWithSelectivity:
    def test_topology_preserved(self):
        graph = uniform_random_graph(60, 150, ALPHABET, seed=9)
        relabeled = with_selectivity(graph, nodes_per_label=10, seed=1)
        assert set(relabeled.edges()) == set(graph.edges())
        assert relabeled.num_nodes == graph.num_nodes

    def test_alphabet_size_matches_request(self):
        graph = uniform_random_graph(100, 200, ALPHABET, seed=10)
        relabeled = with_selectivity(graph, nodes_per_label=20, seed=2)
        labels = {relabeled.label(node) for node in relabeled.nodes()}
        assert len(labels) <= 100 // 20

    def test_original_untouched(self):
        graph = uniform_random_graph(30, 60, ALPHABET, seed=11)
        before = dict(graph.labels)
        with_selectivity(graph, nodes_per_label=5, seed=3)
        assert dict(graph.labels) == before

    def test_validation(self):
        graph = uniform_random_graph(10, 20, ALPHABET, seed=12)
        with pytest.raises(ValueError):
            with_selectivity(graph, nodes_per_label=0)

"""Docstring examples in the public engine/persist APIs must stay
runnable — the docs-can't-rot satellite of the persistence PR.  CI also
runs these through ``pytest --doctest-modules`` (see the docs job); this
mirror keeps them inside the tier-1 suite."""

import doctest

import pytest

import repro.dataflow.library
import repro.dataflow.runtime
import repro.dataflow.view
import repro.engine.relevance
import repro.engine.scheduler
import repro.engine.session
import repro.engine.view
import repro.graph.sharding
import repro.persist.deltalog
import repro.persist.format
import repro.persist.snapshot

MODULES = [
    repro.dataflow.library,
    repro.dataflow.runtime,
    repro.dataflow.view,
    repro.engine.relevance,
    repro.engine.scheduler,
    repro.engine.session,
    repro.engine.view,
    repro.graph.sharding,
    repro.persist.deltalog,
    repro.persist.format,
    repro.persist.snapshot,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    failures, tests = doctest.testmod(
        module, optionflags=doctest.ELLIPSIS, verbose=False
    )
    assert tests > 0, f"{module.__name__} has no doctests"
    assert failures == 0

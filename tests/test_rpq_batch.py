"""Tests for the batch RPQ_NFA algorithm, with an independent product-graph
oracle built on networkx."""

import networkx as nx
import pytest

from repro.graph import DiGraph
from repro.graph.generators import label_alphabet, uniform_random_graph
from repro.rpq import glushkov, matches_only, parse, rpq_nfa
from repro.rpq.markings import BOOTSTRAP


def oracle_matches(graph: DiGraph, query_text: str) -> set:
    """Independent implementation: explicit product graph + reachability."""
    nfa = glushkov(parse(query_text))
    product = nx.DiGraph()
    for v in graph.nodes():
        for s in range(nfa.num_states):
            product.add_node((v, s))
    for v, w in graph.edges():
        for s in range(nfa.num_states):
            for s2 in nfa.delta(s, graph.label(w)):
                product.add_edge((v, s), (w, s2))
    matches = set()
    for u in graph.nodes():
        starts = nfa.start_states(graph.label(u))
        if not starts:
            continue
        reachable = set()
        for s in starts:
            reachable.add((u, s))
            reachable |= nx.descendants(product, (u, s))
        for (v, s) in reachable:
            if s in nfa.accepting:
                matches.add((u, v))
    return matches


@pytest.fixture
def labeled_cycle() -> DiGraph:
    # a ring a -> b -> c -> a
    g = DiGraph(labels={0: "a", 1: "b", 2: "c"})
    g.add_edge(0, 1)
    g.add_edge(1, 2)
    g.add_edge(2, 0)
    return g


class TestMatches:
    def test_single_label_matches_single_nodes(self, labeled_cycle):
        assert matches_only(labeled_cycle, "a") == {(0, 0)}

    def test_two_hop(self, labeled_cycle):
        assert matches_only(labeled_cycle, "a . b") == {(0, 1)}

    def test_star_loops(self, labeled_cycle):
        # a (b c a)* — source 0, cycling back to 0
        matches = matches_only(labeled_cycle, "a . (b . c . a)*")
        assert (0, 0) in matches
        assert (0, 1) not in matches

    def test_empty_when_no_source_label(self, labeled_cycle):
        assert matches_only(labeled_cycle, "z . a") == set()

    def test_nullable_query_has_no_empty_word_matches(self, labeled_cycle):
        # L(a*) contains ε, but a path always spells >= 1 label: only the
        # a-labeled node matches itself.
        assert matches_only(labeled_cycle, "a*") == {(0, 0)}

    @pytest.mark.parametrize("query", ["a", "a . b", "a . b + b . c", "a . (b + c)*", "(a + b) . c*"])
    @pytest.mark.parametrize("seed", range(3))
    def test_against_oracle_random_graphs(self, query, seed):
        graph = uniform_random_graph(25, 70, ["a", "b", "c"], seed=seed)
        assert matches_only(graph, query) == oracle_matches(graph, query)

    def test_against_oracle_many_labels(self):
        alphabet = label_alphabet(8)
        graph = uniform_random_graph(30, 90, alphabet, seed=9)
        query = f"{alphabet[0]} . ({alphabet[1]} + {alphabet[2]})* . {alphabet[3]}"
        assert matches_only(graph, query) == oracle_matches(graph, query)


class TestMarkings:
    def test_bootstrap_entries(self, labeled_cycle):
        result = rpq_nfa(labeled_cycle, "a . b")
        marks = result.markings.get(0)
        entries = marks.states_at(0)
        assert len(entries) == 1
        entry = next(iter(entries.values()))
        assert entry.dist == 0
        assert entry.cpre == {BOOTSTRAP}
        assert entry.mpre == {BOOTSTRAP}

    def test_dist_is_path_length(self, labeled_cycle):
        result = rpq_nfa(labeled_cycle, "a . b . c")
        marks = result.markings.get(0)
        accepting_entries = [
            (node, state, marks.get(node, state))
            for node, state in marks.product_nodes()
            if state in result.nfa.accepting
        ]
        assert accepting_entries
        node, _, entry = accepting_entries[0]
        assert node == 2
        assert entry.dist == 2

    def test_cpre_contains_all_reached_predecessors(self):
        # diamond: u(a) -> {x(b), y(b)} -> t(c): t's entry has two cpre.
        g = DiGraph(labels={"u": "a", "x": "b", "y": "b", "t": "c"})
        for edge in [("u", "x"), ("u", "y"), ("x", "t"), ("y", "t")]:
            g.add_edge(*edge)
        result = rpq_nfa(g, "a . b . c")
        marks = result.markings.get("u")
        t_entries = marks.states_at("t")
        assert len(t_entries) == 1
        entry = next(iter(t_entries.values()))
        assert len(entry.cpre) == 2
        assert entry.mpre == entry.cpre  # both on shortest paths

    def test_mpre_subset_of_cpre_everywhere(self):
        graph = uniform_random_graph(30, 100, ["a", "b", "c"], seed=4)
        result = rpq_nfa(graph, "a . (b + c)* . c")
        for source in result.markings.sources():
            marks = result.markings.get(source)
            for node, state in marks.product_nodes():
                entry = marks.get(node, state)
                assert entry.mpre <= entry.cpre
                assert entry.mpre, f"empty mpre at {(source, node, state)}"

    def test_mpre_parents_are_one_step_closer(self):
        graph = uniform_random_graph(30, 100, ["a", "b", "c"], seed=5)
        result = rpq_nfa(graph, "a . b* . c")
        for source in result.markings.sources():
            marks = result.markings.get(source)
            for node, state in marks.product_nodes():
                entry = marks.get(node, state)
                for parent in entry.mpre:
                    if parent == BOOTSTRAP:
                        assert entry.dist == 0
                        continue
                    parent_entry = marks.get(*parent)
                    assert parent_entry is not None
                    assert parent_entry.dist + 1 == entry.dist


class TestComplexityShape:
    def test_only_viable_sources_get_buckets(self, labeled_cycle):
        result = rpq_nfa(labeled_cycle, "a . b")
        assert set(result.markings.sources()) == {0}

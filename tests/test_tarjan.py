"""Tests for the Tarjan batch substrate (paper Section 5.3, [43])."""

import networkx as nx
import pytest

from repro.graph import DiGraph
from repro.graph.generators import label_alphabet, uniform_random_graph
from repro.scc.tarjan import (
    EdgeKind,
    condensation_edges,
    is_strongly_connected,
    tarjan_scc,
    verify_rank_invariant,
)

ALPHABET = label_alphabet(5)


def nx_partition(graph: DiGraph) -> set[frozenset]:
    mirror = nx.DiGraph()
    mirror.add_nodes_from(graph.nodes())
    mirror.add_edges_from(graph.edges())
    return {frozenset(component) for component in nx.strongly_connected_components(mirror)}


class TestPartition:
    def test_single_cycle(self):
        g = DiGraph(labels={i: "x" for i in range(4)},
                    edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
        result = tarjan_scc(g)
        assert result.partition() == {frozenset({0, 1, 2, 3})}

    def test_dag_is_all_singletons(self):
        g = DiGraph(labels={i: "x" for i in range(4)},
                    edges=[(0, 1), (0, 2), (1, 3), (2, 3)])
        result = tarjan_scc(g)
        assert all(len(c) == 1 for c in result.components)
        assert len(result.components) == 4

    def test_two_cycles_bridge(self):
        g = DiGraph(labels={i: "x" for i in range(6)},
                    edges=[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (3, 4), (5, 0)])
        result = tarjan_scc(g)
        assert result.partition() == {
            frozenset({0, 1}),
            frozenset({2, 3}),
            frozenset({4}),
            frozenset({5}),
        }

    def test_empty_graph(self):
        assert tarjan_scc(DiGraph()).partition() == set()

    def test_self_loop(self):
        g = DiGraph(labels={0: "x"})
        g.add_edge(0, 0)
        result = tarjan_scc(g)
        assert result.partition() == {frozenset({0})}

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_networkx_on_random_graphs(self, seed):
        g = uniform_random_graph(60, 180, ALPHABET, seed=seed)
        assert tarjan_scc(g).partition() == nx_partition(g)

    def test_component_of_and_containing(self):
        g = DiGraph(labels={i: "x" for i in range(3)}, edges=[(0, 1), (1, 0), (1, 2)])
        result = tarjan_scc(g)
        assert result.component_containing(0) == frozenset({0, 1})
        assert result.component_of[2] != result.component_of[0]


class TestNumLowlink:
    def test_num_is_unique_discovery_order(self):
        g = uniform_random_graph(40, 100, ALPHABET, seed=3)
        result = tarjan_scc(g)
        values = sorted(result.num.values())
        assert values == list(range(len(values)))

    def test_root_has_num_equal_lowlink(self):
        g = uniform_random_graph(40, 100, ALPHABET, seed=4)
        result = tarjan_scc(g)
        for root in result.roots:
            assert result.num[root] == result.lowlink[root]

    def test_lowlink_at_most_num(self):
        g = uniform_random_graph(40, 120, ALPHABET, seed=5)
        result = tarjan_scc(g)
        assert all(result.lowlink[v] <= result.num[v] for v in result.num)

    def test_lowlink_points_inside_own_component(self):
        # lowlink of v equals num of some node in the same SCC.
        g = uniform_random_graph(40, 120, ALPHABET, seed=6)
        result = tarjan_scc(g)
        num_to_node = {num: node for node, num in result.num.items()}
        for node, low in result.lowlink.items():
            witness = num_to_node[low]
            assert result.component_of[witness] == result.component_of[node]


class TestEdgeClassification:
    def test_tree_arcs_form_forest(self):
        g = uniform_random_graph(50, 150, ALPHABET, seed=7)
        result = tarjan_scc(g)
        tree_targets = [e[1] for e, k in result.edge_kinds.items() if k is EdgeKind.TREE_ARC]
        assert len(tree_targets) == len(set(tree_targets))  # one parent each

    def test_every_edge_classified(self):
        g = uniform_random_graph(30, 90, ALPHABET, seed=8)
        result = tarjan_scc(g)
        assert set(result.edge_kinds) == set(g.edges())

    def test_frond_goes_to_smaller_num(self):
        g = uniform_random_graph(30, 90, ALPHABET, seed=9)
        result = tarjan_scc(g)
        for (source, target), kind in result.edge_kinds.items():
            if kind is EdgeKind.FROND:
                assert result.num[target] <= result.num[source]
            elif kind is EdgeKind.REVERSE_FROND:
                assert result.num[target] > result.num[source]
            elif kind is EdgeKind.CROSS_LINK:
                assert result.num[target] < result.num[source]

    def test_known_classification(self):
        # 0 -> 1 -> 2 -> 0 cycle plus chord 0 -> 2 examined after the path.
        g = DiGraph(labels={i: "x" for i in range(3)})
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 0)
        g.add_edge(0, 2)
        result = tarjan_scc(g)
        assert result.edge_kinds[(2, 0)] is EdgeKind.FROND
        kinds = {result.edge_kinds[(0, 1)], result.edge_kinds[(1, 2)]}
        # DFS order determines whether (0,2) is tree or reverse frond, but
        # the cycle path edges must include tree arcs.
        assert EdgeKind.TREE_ARC in kinds


class TestRanksAndCondensation:
    @pytest.mark.parametrize("seed", range(5))
    def test_emission_order_satisfies_rank_invariant(self, seed):
        g = uniform_random_graph(50, 160, ALPHABET, seed=seed)
        result = tarjan_scc(g)
        assert verify_rank_invariant(g, result)

    def test_condensation_counters(self):
        g = DiGraph(labels={i: "x" for i in range(4)},
                    edges=[(0, 1), (1, 0), (0, 2), (1, 2), (2, 3)])
        result = tarjan_scc(g)
        counters = condensation_edges(g, result)
        comp_01 = result.component_of[0]
        comp_2 = result.component_of[2]
        comp_3 = result.component_of[3]
        assert counters[(comp_01, comp_2)] == 2
        assert counters[(comp_2, comp_3)] == 1

    def test_restrict_to_ignores_outside_edges(self):
        g = DiGraph(labels={i: "x" for i in range(4)},
                    edges=[(0, 1), (1, 0), (1, 2), (2, 3), (3, 1)])
        # Restricted to {0, 1}, the path through 2-3 back to 1 is invisible.
        result = tarjan_scc(g, restrict_to=frozenset({0, 1}))
        assert result.partition() == {frozenset({0, 1})}
        result_single = tarjan_scc(g, restrict_to=frozenset({1, 2}))
        assert result_single.partition() == {frozenset({1}), frozenset({2})}

    def test_is_strongly_connected_helper(self):
        g = DiGraph(labels={i: "x" for i in range(3)}, edges=[(0, 1), (1, 0), (1, 2)])
        assert is_strongly_connected(g, frozenset({0, 1}))
        assert not is_strongly_connected(g, frozenset({0, 1, 2}))
        assert not is_strongly_connected(g, frozenset())

"""Dirty-set incremental snapshot tests: dirty tracking through the
routed fan-out, carry-forward of clean view sections (no re-serialization,
load-equivalent to a full save), incremental → load round-trips, the
auto-:class:`~repro.persist.SnapshotPolicy`, and the save→load→replay
property over incremental saves."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Delta, DiGraph, Engine, SnapshotPolicy, SnapshotStore, delete, insert
from repro.engine import AutosnapshotError, EngineError
from repro.iso import ISOIndex, Pattern
from repro.kws import KWSIndex, KWSQuery
from repro.kws.snapshot import extend_bound
from repro.persist.format import PersistFormatError, split_view_sections
from repro.rpq import RPQIndex
from repro.scc import SCCIndex

KWS_QUERY = KWSQuery(("a", "b"), bound=2)
RPQ_QUERY = "a . (b + c)* . c"
ISO_PATTERN = Pattern.from_edges({0: "a", 1: "b"}, [(0, 1)])


def sample_graph() -> DiGraph:
    return DiGraph(
        labels={1: "a", 2: "b", 3: "c", 4: "a", 5: "b", 6: "d", 7: "d"},
        edges=[(1, 2), (2, 3), (3, 1), (4, 5), (6, 7)],
    )


def four_view_engine(graph: DiGraph) -> Engine:
    engine = Engine(graph)
    engine.register("kws", lambda g, m: KWSIndex(g, KWS_QUERY, meter=m))
    engine.register("rpq", lambda g, m: RPQIndex(g, RPQ_QUERY, meter=m))
    engine.register("scc", lambda g, m: SCCIndex(g, meter=m))
    engine.register("iso", lambda g, m: ISOIndex(g, ISO_PATTERN, meter=m))
    return engine


def snapshot_spy(monkeypatch):
    """Patch every view class's snapshot() to record which kinds ran."""
    calls: list[str] = []
    for view_class in (KWSIndex, RPQIndex, SCCIndex, ISOIndex):
        original = view_class.snapshot

        def spy(self, _original=original):
            state = _original(self)
            calls.append(state.kind)
            return state

        monkeypatch.setattr(view_class, "snapshot", spy)
    return calls


class TestDirtyTracking:
    def test_views_start_dirty_and_save_cleans(self, tmp_path):
        engine = four_view_engine(sample_graph())
        assert engine.dirty_views() == frozenset(engine.names())
        SnapshotStore(tmp_path).save(engine)
        assert engine.dirty_views() == frozenset()

    def test_routed_batch_dirties_only_absorbing_views(self, tmp_path):
        engine = four_view_engine(sample_graph())
        SnapshotStore(tmp_path).save(engine)
        engine.apply(Delta([delete(6, 7)]))  # d→d: only SCC subscribes
        assert engine.dirty_views() == frozenset({"scc"})

    def test_rollback_dirties_through_the_same_path(self, tmp_path):
        engine = four_view_engine(sample_graph())
        mark = engine.checkpoint()
        engine.apply(Delta([delete(6, 7)]))
        SnapshotStore(tmp_path).save(engine)
        engine.rollback(mark)
        assert "scc" in engine.dirty_views()

    def test_out_of_band_view_mutation_trips_the_dirty_wire(self, tmp_path):
        """Regression: extend_bound mutates a view outside the fan-out;
        the meter tripwire must report it dirty so an incremental save
        re-serializes it instead of carrying the stale section."""
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path)
        store.save(engine)
        assert engine.dirty_views() == frozenset()
        extend_bound(engine["kws"], KWS_QUERY.bound + 2)
        assert "kws" in engine.dirty_views()
        store.save(engine, incremental=True)
        revived = store.load()
        assert revived["kws"].query.bound == KWS_QUERY.bound + 2
        assert revived["kws"].roots() == engine["kws"].roots()

    def test_mark_views_dirty_escape_hatch(self, tmp_path):
        engine = four_view_engine(sample_graph())
        SnapshotStore(tmp_path).save(engine)
        engine.mark_views_dirty(["iso"])
        assert "iso" in engine.dirty_views()
        with pytest.raises(EngineError, match="no view named"):
            engine.mark_views_dirty(["ghost"])

    def test_load_starts_clean_then_tail_dirties(self, tmp_path):
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path)
        store.save(engine)
        store.attach(engine)
        revived = store.load()
        assert revived.dirty_views() == frozenset()  # no tail to replay
        engine.apply(Delta([delete(6, 7)]))  # journaled after the save
        revived_with_tail = store.load()
        assert revived_with_tail.dirty_views() == frozenset({"scc"})


class TestIncrementalSave:
    def test_clean_sections_are_carried_not_reserialized(
        self, tmp_path, monkeypatch
    ):
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path)
        store.save(engine)
        store.attach(engine)
        engine.apply(Delta([delete(6, 7)]))  # dirties only scc
        calls = snapshot_spy(monkeypatch)
        store.save(engine, incremental=True)
        assert calls == ["scc"], f"expected only scc to re-serialize, got {calls}"

    def test_incremental_file_is_load_equivalent_to_full_save(self, tmp_path):
        """Since format v2 an incremental file is *not* byte-identical to
        a full save (the graph section accumulates %graphdiff chunks and
        carried view sections keep their original replay cursors); the
        contract is load-equivalence — both files recover sessions whose
        canonical full re-saves agree byte-for-byte."""
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path / "inc")
        store.attach(engine)
        store.save(engine)
        engine.apply(Delta([delete(6, 7), insert(6, 1)]))
        store.save(engine, incremental=True)
        from_incremental = store.load(attach_journal=False)
        store.save(engine)  # full rewrite of the identical state
        from_full = store.load(attach_journal=False)
        assert from_incremental.graph == from_full.graph
        probe_a = SnapshotStore(tmp_path / "probe-a")
        probe_b = SnapshotStore(tmp_path / "probe-b")
        probe_a.save(from_incremental)
        probe_b.save(from_full)
        assert (
            probe_a.snapshot_path.read_bytes() == probe_b.snapshot_path.read_bytes()
        )

    def test_incremental_load_round_trips_like_full(self, tmp_path):
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path)
        store.save(engine)
        store.attach(engine)
        engine.apply(Delta([delete(3, 1), insert(5, 4)]))
        engine.apply(Delta([insert(3, 5)]))
        store.save(engine, incremental=True)
        revived = store.load()
        assert revived.graph == engine.graph
        assert revived["kws"].roots() == engine["kws"].roots()
        assert revived["rpq"].matches == engine["rpq"].matches
        assert revived["scc"].components() == engine["scc"].components()
        assert revived["iso"].matches == engine["iso"].matches

    def test_incremental_without_previous_snapshot_is_a_full_save(
        self, tmp_path, monkeypatch
    ):
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path)
        calls = snapshot_spy(monkeypatch)
        store.save(engine, incremental=True)
        assert sorted(calls) == ["iso", "kws", "rpq", "scc"]
        assert store.load().graph == engine.graph

    def test_newly_registered_view_is_written_fresh(self, tmp_path):
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path)
        store.save(engine)
        engine.register(
            "scc2", lambda g, m: SCCIndex(g, meter=m), build="on_first_apply"
        )
        store.save(engine, incremental=True)  # materializes + serializes
        revived = store.load()
        assert revived["scc2"].components() == engine["scc"].components()

    def test_incremental_save_never_carries_from_a_stale_store(self, tmp_path):
        """Regression: the dirty set is relative to the engine's *last*
        save anywhere.  After saving to store A, an incremental save to
        store B (whose file predates A's) must re-serialize everything —
        carrying B's older sections would resurrect stale view state."""
        engine = four_view_engine(sample_graph())
        store_b = SnapshotStore(tmp_path / "b")
        store_b.save(engine)  # B holds the old state
        engine.apply(Delta([delete(3, 1)]))  # dirties kws/rpq/scc
        store_a = SnapshotStore(tmp_path / "a")
        store_a.save(engine)  # A captures the new state; dirty set clears
        store_b.save(engine, incremental=True)  # B's file is stale
        revived = store_b.load()
        assert revived["kws"].roots() == engine["kws"].roots()
        assert revived["scc"].components() == engine["scc"].components()
        # ... and the two stores now agree byte-for-byte.
        assert (
            store_b.snapshot_path.read_bytes() == store_a.snapshot_path.read_bytes()
        )

    def test_deregistered_view_drops_out_of_incremental_saves(self, tmp_path):
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path)
        store.save(engine)
        engine.deregister("iso")
        store.save(engine, incremental=True)
        assert "iso" not in store.load().names()


class TestSplitViewSections:
    def test_rejects_unversioned_text(self):
        with pytest.raises(PersistFormatError, match="missing"):
            split_view_sections(["%section view x kws\n", "%end\n"])

    def test_rejects_future_versions(self):
        with pytest.raises(PersistFormatError, match="unsupported"):
            split_view_sections(["%repro-snapshot 99\n", "%end\n"])

    def test_bodies_are_verbatim_lines(self, tmp_path):
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path)
        store.save(engine)
        with open(store.snapshot_path, encoding="utf-8") as stream:
            sections = split_view_sections(stream)
        assert set(sections) == set(engine.names())
        kind, body = sections["kws"]
        assert kind == "kws"
        assert body[0].startswith("%config")
        text = store.snapshot_path.read_text(encoding="utf-8")
        for line in body:
            assert line in text


class TestSnapshotPolicy:
    def test_needs_at_least_one_trigger(self):
        with pytest.raises(ValueError, match="at least one trigger"):
            SnapshotPolicy()

    def test_validates_trigger_values(self):
        with pytest.raises(ValueError, match="every_batches"):
            SnapshotPolicy(every_batches=0)
        with pytest.raises(ValueError, match="every_seconds"):
            SnapshotPolicy(every_seconds=-1.0)

    def test_every_batches_auto_snapshots(self, tmp_path):
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path)
        store.save(engine)
        policy = SnapshotPolicy(every_batches=2)
        store.attach(engine, policy=policy)
        engine.apply(Delta([delete(6, 7)]))
        assert policy.saves == 0
        engine.apply(Delta([insert(7, 6)]))
        assert policy.saves == 1
        assert engine.dirty_views() == frozenset()  # the save cleaned up
        engine.apply(Delta([delete(7, 6)]))
        engine.apply(Delta([insert(6, 7)]))
        assert policy.saves == 2

    def test_dirty_threshold_auto_snapshots(self, tmp_path):
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path)
        store.save(engine)
        policy = SnapshotPolicy(dirty_threshold=2)
        store.attach(engine, policy=policy)
        engine.apply(Delta([delete(6, 7)]))  # dirties scc only
        assert policy.saves == 0
        engine.apply(Delta([insert(6, 1)]))  # dirties kws/rpq too
        assert policy.saves == 1

    def test_every_seconds_auto_snapshots(self, tmp_path):
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path)
        store.save(engine)
        policy = SnapshotPolicy(every_seconds=0.0)  # due on every batch
        store.attach(engine, policy=policy)
        engine.apply(Delta([delete(6, 7)]))
        assert policy.saves == 1

    def test_hook_failure_raises_autosnapshot_error_with_report(self, tmp_path):
        """A failing snapshot write must not masquerade as a failed
        batch: the batch is applied and journaled, the report survives
        on the error, and the session stays usable."""
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path)
        store.save(engine)
        store.attach(engine, policy=SnapshotPolicy(every_batches=1))
        original_save = store.save
        store.save = lambda *a, **k: (_ for _ in ()).throw(OSError("disk full"))
        with pytest.raises(AutosnapshotError, match="after the batch") as info:
            engine.apply(Delta([delete(6, 7)]))
        report = info.value.report
        assert not engine.graph.has_edge(6, 7)  # the batch DID apply
        assert not report.skipped("scc")
        assert engine.applied_count == 1
        assert [entry.delta.updates for entry in store.log.entries()] == [
            report.delta.updates
        ]
        store.save = original_save
        engine.apply(Delta([insert(7, 6)]))  # next batch snapshots fine
        revived = store.load()
        assert revived.graph == engine.graph

    def test_auto_snapshot_is_recoverable_mid_stream(self, tmp_path):
        engine = four_view_engine(sample_graph())
        store = SnapshotStore(tmp_path)
        store.save(engine)
        store.attach(engine, policy=SnapshotPolicy(every_batches=1))
        engine.apply(Delta([delete(3, 1), insert(5, 4)]))
        engine.apply(Delta([insert(3, 5)]))
        revived = store.load()
        assert revived.graph == engine.graph
        assert revived["scc"].components() == engine["scc"].components()
        assert revived["kws"].roots() == engine["kws"].roots()


# ----------------------------------------------------------------------
# Property: a stream of batches interleaved with incremental saves always
# recovers to the live session's state.
# ----------------------------------------------------------------------


@st.composite
def stream_case(draw):
    size = draw(st.integers(min_value=3, max_value=8))
    labels = {node: draw(st.sampled_from(["a", "b", "c", "d"])) for node in range(size)}
    graph = DiGraph(labels=labels)
    possible = [(s, t) for s in range(size) for t in range(size) if s != t]
    for source, target in draw(
        st.lists(st.sampled_from(possible), unique=True, min_size=2, max_size=2 * size)
    ):
        graph.add_edge(source, target)
    batches = []
    scratch = graph.copy()
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        edges = list(scratch.edges())
        nodes = list(scratch.nodes())
        non_edges = [
            (s, t)
            for s in nodes
            for t in nodes
            if s != t and not scratch.has_edge(s, t)
        ]
        updates = [
            delete(*edge)
            for edge in draw(
                st.lists(st.sampled_from(edges), unique=True, max_size=2)
                if edges
                else st.just([])
            )
        ]
        updates += [
            insert(*edge)
            for edge in draw(
                st.lists(st.sampled_from(non_edges), unique=True, max_size=2)
                if non_edges
                else st.just([])
            )
        ]
        if not updates:
            continue
        batch = Delta(updates)
        batch.apply_to(scratch)
        batches.append(batch)
    save_after = draw(
        st.lists(st.booleans(), min_size=len(batches), max_size=len(batches))
    )
    return graph, batches, save_after


@settings(max_examples=25, deadline=None)
@given(stream_case())
def test_incremental_save_load_replay_property(tmp_path_factory, case):
    graph, batches, save_after = case
    root = tmp_path_factory.mktemp("inc-store")
    engine = four_view_engine(graph.copy())
    store = SnapshotStore(root)
    store.save(engine)
    store.attach(engine)
    for batch, save_now in zip(batches, save_after):
        engine.apply(batch)
        if save_now:
            store.save(engine, incremental=True)
    revived = store.load()
    assert revived.graph == engine.graph
    assert revived["kws"].roots() == engine["kws"].roots()
    assert revived["rpq"].matches == engine["rpq"].matches
    assert revived["scc"].components() == engine["scc"].components()
    assert revived["iso"].matches == engine["iso"].matches

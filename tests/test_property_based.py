"""Hypothesis property tests: the defining incremental equation
Q(G ⊕ ΔG) = Q(G) ⊕ ΔO for all four query classes, plus core data-structure
invariants, over generated graphs and update batches."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delta import Delta, delete, insert
from repro.graph import DiGraph

LABELS = ["a", "b", "c"]
MAX_NODES = 12


@st.composite
def graphs(draw) -> DiGraph:
    """Small labeled digraphs (dense enough for interesting structure)."""
    size = draw(st.integers(min_value=2, max_value=MAX_NODES))
    labels = {
        node: draw(st.sampled_from(LABELS)) for node in range(size)
    }
    graph = DiGraph(labels=labels)
    possible = [(s, t) for s in range(size) for t in range(size) if s != t]
    chosen = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=3 * size)
    )
    for source, target in chosen:
        graph.add_edge(source, target)
    return graph


@st.composite
def graph_with_delta(draw):
    """A graph plus an applicable normalized batch update."""
    graph = draw(graphs())
    nodes = list(graph.nodes())
    edges = list(graph.edges())
    non_edges = [
        (s, t)
        for s in nodes
        for t in nodes
        if s != t and not graph.has_edge(s, t)
    ]
    deletions = draw(
        st.lists(st.sampled_from(edges), unique=True, max_size=4)
        if edges
        else st.just([])
    )
    insertions = draw(
        st.lists(st.sampled_from(non_edges), unique=True, max_size=4)
        if non_edges
        else st.just([])
    )
    updates = [delete(*edge) for edge in deletions]
    updates += [insert(*edge) for edge in insertions]
    order = draw(st.permutations(updates))
    return graph, Delta(list(order))


@settings(max_examples=40, deadline=None)
@given(graph_with_delta())
def test_scc_incremental_equation(case):
    from repro.scc import SCCIndex, tarjan_scc

    graph, delta = case
    index = SCCIndex(graph.copy())
    before = index.components()
    added, removed = index.apply(delta)
    assert index.components() == tarjan_scc(index.graph).partition()
    assert (before - removed) | added == index.components()
    assert removed <= before
    assert not (added & before)
    index.check_consistency()


@settings(max_examples=40, deadline=None)
@given(graph_with_delta())
def test_kws_incremental_equation(case):
    from repro.kws import KWSIndex, KWSQuery, compute_kdist, distance_profile, verify_kdist

    graph, delta = case
    query = KWSQuery(("a", "b"), 2)
    index = KWSIndex(graph.copy(), query)
    roots_before = set(index.roots())
    delta_o = index.apply(delta)
    verify_kdist(index.graph, index.kdist)
    assert index.profile() == distance_profile(compute_kdist(index.graph, query))
    assert (roots_before - set(delta_o.removed)) | set(delta_o.added) == set(
        index.roots()
    )


@settings(max_examples=30, deadline=None)
@given(graph_with_delta())
def test_rpq_incremental_equation(case):
    from repro.rpq import RPQIndex, matches_only, verify_markings

    graph, delta = case
    query = "a . (b + c)* . c"
    index = RPQIndex(graph.copy(), query)
    before = set(index.matches)
    delta_o = index.apply(delta)
    assert index.matches == matches_only(index.graph, query)
    assert (before - set(delta_o.removed)) | set(delta_o.added) == index.matches
    verify_markings(index.graph, query, index.markings)


@settings(max_examples=30, deadline=None)
@given(graph_with_delta())
def test_iso_incremental_equation(case):
    from repro.iso import ISOIndex, Pattern, vf2_matches

    graph, delta = case
    pattern = Pattern.from_edges({0: "a", 1: "b"}, [(0, 1)])
    index = ISOIndex(graph.copy(), pattern)
    before = set(index.matches)
    delta_o = index.apply(delta)
    assert index.matches == vf2_matches(index.graph, pattern)
    assert (before - set(delta_o.removed)) | set(delta_o.added) == index.matches
    index.check_consistency()


@settings(max_examples=40, deadline=None)
@given(graph_with_delta())
def test_ssrp_incremental_equation(case):
    from repro.core.ssrp import ReachabilityIndex, reachable_from

    graph, delta = case
    source = next(iter(graph.nodes()))
    index = ReachabilityIndex(graph.copy(), source)
    before = set(index.reached)
    gained, lost = index.apply(delta)
    assert index.reached == reachable_from(index.graph, source)
    assert (before - lost) | gained == index.reached


@settings(max_examples=50, deadline=None)
@given(graph_with_delta())
def test_delta_invert_roundtrip(case):
    graph, delta = case
    patched = delta.applied(graph)
    restored = delta.inverted().applied(patched)
    assert restored == graph


@settings(max_examples=50, deadline=None)
@given(graphs())
def test_digraph_adjacency_symmetry(graph):
    for source, target in graph.edges():
        assert source in set(graph.predecessors(target))
        assert target in set(graph.successors(source))
    assert sum(graph.out_degree(v) for v in graph.nodes()) == graph.num_edges
    assert sum(graph.in_degree(v) for v in graph.nodes()) == graph.num_edges


@settings(max_examples=50, deadline=None)
@given(graphs())
def test_reverse_is_involution(graph):
    assert graph.reverse().reverse() == graph


@settings(max_examples=40, deadline=None)
@given(graph_with_delta())
def test_normalized_idempotent(case):
    _, delta = case
    once = delta.normalized()
    assert once.normalized().edges() == once.edges()
    assert once.is_normalized()


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_condensation_rank_invariant_from_scratch(graph):
    from repro.scc import Condensation, tarjan_scc

    result = tarjan_scc(graph)
    cond = Condensation.from_tarjan(graph, result)
    cond.check_against(graph)

"""Regression tests for the SSRP deletion repair (spanning-tree variant).

The naive "some predecessor is reached" fast path is unsound when the
predecessor's own reachability depends on the deleted edge (a cycle island
downstream of the deletion).  These tests pin the fix.
"""

from repro.core.delta import Delta, delete, insert
from repro.core.ssrp import ReachabilityIndex, bfs_tree, reachable_from
from repro.graph import DiGraph


class TestCycleIslandRegression:
    def test_downstream_cycle_is_lost(self):
        # s -> x -> y -> p, p -> y: deleting (x, y) strands {y, p} even
        # though y still has the "reached" predecessor p.
        g = DiGraph(
            labels={n: "n" for n in "sxyp"},
            edges=[("s", "x"), ("x", "y"), ("y", "p"), ("p", "y")],
        )
        index = ReachabilityIndex(g, "s")
        gained, lost = index.apply(Delta([delete("x", "y")]))
        assert lost == {"y", "p"}
        assert gained == set()
        assert index.reached == reachable_from(index.graph, "s") == {"s", "x"}

    def test_island_regained_by_insertion(self):
        g = DiGraph(
            labels={n: "n" for n in "sxyp"},
            edges=[("s", "x"), ("x", "y"), ("y", "p"), ("p", "y")],
        )
        index = ReachabilityIndex(g, "s")
        index.apply(Delta([delete("x", "y")]))
        gained, lost = index.apply(Delta([insert("s", "p")]))
        assert gained == {"y", "p"}
        assert index.reached == {"s", "x", "y", "p"}

    def test_long_random_mixed_sequences(self):
        from repro.graph.generators import label_alphabet, uniform_random_graph
        from repro.graph.updates import random_delta

        for seed in range(10):
            graph = uniform_random_graph(30, 80, label_alphabet(3), seed=seed)
            index = ReachabilityIndex(graph.copy(), source=0)
            delta = random_delta(graph, 40, seed=seed)
            index.apply(delta)
            assert index.reached == reachable_from(index.graph, 0)


class TestSpanningTree:
    def test_tree_parents_are_edges(self):
        from repro.graph.generators import label_alphabet, uniform_random_graph

        graph = uniform_random_graph(40, 120, label_alphabet(3), seed=5)
        tree = bfs_tree(graph, 0)
        for node, parent in tree.items():
            if parent is not None:
                assert graph.has_edge(parent, node)

    def test_non_tree_deletion_is_constant_time(self):
        from repro.core.cost import CostMeter

        # s -> a -> t and s -> t: (s, t) wins the BFS tree (depth 1), so
        # deleting (a, t) is a non-tree deletion.
        g = DiGraph(labels={n: "n" for n in "sat"},
                    edges=[("s", "a"), ("a", "t"), ("s", "t")])
        index = ReachabilityIndex(g, "s")
        assert index.parent["t"] == "s"
        meter = CostMeter()
        index.meter = meter
        index.apply(Delta([delete("a", "t")]))
        assert index.reached == {"s", "a", "t"}
        assert meter.node_visits <= 1  # the O(1) fast path

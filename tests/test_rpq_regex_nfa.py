"""Tests for the regex AST/parser and Glushkov NFA, cross-checked against
Python's re module on sampled words."""

import itertools
import re as stdlib_re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpq.nfa import glushkov
from repro.rpq.regex import (
    Concat,
    Epsilon,
    RegexSyntaxError,
    Star,
    Sym,
    Union,
    nullable,
    parse,
)


class TestParser:
    def test_single_label(self):
        assert parse("abc") == Sym("abc")

    def test_concat_and_union_precedence(self):
        # '.' binds tighter than '+'
        assert parse("a . b + c") == Union(Concat(Sym("a"), Sym("b")), Sym("c"))

    def test_star_binds_tightest(self):
        assert parse("a . b*") == Concat(Sym("a"), Star(Sym("b")))

    def test_parentheses(self):
        assert parse("(a + b) . c") == Concat(Union(Sym("a"), Sym("b")), Sym("c"))

    def test_juxtaposition_concatenates(self):
        assert parse("a b") == Concat(Sym("a"), Sym("b"))

    def test_epsilon(self):
        assert parse("eps + a") == Union(Epsilon(), Sym("a"))

    def test_paper_example4_query(self):
        query = parse("c . (b . a + c)* . c")
        assert query.size == 5  # occurrences: c, b, a, c, c
        assert query.labels() == {"a", "b", "c"}

    def test_double_star(self):
        assert parse("a**") == Star(Star(Sym("a")))

    def test_errors(self):
        for bad in ["", "a +", "(a", "a)", "*a", "a . . b", "a %"]:
            with pytest.raises(RegexSyntaxError):
                parse(bad)

    def test_roundtrip_via_str(self):
        for text in ["a", "a . b", "a + b", "(a + b)* . c", "c . (b . a + c)* . c"]:
            query = parse(text)
            assert parse(str(query)) == query


class TestSizeAndNullable:
    def test_size_counts_label_occurrences(self):
        assert parse("a . a . a").size == 3
        assert parse("(a + b)*").size == 2
        assert parse("eps").size == 0

    def test_nullable(self):
        assert nullable(parse("a*"))
        assert nullable(parse("eps"))
        assert not nullable(parse("a"))
        assert nullable(parse("a* . b*"))
        assert not nullable(parse("a* . b"))
        assert nullable(parse("a + b*"))


class TestGlushkov:
    def test_state_count_is_size_plus_one(self):
        for text in ["a", "a . b", "(a + b)* . c", "c . (b . a + c)* . c"]:
            query = parse(text)
            assert glushkov(query).num_states == query.size + 1

    def test_initial_state_has_no_incoming(self):
        nfa = glushkov(parse("(a + b)* . a . b"))
        for by_label in nfa.transitions.values():
            for targets in by_label.values():
                assert 0 not in targets

    def test_accepts_simple(self):
        nfa = glushkov(parse("a . b"))
        assert nfa.accepts(("a", "b"))
        assert not nfa.accepts(("a",))
        assert not nfa.accepts(("a", "b", "b"))
        assert not nfa.accepts(())

    def test_accepts_nullable(self):
        nfa = glushkov(parse("a*"))
        assert nfa.accepts(())
        assert nfa.accepts(("a", "a", "a"))
        assert not nfa.accepts(("b",))

    def test_start_states_by_label(self):
        nfa = glushkov(parse("a . b + c"))
        assert nfa.start_states("a")
        assert nfa.start_states("c")
        assert not nfa.start_states("b")

    def test_paper_example4_words(self):
        # Q = c · (b·a + c)* · c
        nfa = glushkov(parse("c . (b . a + c)* . c"))
        assert nfa.accepts(("c", "c"))
        assert nfa.accepts(("c", "b", "a", "c"))
        assert nfa.accepts(("c", "c", "b", "a", "c"))
        assert nfa.accepts(("c", "b", "a", "c", "c"))
        assert not nfa.accepts(("c",))
        assert not nfa.accepts(("c", "b", "c"))
        assert not nfa.accepts(("b", "a", "c"))


# -- randomized cross-check against Python's re ------------------------------

_LABELS = "abc"


def regex_asts(max_depth: int = 4):
    leaf = st.sampled_from([Sym("a"), Sym("b"), Sym("c"), Epsilon()])
    return st.recursive(
        leaf,
        lambda children: st.one_of(
            st.tuples(children, children).map(lambda lr: Concat(*lr)),
            st.tuples(children, children).map(lambda lr: Union(*lr)),
            children.map(Star),
        ),
        max_leaves=8,
    )


def to_python_regex(query) -> str:
    if isinstance(query, Epsilon):
        return "(?:)"
    if isinstance(query, Sym):
        return stdlib_re.escape(query.label)
    if isinstance(query, Concat):
        return f"(?:{to_python_regex(query.left)})(?:{to_python_regex(query.right)})"
    if isinstance(query, Union):
        return f"(?:{to_python_regex(query.left)}|{to_python_regex(query.right)})"
    if isinstance(query, Star):
        return f"(?:{to_python_regex(query.child)})*"
    raise TypeError(query)


@settings(max_examples=60, deadline=None)
@given(regex_asts())
def test_nfa_agrees_with_stdlib_re(query):
    nfa = glushkov(query)
    pattern = stdlib_re.compile(to_python_regex(query) + r"\Z")
    for length in range(0, 5):
        for word in itertools.product(_LABELS, repeat=length):
            expected = pattern.match("".join(word)) is not None
            assert nfa.accepts(word) == expected, (query, word)

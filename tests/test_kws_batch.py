"""Tests for the batch KWS substrate: kdist computation, match trees,
validation against networkx shortest paths."""

import networkx as nx
import pytest

from repro.graph import DiGraph
from repro.graph.generators import label_alphabet, uniform_random_graph
from repro.kws import (
    KDistEntry,
    KWSQuery,
    all_matches,
    batch_kws,
    compute_kdist,
    distance_profile,
    follow_path,
    match_at,
    verify_kdist,
)

ALPHABET = label_alphabet(6)


@pytest.fixture
def small() -> DiGraph:
    #  0(a) -> 1(b) -> 2(c)
    #  0     -> 3(b) -> 4(a)
    #  2 -> 4
    g = DiGraph(labels={0: "a", 1: "b", 2: "c", 3: "b", 4: "a"})
    for edge in [(0, 1), (1, 2), (0, 3), (3, 4), (2, 4)]:
        g.add_edge(*edge)
    return g


class TestKWSQuery:
    def test_validation(self):
        with pytest.raises(ValueError):
            KWSQuery((), 2)
        with pytest.raises(ValueError):
            KWSQuery(("a", "a"), 2)
        with pytest.raises(ValueError):
            KWSQuery(("a",), -1)

    def test_with_bound(self):
        q = KWSQuery(("a", "b"), 2)
        assert q.with_bound(5).bound == 5
        assert q.m == 2


class TestKDistEntry:
    def test_validation(self):
        with pytest.raises(ValueError):
            KDistEntry(-1, None)
        with pytest.raises(ValueError):
            KDistEntry(0, "x")
        with pytest.raises(ValueError):
            KDistEntry(2, None)


class TestComputeKdist:
    def test_zero_distance_for_matching_label(self, small):
        index = compute_kdist(small, KWSQuery(("a",), 3))
        assert index.get(0, "a") == KDistEntry(0, None)
        assert index.get(4, "a") == KDistEntry(0, None)

    def test_distances(self, small):
        index = compute_kdist(small, KWSQuery(("a", "c"), 3))
        assert index.dist(1, "a") == 2  # 1 -> 2 -> 4
        assert index.dist(3, "a") == 1
        assert index.dist(0, "c") == 2  # 0 -> 1 -> 2
        assert index.dist(3, "c") is None  # unreachable

    def test_bound_cuts_entries(self, small):
        index = compute_kdist(small, KWSQuery(("c",), 1))
        assert index.dist(0, "c") is None
        assert index.dist(1, "c") == 1

    def test_next_tie_break_is_smallest(self):
        # 0 -> 1(a) and 0 -> 2(a): both dist 1, next must be node 1.
        g = DiGraph(labels={0: "x", 1: "a", 2: "a"}, edges=[(0, 1), (0, 2)])
        index = compute_kdist(g, KWSQuery(("a",), 2))
        assert index.get(0, "a") == KDistEntry(1, 1)

    def test_matches_networkx_distances(self):
        graph = uniform_random_graph(80, 250, ALPHABET, seed=5)
        keyword = ALPHABET[0]
        bound = 3
        index = compute_kdist(graph, KWSQuery((keyword,), bound))
        mirror = nx.DiGraph()
        mirror.add_nodes_from(graph.nodes())
        mirror.add_edges_from(graph.edges())
        sources = [v for v in graph.nodes() if graph.label(v) == keyword]
        expected = {}
        for node in graph.nodes():
            best = None
            for source in sources:
                try:
                    length = nx.shortest_path_length(mirror, node, source)
                except nx.NetworkXNoPath:
                    continue
                best = length if best is None else min(best, length)
            if best is not None and best <= bound:
                expected[node] = best
        actual = {node: entry.dist for node, entry in index.entries(keyword).items()}
        assert actual == expected

    def test_verify_kdist_accepts_fresh(self, small):
        index = compute_kdist(small, KWSQuery(("a", "b"), 2))
        verify_kdist(small, index)


class TestMatches:
    def test_match_requires_all_keywords(self, small):
        index = compute_kdist(small, KWSQuery(("a", "c"), 2))
        assert match_at(index, 3) is None  # no c within 2
        match = match_at(index, 0)
        assert match is not None
        assert match.distances() == {"a": 0, "c": 2}

    def test_paths_follow_next_chain(self, small):
        index = compute_kdist(small, KWSQuery(("c",), 3))
        assert follow_path(index, 0, "c") == (0, 1, 2)

    def test_all_matches_roots(self, small):
        query = KWSQuery(("a", "b"), 2)
        matches = all_matches(compute_kdist(small, query))
        # roots need both an a and a b within 2 hops; node 2 has no path
        # to any b node (its only successor 4 is a sink), node 4 is a sink.
        assert set(matches) == {0, 1, 3}

    def test_match_weight_and_edges(self, small):
        index = compute_kdist(small, KWSQuery(("a", "c"), 2))
        match = match_at(index, 0)
        assert match.weight == 2
        assert match.edges() == {(0, 1), (1, 2)}
        assert match.nodes() == {0, 1, 2}

    def test_batch_kws_entrypoint(self, small):
        matches = batch_kws(small, KWSQuery(("a",), 1))
        assert set(matches) == {0, 2, 3, 4}

    def test_distance_profile(self, small):
        index = compute_kdist(small, KWSQuery(("a", "b"), 2))
        profile = distance_profile(index)
        assert profile[1] == {"a": 2, "b": 0}

    def test_trees_are_minimal_weight(self):
        # Exhaustive check on a random graph: every root's tree weight
        # equals the sum of true shortest distances.
        graph = uniform_random_graph(40, 140, ALPHABET, seed=9)
        query = KWSQuery((ALPHABET[0], ALPHABET[1]), 3)
        index = compute_kdist(graph, query)
        for root, match in all_matches(index).items():
            for keyword, path in match.paths.items():
                assert graph.label(path[-1]) == keyword
                for a, b in zip(path, path[1:]):
                    assert graph.has_edge(a, b)
                assert index.dist(root, keyword) == len(path) - 1

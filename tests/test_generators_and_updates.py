"""Tests for synthetic graph generators and update workloads."""

import pytest

from repro.core.delta import Delta
from repro.graph.generators import (
    cycle_graph,
    label_alphabet,
    layered_dag,
    planted_scc_graph,
    power_law_graph,
    uniform_random_graph,
)
from repro.graph.updates import (
    WorkloadError,
    delta_fraction,
    random_delta,
    unit_delete_workload,
    unit_insert_workload,
)

ALPHABET = label_alphabet(10)


class TestAlphabet:
    def test_size_and_uniqueness(self):
        symbols = label_alphabet(100)
        assert len(symbols) == 100
        assert len(set(symbols)) == 100

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            label_alphabet(0)


class TestUniformRandomGraph:
    def test_sizes(self):
        g = uniform_random_graph(50, 120, ALPHABET, seed=1)
        assert g.num_nodes == 50
        assert g.num_edges == 120

    def test_no_self_loops(self):
        g = uniform_random_graph(30, 100, ALPHABET, seed=2)
        assert all(s != t for s, t in g.edges())

    def test_deterministic_under_seed(self):
        a = uniform_random_graph(20, 40, ALPHABET, seed=7)
        b = uniform_random_graph(20, 40, ALPHABET, seed=7)
        assert a == b

    def test_seed_changes_graph(self):
        a = uniform_random_graph(20, 40, ALPHABET, seed=7)
        b = uniform_random_graph(20, 40, ALPHABET, seed=8)
        assert a != b

    def test_too_many_edges(self):
        with pytest.raises(ValueError):
            uniform_random_graph(3, 7, ALPHABET)

    def test_labels_from_alphabet(self):
        g = uniform_random_graph(25, 50, ALPHABET, seed=3)
        assert {g.label(v) for v in g.nodes()} <= set(ALPHABET)

    def test_label_skew_biases_frequencies(self):
        g = uniform_random_graph(500, 500, ALPHABET, seed=3, label_skew=2.0)
        from repro.graph.stats import label_histogram

        histogram = label_histogram(g)
        assert histogram[ALPHABET[0]] > histogram.get(ALPHABET[-1], 0)


class TestPowerLawGraph:
    def test_sizes(self):
        g = power_law_graph(100, 300, ALPHABET, seed=1)
        assert g.num_nodes == 100
        assert g.num_edges == 300

    def test_in_degree_skew(self):
        g = power_law_graph(300, 1500, ALPHABET, seed=4)
        degrees = sorted((g.in_degree(v) for v in g.nodes()), reverse=True)
        # hub inequality: the top node dominates the median.
        assert degrees[0] >= 4 * max(1, degrees[len(degrees) // 2])

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            power_law_graph(1, 0, ALPHABET)


class TestPlantedScc:
    def test_giant_component_exists(self):
        g = planted_scc_graph(200, 800, ALPHABET, giant_fraction=0.7, seed=5)
        from repro.scc.tarjan import tarjan_scc

        components = tarjan_scc(g).components
        largest = max(len(c) for c in components)
        assert largest >= 0.7 * 200

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            planted_scc_graph(10, 30, ALPHABET, giant_fraction=0.0)

    def test_insufficient_edges(self):
        with pytest.raises(ValueError):
            planted_scc_graph(100, 10, ALPHABET, giant_fraction=0.9)


class TestOtherShapes:
    def test_layered_dag_is_acyclic(self):
        g = layered_dag(5, 4, ALPHABET, seed=6, inter_layer_prob=0.5)
        from repro.scc.tarjan import tarjan_scc

        assert all(len(c) == 1 for c in tarjan_scc(g).components)

    def test_cycle_graph(self):
        g = cycle_graph(5, label="x")
        assert g.num_edges == 5
        assert all(g.label(v) == "x" for v in g.nodes())


class TestRandomDelta:
    @pytest.fixture
    def base(self):
        return uniform_random_graph(60, 200, ALPHABET, seed=11)

    def test_size_and_ratio(self, base):
        delta = random_delta(base, 40, rho=1.0, seed=1)
        assert len(delta) == 40
        assert len(delta.insertions) == 20
        assert len(delta.deletions) == 20

    def test_rho_skews_mixture(self, base):
        delta = random_delta(base, 40, rho=3.0, seed=1)
        assert len(delta.insertions) == 30
        assert len(delta.deletions) == 10

    def test_applicable_in_order(self, base):
        delta = random_delta(base, 60, seed=2)
        patched = delta.applied(base)  # must not raise
        assert patched.num_edges == base.num_edges  # rho=1 keeps |E|

    def test_normalized(self, base):
        delta = random_delta(base, 80, seed=3)
        assert delta.is_normalized()

    def test_deterministic(self, base):
        a = random_delta(base, 30, seed=9)
        b = random_delta(base, 30, seed=9)
        assert [u.edge for u in a] == [u.edge for u in b]

    def test_new_nodes(self, base):
        delta = random_delta(base, 20, rho=1e9, seed=4, new_node_fraction=1.0)
        patched = delta.applied(base)
        assert patched.num_nodes > base.num_nodes

    def test_too_many_deletions(self, base):
        with pytest.raises(WorkloadError):
            random_delta(base, 10 * base.num_edges, rho=0.0, seed=5)

    def test_invalid_args(self, base):
        with pytest.raises(ValueError):
            random_delta(base, -1)
        with pytest.raises(ValueError):
            random_delta(base, 1, rho=-0.5)
        with pytest.raises(ValueError):
            random_delta(base, 1, new_node_fraction=2.0)


class TestWorkloadHelpers:
    @pytest.fixture
    def base(self):
        return uniform_random_graph(50, 150, ALPHABET, seed=21)

    def test_delta_fraction_size(self, base):
        delta = delta_fraction(base, 0.10, seed=1)
        assert len(delta) == round(0.10 * base.num_edges)

    def test_delta_fraction_bounds(self, base):
        with pytest.raises(ValueError):
            delta_fraction(base, 1.5)

    def test_unit_insert_workload(self, base):
        units = unit_insert_workload(base, 5, seed=2)
        assert len(units) == 5
        assert all(len(u) == 1 and u[0].is_insert for u in units)
        for unit in units:  # each applies independently to G
            unit.applied(base)

    def test_unit_delete_workload(self, base):
        units = unit_delete_workload(base, 5, seed=3)
        assert all(len(u) == 1 and u[0].is_delete for u in units)
        for unit in units:
            unit.applied(base)

    def test_unit_delete_workload_exhausted(self, base):
        with pytest.raises(WorkloadError):
            unit_delete_workload(base, base.num_edges + 1)

"""Tests for plain-text graph/delta serialization."""

import io

import pytest

from repro.core.delta import Delta, delete, insert
from repro.graph import DiGraph
from repro.graph.generators import label_alphabet, uniform_random_graph
from repro.graph.io import (
    FormatError,
    graph_to_string,
    read_delta,
    read_graph,
    write_delta,
    write_graph,
)


@pytest.fixture
def sample() -> DiGraph:
    return DiGraph(
        labels={1: "a", 2: "b", "x": "c"},
        edges=[(1, 2), (2, "x")],
    )


class TestGraphRoundtrip:
    def test_stream_roundtrip(self, sample):
        buffer = io.StringIO()
        write_graph(sample, buffer)
        buffer.seek(0)
        assert read_graph(buffer) == sample

    def test_file_roundtrip(self, sample, tmp_path):
        path = tmp_path / "graph.txt"
        write_graph(sample, path)
        assert read_graph(path) == sample

    def test_integers_stay_integers(self, sample):
        buffer = io.StringIO()
        write_graph(sample, buffer)
        buffer.seek(0)
        loaded = read_graph(buffer)
        assert 1 in loaded and "x" in loaded

    def test_random_graph_roundtrip(self):
        graph = uniform_random_graph(40, 120, label_alphabet(5), seed=3)
        buffer = io.StringIO()
        write_graph(graph, buffer)
        buffer.seek(0)
        assert read_graph(buffer) == graph

    def test_graph_to_string_contains_counts(self, sample):
        text = graph_to_string(sample)
        assert "|V|=3" in text and "|E|=2" in text

    def test_comments_and_blanks_ignored(self):
        text = "# hello\n\nn 1 a\nn 2 b\ne 1 2\n"
        graph = read_graph(io.StringIO(text))
        assert graph.num_nodes == 2 and graph.has_edge(1, 2)

    def test_malformed_records(self):
        with pytest.raises(FormatError):
            read_graph(io.StringIO("n\n"))
        with pytest.raises(FormatError):
            read_graph(io.StringIO("e 1\n"))
        with pytest.raises(FormatError):
            read_graph(io.StringIO("z 1 2\n"))


class TestDeltaRoundtrip:
    def test_roundtrip(self):
        delta = Delta([
            insert(1, 2, source_label="a", target_label="b"),
            delete(2, 3),
        ])
        buffer = io.StringIO()
        write_delta(delta, buffer)
        buffer.seek(0)
        loaded = read_delta(buffer)
        assert [u.kind for u in loaded] == [u.kind for u in delta]
        assert [u.edge for u in loaded] == [u.edge for u in delta]
        assert loaded[0].target_label == "b"

    def test_file_roundtrip(self, tmp_path):
        delta = Delta([insert(1, 2), delete(3, 4)])
        path = tmp_path / "delta.txt"
        write_delta(delta, path)
        loaded = read_delta(path)
        assert [u.edge for u in loaded] == [(1, 2), (3, 4)]

    def test_malformed_records(self):
        with pytest.raises(FormatError):
            read_delta(io.StringIO("+ 1\n"))
        with pytest.raises(FormatError):
            read_delta(io.StringIO("- 1 2 3\n"))
        with pytest.raises(FormatError):
            read_delta(io.StringIO("? 1 2\n"))

    def test_applies_after_roundtrip(self):
        graph = uniform_random_graph(30, 80, label_alphabet(4), seed=9)
        from repro.graph.updates import random_delta

        delta = random_delta(graph, 20, seed=10)
        buffer = io.StringIO()
        write_delta(delta, buffer)
        buffer.seek(0)
        loaded = read_delta(buffer)
        assert loaded.applied(graph).num_edges == delta.applied(graph).num_edges

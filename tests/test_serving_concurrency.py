"""Serving-layer torture test: N reader sessions under a live writer.

The MVCC contract under real concurrency: a writer thread streams
seeded batches through :meth:`Repository.apply` while 8+ reader threads
open sessions, read every view several times with sleeps in between,
and check each answer against a *per-generation oracle* computed on an
independent shadow graph (from-scratch BLINKS/NFA/Tarjan/VF2, never the
engine's own views).  Two properties fall out:

* **No torn reads** — every read through one session must equal the
  oracle at the session's single pinned generation, across all four
  views and across time; a reader that ever saw a mix of generation k
  and k+1 state fails the oracle comparison.
* **Linearizability of admission** — a session opened after the writer
  published generation k pins a generation ≥ k, so a read admitted
  after batch k reflects batch k.

The test honors ``REPRO_ENGINE_EXECUTOR``, so the CI matrix exercises
the serving layer over serial, threaded, and process-backed fan-out.
"""

import random
import threading
import time

import pytest

from repro import DiGraph, Engine, Repository
from repro.iso import ISOIndex, Pattern, vf2_matches
from repro.kws import KWSIndex, KWSQuery, batch_kws
from repro.rpq import RPQIndex, matches_only
from repro.scc import SCCIndex, tarjan_scc

READERS = 10
BATCHES = 30
LABELS = ["a", "b", "c", "d"]

KWS_QUERY = KWSQuery(("a", "b"), bound=2)
RPQ_QUERY = "a . (b + c)* . c"
ISO_PATTERN = Pattern.from_edges({0: "a", 1: "b"}, [(0, 1)])

#: The served surface the oracle covers: (view, query) pairs.
SURFACE = (
    ("kws", "roots"),
    ("rpq", "matches"),
    ("scc", "components"),
    ("iso", "matches"),
)


def four_view_engine(graph):
    engine = Engine(graph)
    engine.register("kws", lambda g, m: KWSIndex(g, KWS_QUERY, meter=m))
    engine.register("rpq", lambda g, m: RPQIndex(g, RPQ_QUERY, meter=m))
    engine.register("scc", lambda g, m: SCCIndex(g, meter=m))
    engine.register("iso", lambda g, m: ISOIndex(g, ISO_PATTERN, meter=m))
    return engine


def scratch_answers(graph):
    """From-scratch recomputation of the whole served surface."""
    return {
        ("kws", "roots"): frozenset(batch_kws(graph, KWS_QUERY)),
        ("rpq", "matches"): frozenset(matches_only(graph, RPQ_QUERY)),
        ("scc", "components"): frozenset(tarjan_scc(graph).partition()),
        ("iso", "matches"): frozenset(vf2_matches(graph, ISO_PATTERN)),
    }


def random_graph(rng):
    size = rng.randint(6, 9)
    graph = DiGraph(labels={node: rng.choice(LABELS) for node in range(size)})
    pairs = [(s, t) for s in range(size) for t in range(size) if s != t]
    for edge in rng.sample(pairs, k=min(len(pairs), 2 * size)):
        graph.add_edge(*edge)
    return graph


def random_batch(rng, graph, next_node):
    from repro import Delta, delete, insert

    edges = list(graph.edges())
    nodes = list(graph.nodes())
    non_edges = [
        (s, t)
        for s in nodes
        for t in nodes
        if s != t and not graph.has_edge(s, t)
    ]
    updates = []
    for edge in rng.sample(edges, k=min(len(edges), rng.randint(0, 2))):
        updates.append(delete(*edge))
    for edge in rng.sample(non_edges, k=min(len(non_edges), rng.randint(1, 3))):
        updates.append(insert(*edge))
    if rng.random() < 0.3:
        fresh = next_node[0]
        next_node[0] += 1
        updates.append(
            insert(rng.choice(nodes), fresh, target_label=rng.choice(LABELS))
        )
    rng.shuffle(updates)
    return Delta(updates)


def test_torture_readers_vs_writer():
    rng = random.Random(0x5E21)
    graph = random_graph(rng)
    shadow = graph.copy()  # the oracle's graph: never touched by the engine
    repo = Repository(four_view_engine(graph), max_sessions=READERS + 4)

    # generation -> expected answers, computed on the shadow graph.  The
    # oracle table is the only reader/writer shared state in the test
    # itself; oracle_ready guards it and wakes readers waiting for the
    # writer to record a freshly pinned generation.
    oracle = {0: scratch_answers(shadow)}
    oracle_lock = threading.Condition()
    failures = []
    generations_seen = set()
    writer_done = threading.Event()

    def writer():
        next_node = [1000]
        try:
            for _ in range(BATCHES):
                batch = random_batch(rng, shadow, next_node)
                if not batch:
                    continue
                repo.apply(batch)
                batch.apply_to(shadow)
                with oracle_lock:
                    oracle[repo.generation] = scratch_answers(shadow)
                    oracle_lock.notify_all()
                time.sleep(0.001)  # let readers interleave
        except Exception as error:  # pragma: no cover - failure path
            failures.append(("writer", error))
        finally:
            writer_done.set()
            with oracle_lock:
                oracle_lock.notify_all()

    def reader(index):
        thread_rng = random.Random(0xBEEF + index)
        try:
            while True:
                done_before = writer_done.is_set()
                observed = repo.generation
                with repo.session() as session:
                    # Linearizability of admission: the session cannot
                    # pin anything older than a generation already
                    # published before it was opened.
                    assert session.generation >= observed
                    pinned = session.generation
                    with oracle_lock:
                        while pinned not in oracle:
                            oracle_lock.wait(1.0)
                    with oracle_lock:
                        expected = oracle[pinned]
                    generations_seen.add(pinned)
                    # Read the full surface twice with a pause between:
                    # the writer advances meanwhile, the session must
                    # not.  Any torn read — one view at generation k,
                    # another at k+1 — breaks the oracle comparison.
                    for _ in range(2):
                        for view, query in SURFACE:
                            answer = session.read(view, query)
                            assert answer == expected[(view, query)], (
                                f"view {view} at pinned generation "
                                f"{pinned} diverged from the oracle"
                            )
                        time.sleep(thread_rng.uniform(0.0, 0.002))
                if done_before:
                    break
        except Exception as error:  # pragma: no cover - failure path
            failures.append((f"reader-{index}", error))

    threads = [threading.Thread(target=writer)]
    threads += [
        threading.Thread(target=reader, args=(index,))
        for index in range(READERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "torture test deadlocked"

    assert not failures, failures
    assert repo.poisoned is None
    # The writer actually advanced and readers actually pinned history:
    # a vacuous run (all reads at generation 0) would not exercise MVCC.
    assert repo.generation >= 10
    assert len(generations_seen) >= 2
    # Every session closed; retirement leaves only the newest
    # generation's cache entries reachable.
    assert repo.open_sessions == 0
    final = repo.stats()
    assert final["pinned_generations"] == []

    # The final published state still matches the shadow oracle.
    expected = scratch_answers(shadow)
    for view, query in SURFACE:
        assert repo.read_latest(view, query) == expected[(view, query)]


def test_split_under_live_mixed_load(tmp_path):
    """An online shard split under a live reader/writer mix: zero
    failed reads, no generation published by the split, and sessions
    held open *across* the splits keep answering their admission-time
    oracle — relocating state must be invisible to MVCC."""
    from repro import ShardedGraphStore, ShardMap
    from repro.persist import SnapshotStore

    rng = random.Random(0x5117)
    shadow = random_graph(rng)
    shard_map = ShardMap(2)
    engine = four_view_engine(
        ShardedGraphStore.from_digraph(shadow, shard_map)
    )
    store = SnapshotStore(tmp_path / "store", shard_map=shard_map)
    store.log.executor = "serial"
    store.attach(engine)
    store.save(engine)
    repo = Repository(engine, max_sessions=READERS + 4)

    oracle = {0: scratch_answers(shadow)}
    oracle_lock = threading.Condition()
    failures = []
    split_generations = []
    writer_done = threading.Event()
    # Sessions pinned before any write or split, held across them all.
    held = [repo.session() for _ in range(2)]
    held_expected = scratch_answers(shadow)

    def writer():
        next_node = [1000]
        try:
            for index in range(BATCHES):
                batch = random_batch(rng, shadow, next_node)
                if not batch:
                    continue
                repo.apply(batch)
                batch.apply_to(shadow)
                with oracle_lock:
                    oracle[repo.generation] = scratch_answers(shadow)
                    oracle_lock.notify_all()
                if index in (BATCHES // 3, 2 * BATCHES // 3):
                    before = repo.generation
                    parent = engine.graph.shard_map.count - 1
                    repo.split_shard(store, parent)
                    assert repo.generation == before, (
                        "a split must not publish a generation"
                    )
                    split_generations.append(before)
                time.sleep(0.001)
        except Exception as error:  # pragma: no cover - failure path
            failures.append(("writer", error))
        finally:
            writer_done.set()
            with oracle_lock:
                oracle_lock.notify_all()

    def reader(index):
        thread_rng = random.Random(0xFACE + index)
        try:
            while True:
                done_before = writer_done.is_set()
                with repo.session() as session:
                    pinned = session.generation
                    with oracle_lock:
                        while pinned not in oracle:
                            oracle_lock.wait(1.0)
                        expected = oracle[pinned]
                    for _ in range(2):
                        for view, query in SURFACE:
                            answer = session.read(view, query)
                            assert answer == expected[(view, query)], (
                                f"view {view} at pinned generation "
                                f"{pinned} diverged across a split"
                            )
                        time.sleep(thread_rng.uniform(0.0, 0.002))
                if done_before:
                    break
        except Exception as error:  # pragma: no cover - failure path
            failures.append((f"reader-{index}", error))

    threads = [threading.Thread(target=writer)]
    threads += [
        threading.Thread(target=reader, args=(index,))
        for index in range(READERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "split torture test deadlocked"

    # Zero failed reads: any SessionExpiredError / ServingError /
    # oracle divergence in any thread lands in ``failures``.
    assert not failures, failures
    assert repo.poisoned is None
    assert len(split_generations) == 2
    assert engine.graph.shard_map.count == 4
    # The held sessions rode out every batch and both splits.
    for session in held:
        for view, query in SURFACE:
            assert session.read(view, query) == held_expected[(view, query)]
        session.close()
    # The final state matches the shadow, and so does a fresh recovery
    # of the split store.
    expected = scratch_answers(shadow)
    for view, query in SURFACE:
        assert repo.read_latest(view, query) == expected[(view, query)]
    recovered = SnapshotStore(tmp_path / "store").load(attach_journal=False)
    assert recovered.graph.shard_map == engine.graph.shard_map
    assert recovered.graph == engine.graph


def test_admission_after_publication_reflects_the_batch():
    """The linearizability check in isolation, without thread timing:
    after ``apply`` returns, a newly admitted session must observe the
    batch — pinning an older generation would be a stale-admission bug
    even though each individual read is internally consistent."""
    from repro import insert

    rng = random.Random(7)
    repo = Repository(four_view_engine(random_graph(rng)))
    shadow_nodes = sorted(repo.engine.graph.nodes())
    source, target = shadow_nodes[0], 5000
    before = repo.generation
    repo.apply([insert(source, target, target_label="b")])
    assert repo.generation == before + 1
    with repo.session() as session:
        assert session.generation >= before + 1
        answer = session.read("scc", "components")
        assert frozenset({target}) in answer


@pytest.mark.parametrize("readers", [8, 12])
def test_pool_admits_the_advertised_concurrency(readers):
    """8+ sessions genuinely concurrent (the acceptance floor), all
    reading while a writer applies between admissions."""
    from repro import insert

    rng = random.Random(11)
    repo = Repository(four_view_engine(random_graph(rng)), max_sessions=readers)
    sessions = [repo.session(timeout=0) for _ in range(readers)]
    assert repo.open_sessions == readers
    repo.apply([insert(0, 6000, target_label="d")])
    baseline = sessions[0].read("scc", "components")
    for session in sessions:
        assert session.read("scc", "components") == baseline
        assert frozenset({6000}) not in session.read("scc", "components")
    assert frozenset({6000}) in repo.read_latest("scc", "components")
    for session in sessions:
        session.close()
    assert repo.open_sessions == 0

"""Deterministic crash injection for the persistence layer.

The harness simulates a process dying mid-write at an exact byte
boundary, so the crash-recovery suite (``tests/test_crash_recovery.py``)
can enumerate *every* kill point of an operation and assert that
recovery always lands on a consistent state — the operation either
happened or it did not, never a torn hybrid.

Mechanics
---------

:class:`FaultyFile` proxies a real text-mode file object and shares a
*fuel* budget with its :class:`CrashInjector`: each ``write`` consumes
one unit of fuel per byte and, when the fuel runs out, writes only the
affordable prefix, flushes it to disk (the bytes really land — that is
the torn state under test), and raises :class:`SimulatedCrash`.  Each
``os.replace`` of an injected path consumes one unit of fuel too, so the
kill-point space also covers "crashed just before the atomic rename"
(the rename itself stays atomic, as the OS guarantees).

:class:`CrashInjector` installs the shims while active:

* ``open`` is shadowed inside ``repro.persist.deltalog`` and
  ``repro.persist.snapshot`` (module-global assignment, which wins over
  the builtin) so every *write-mode* open under the injected root
  returns a :class:`FaultyFile`;
* ``os.replace`` is wrapped for paths under the injected root.

Reads are never intercepted — recovery itself runs clean, as it would
in a fresh process.

Usage::

    injector = CrashInjector(root)
    with injector.armed(fuel=None):      # dry run: count the kill points
        operation()
    total = injector.consumed
    for fuel in range(total):            # then kill at every boundary
        with injector.armed(fuel=fuel):
            try:
                operation()
            except SimulatedCrash:
                pass
        recover_and_assert()

:class:`FaultyStore` packages that loop for ``SnapshotStore``-level
operations.
"""

from __future__ import annotations

import builtins
import os
from contextlib import contextmanager
from pathlib import Path

import repro.persist.deltalog as deltalog_module
import repro.persist.snapshot as snapshot_module
from repro.persist import SnapshotStore

__all__ = ["CrashInjector", "FaultyFile", "FaultyStore", "SimulatedCrash"]

#: Modules whose module-global ``open`` the injector shadows.
_PATCHED_MODULES = (deltalog_module, snapshot_module)


class SimulatedCrash(BaseException):
    """The injected process death.

    Derives from ``BaseException`` so production ``except Exception``
    handlers cannot swallow it — a real ``SIGKILL`` is not catchable
    either.
    """


class FaultyFile:
    """Text-file proxy that dies after a shared byte budget is spent.

    Only ``write``/``writelines`` consume fuel; everything else
    delegates.  On exhaustion the affordable prefix is written *and
    flushed* (those bytes durably hit the disk, exactly like a torn
    write before a crash), then :class:`SimulatedCrash` propagates.
    """

    def __init__(self, real, injector: "CrashInjector") -> None:
        self._real = real
        self._injector = injector

    def write(self, text: str) -> int:
        affordable = self._injector.spend(len(text))
        if affordable >= len(text):
            return self._real.write(text)
        self._real.write(text[:affordable])
        self._real.flush()
        os.fsync(self._real.fileno())
        raise SimulatedCrash(
            f"write torn after {affordable}/{len(text)} bytes of {text!r}"
        )

    def writelines(self, lines) -> None:
        for line in lines:
            self.write(line)

    def __getattr__(self, name):
        return getattr(self._real, name)

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self._real.close()

    def __iter__(self):
        return iter(self._real)


class CrashInjector:
    """Installs the crash shims for all persistence writes under ``root``."""

    def __init__(self, root) -> None:
        self.root = Path(root).resolve()
        #: Fuel units consumed by the last (or current) armed run.
        self.consumed = 0
        self._fuel: int | None = None

    # -- fuel accounting -------------------------------------------------

    def spend(self, wanted: int) -> int:
        """Consume up to ``wanted`` fuel; returns the affordable amount."""
        if self._fuel is None:
            self.consumed += wanted
            return wanted
        affordable = min(wanted, self._fuel)
        self._fuel -= affordable
        self.consumed += affordable
        return affordable

    def _covers(self, path) -> bool:
        try:
            Path(path).resolve().relative_to(self.root)
        except (ValueError, TypeError):
            return False
        return True

    # -- shim installation ----------------------------------------------

    @contextmanager
    def armed(self, fuel: int | None):
        """Install the shims; ``fuel=None`` records without crashing."""
        self._fuel = fuel
        self.consumed = 0
        real_open = builtins.open
        real_replace = os.replace

        def faulty_open(path, mode="r", *args, **kwargs):
            stream = real_open(path, mode, *args, **kwargs)
            if ("w" in mode or "a" in mode) and "b" not in mode and self._covers(
                path
            ):
                return FaultyFile(stream, self)
            return stream

        def faulty_replace(src, dst, *args, **kwargs):
            if self._covers(dst):
                if self.spend(1) < 1:
                    raise SimulatedCrash(f"died before os.replace -> {dst}")
            return real_replace(src, dst, *args, **kwargs)

        for module in _PATCHED_MODULES:
            module.open = faulty_open
        os.replace = faulty_replace
        try:
            yield self
        finally:
            os.replace = real_replace
            for module in _PATCHED_MODULES:
                try:
                    del module.open
                except AttributeError:
                    pass
            self._fuel = None


class FaultyStore:
    """Kill-point enumeration for one persistence operation.

    The test owns the disk state: ``setup()`` must rebuild the
    operation's starting directory (and any live objects) from scratch,
    because a killed run leaves *real* torn bytes behind — exactly what
    the next recovery must digest, but not a valid starting point for
    the next kill.  ``operation()`` is a zero-arg callable performing
    the write being tortured; ``recover(completed)`` receives whether
    the run finished and must assert the recovered state is exactly the
    pre- or post-operation state.

    ``torture()`` walks every kill point (strided in the quick tier-1
    configuration; exhaustive byte-by-byte when
    ``REPRO_CRASHSIM_EXHAUSTIVE=1``), then runs the uninjected
    completion as the final point.  Returns the number of kill points
    exercised.
    """

    def __init__(self, root, setup, operation, recover, stride: int = 1) -> None:
        self.root = Path(root)
        self.injector = CrashInjector(root)
        self.setup = setup
        self.operation = operation
        self.recover = recover
        self.stride = max(1, stride)

    def run(self, fuel: int | None) -> bool:
        """One armed run at ``fuel``; True if the operation completed."""
        try:
            with self.injector.armed(fuel=fuel):
                self.operation()
        except SimulatedCrash:
            return False
        return True

    def torture(self) -> int:
        self.setup()
        total = self._count()
        points = list(range(0, total, self.stride)) + [total]
        for fuel in points:
            self.setup()
            completed = self.run(fuel)
            assert completed == (fuel >= total), (
                f"fuel {fuel}/{total} completed={completed}"
            )
            self.recover(completed)
        return len(points)

    def _count(self) -> int:
        with self.injector.armed(fuel=None):
            self.operation()
        return self.injector.consumed

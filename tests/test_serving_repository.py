"""Unit tests for :class:`repro.serving.Repository`: pool semantics,
lease expiry, generation lifecycle, the poison tripwires, the
``cache=False`` escape hatch, and recovery from a ``SnapshotStore``."""

import pytest

from repro import (
    DiGraph,
    Engine,
    Repository,
    ServingError,
    SessionLimitError,
    insert,
)
from repro.kws import KWSIndex, KWSQuery
from repro.persist import SnapshotStore
from repro.scc import SCCIndex
from repro.serving import (
    RepositoryPoisonedError,
    SessionClosedError,
    SessionExpiredError,
    UnknownQueryError,
    freeze_answer,
)


def make_repo(**kwargs):
    engine = Engine(
        DiGraph(labels={1: "a", 2: "b", 3: "c"}, edges=[(1, 2), (2, 3)])
    )
    engine.register("scc", lambda g, m: SCCIndex(g, meter=m))
    engine.register(
        "kws", lambda g, m: KWSIndex(g, KWSQuery(("a", "b"), 2), meter=m)
    )
    return Repository(engine, **kwargs)


# ----------------------------------------------------------------------
# Pool and lease semantics
# ----------------------------------------------------------------------


def test_pool_bound_and_timeout():
    repo = make_repo(max_sessions=2)
    first, second = repo.session(timeout=0), repo.session(timeout=0)
    with pytest.raises(SessionLimitError):
        repo.session(timeout=0)
    first.close()
    third = repo.session(timeout=0)  # the freed slot is reusable
    second.close(), third.close()
    with pytest.raises(ServingError):
        Repository(make_repo().engine, max_sessions=0)


def test_lease_expiry_and_reap():
    now = [0.0]
    repo = make_repo(max_sessions=1, session_lease=10.0, clock=lambda: now[0])
    session = repo.session(timeout=0)
    session.read("scc", "components")
    now[0] = 10.0  # lease boundary is inclusive: expired
    with pytest.raises(SessionExpiredError):
        session.read("scc", "components")
    # The expired session's slot was reaped, so admission succeeds.
    replacement = repo.session(timeout=0)
    assert replacement.session_id != session.session_id
    replacement.close()


def test_renew_extends_the_lease():
    now = [0.0]
    repo = make_repo(session_lease=10.0, clock=lambda: now[0])
    session = repo.session(timeout=0)
    now[0] = 9.0
    session.renew()
    now[0] = 15.0  # past the original lease, inside the renewed one
    session.read("scc", "components")
    session.close()


def test_close_is_idempotent_and_reads_after_close_fail():
    repo = make_repo()
    session = repo.session(timeout=0)
    session.close()
    session.close()
    assert session.closed
    with pytest.raises(SessionClosedError):
        session.read("scc", "components")


# ----------------------------------------------------------------------
# Generations and the write stream
# ----------------------------------------------------------------------


def test_generation_advances_per_batch_and_rollback_publishes():
    repo = make_repo()
    assert repo.generation == 0
    checkpoint = repo.checkpoint()
    repo.apply([insert(3, 1)])
    assert repo.generation == 1
    with repo.session() as pinned:
        assert frozenset({1, 2, 3}) in pinned.read("scc", "components")
        repo.rollback(checkpoint)
        # MVCC time moves forward even though graph time moved back.
        assert repo.generation == 2
        assert frozenset({1, 2, 3}) in pinned.read("scc", "components")
    assert frozenset({1, 2, 3}) not in repo.read_latest("scc", "components")


def test_read_latest_needs_no_session():
    repo = make_repo()
    answer = repo.read_latest("kws", "roots")
    assert answer == {1}  # only node 1 reaches both "a" and "b" within 2
    assert repo.open_sessions == 0


def test_unknown_names_raise():
    repo = make_repo()
    with pytest.raises(UnknownQueryError):
        repo.read_latest("nope", "roots")
    with pytest.raises(UnknownQueryError):
        repo.read_latest("scc", "nope")
    with pytest.raises(UnknownQueryError):
        repo.register_query("nope", "q", lambda view: None)


def test_register_custom_query():
    repo = make_repo()
    repo.register_query("scc", "count", lambda view: len(view.components()))
    assert repo.read_latest("scc", "count") == 3
    assert "count" in repo.queries()["scc"]


# ----------------------------------------------------------------------
# Poison tripwires
# ----------------------------------------------------------------------


def test_out_of_band_engine_mutation_poisons():
    repo = make_repo()
    with repo.session() as session:
        repo.engine.apply([insert(3, 1)])  # behind the repository's back
        assert repo.poisoned is not None
        with pytest.raises(RepositoryPoisonedError):
            session.read("scc", "components")
    with pytest.raises(RepositoryPoisonedError):
        repo.apply([insert(1, 3)])
    with pytest.raises(RepositoryPoisonedError):
        repo.session()


def test_close_detaches_the_publication_hook():
    repo = make_repo()
    engine = repo.engine
    repo.close()
    engine.apply([insert(3, 1)])  # direct use after close is legitimate
    with pytest.raises(ServingError):
        repo.session()


def test_snapshot_save_does_not_poison(tmp_path):
    repo = make_repo()
    store = SnapshotStore(tmp_path / "store")
    store.attach(repo.engine)
    store.save(repo.engine)  # capture, not mutation: no publication
    repo.apply([insert(3, 1)])
    assert repo.poisoned is None
    store.save(repo.engine, incremental=True)
    assert repo.poisoned is None


# ----------------------------------------------------------------------
# cache=False and freeze_answer
# ----------------------------------------------------------------------


def test_cache_disabled_serves_latest_only():
    repo = make_repo(cache=False)
    with repo.session() as session:
        assert session.read("kws", "roots") == {1}
        repo.apply([insert(3, 1)])
        with pytest.raises(ServingError):
            session.read("scc", "components")  # scc changed: unservable
    assert repo.cache_stats().entries == 0
    assert repo.read_latest("scc", "components") == {frozenset({1, 2, 3})}


def test_freeze_answer_is_deeply_immutable_and_equal():
    frozen = freeze_answer({frozenset({1}), frozenset({2})})
    assert frozen == {frozenset({1}), frozenset({2})}
    assert isinstance(frozen, frozenset)
    assert freeze_answer([1, [2, 3]]) == (1, (2, 3))
    assert freeze_answer({"k": {1, 2}}) == (("k", frozenset({1, 2})),)


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------


def test_recover_serves_a_persisted_session(tmp_path):
    repo = make_repo()
    store = SnapshotStore(tmp_path / "store")
    store.attach(repo.engine)
    store.save(repo.engine)
    repo.apply([insert(3, 1)])  # journaled after the snapshot: log tail
    expected = repo.read_latest("scc", "components")
    repo.close()

    revived = Repository.recover(store, max_sessions=4)
    assert revived.generation == 0  # a fresh serving epoch
    with revived.session() as session:
        assert session.read("scc", "components") == expected
    revived.apply([insert(2, 1)])
    assert revived.generation == 1
    revived.close()

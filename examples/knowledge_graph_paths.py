#!/usr/bin/env python
"""Regular-path-query auditing over an evolving knowledge graph.

Scenario: a DBpedia-like knowledge graph ingests a continuous edit stream
(entity links appear and disappear).  A data-quality job maintains the
answer to a regular path query — e.g. "which entities connect to a
company through a chain of person links?" — via the paper's IncRPQ,
whose cost tracks the affected area |AFF| rather than |G|.

The script also demonstrates the Δ-reduction machinery of Theorem 1: the
same reachability question is answered through the SSRP → RPQ reduction
and cross-checked against a direct reachability index.

Run:  python examples/knowledge_graph_paths.py
"""

import time

from repro import CostMeter
from repro.core.ssrp import ReachabilityIndex
from repro.graph.stats import label_histogram
from repro.graph.updates import random_delta
from repro.rpq import RPQIndex, matches_only
from repro.theory import SSRPInstance, solve_ssrp_via_rpq
from repro.workloads import dbpedia_like

ROUNDS = 5


def main() -> None:
    graph = dbpedia_like(scale=0.5, seed=23)
    print(f"knowledge graph: {graph}")

    # Build a query from the three most common entity types so it is
    # selective but non-empty: type0 . type1* . type2
    histogram = label_histogram(graph)
    top = [label for label, _ in histogram.most_common(3)]
    query_text = f"{top[0]} . {top[1]}* . {top[2]}"
    print(f"standing query: {query_text}\n")

    meter = CostMeter()
    index = RPQIndex(graph, query_text, meter=meter)
    print(f"initial matches: {len(index.matches)} entity pairs")
    meter.reset()

    inc_time = 0.0
    recompute_time = 0.0
    batch_size = max(10, graph.num_edges // 50)
    for round_number in range(1, ROUNDS + 1):
        delta = random_delta(index.graph, batch_size, seed=500 + round_number)

        started = time.perf_counter()
        delta_o = index.apply(delta)
        inc_time += time.perf_counter() - started

        started = time.perf_counter()
        expected = matches_only(index.graph, query_text)
        recompute_time += time.perf_counter() - started

        assert index.matches == expected, "incremental result diverged!"
        print(
            f"round {round_number}: |ΔG|={len(delta)}  "
            f"ΔO: +{len(delta_o.added)} / -{len(delta_o.removed)} pairs  "
            f"(total {len(index.matches)})"
        )

    print(
        f"\ncumulative: IncRPQ {inc_time * 1e3:.1f} ms vs "
        f"RPQ_NFA recompute {recompute_time * 1e3:.1f} ms "
        f"({recompute_time / max(inc_time, 1e-9):.1f}x); "
        f"incremental work: {meter.total():,} events"
    )

    # ------------------------------------------------------------------
    # Bonus: reachability auditing through the Δ-reduction of Theorem 1.
    # ------------------------------------------------------------------
    print("\nΔ-reduction demo (SSRP → RPQ):")
    base = dbpedia_like(scale=0.2, seed=29)
    source = next(iter(base.nodes()))
    audit_delta = random_delta(base, 30, seed=31)

    direct = ReachabilityIndex(base.copy(), source)
    expected_flips = direct.apply(audit_delta)

    via_rpq = solve_ssrp_via_rpq(SSRPInstance(base.copy(), source), audit_delta)
    assert via_rpq == expected_flips
    gained, lost = via_rpq
    print(
        f"  reachability flips from {source!r} under {len(audit_delta)} updates: "
        f"+{len(gained)} / -{len(lost)} — identical via the reduction ✓"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: all four query classes, batch vs incremental, on one graph.

Builds a small labeled digraph, answers a keyword search, a regular path
query, strongly connected components and a subgraph-isomorphism pattern,
then applies a batch of edge updates *incrementally* and shows that the
maintained answers equal a from-scratch recomputation — the paper's
defining equation Q(G ⊕ ΔG) = Q(G) ⊕ ΔO.

The finale re-runs the same stream through an :class:`~repro.Engine`
over a **sharded** graph store (``ShardedGraphStore``, 4 hash shards)
— the drop-in storage layout that partitions mutations, journaling,
and compaction per shard — and shows the answers are identical.  The
engine's dispatch strategy follows ``REPRO_ENGINE_EXECUTOR``
(``serial`` / ``threads`` / ``processes``), so this script doubles as
a smoke test for every executor.

Run:  python examples/quickstart.py
"""

from repro import Delta, DiGraph, Engine, ShardedGraphStore, delete, insert
from repro.iso import ISOIndex, Pattern, vf2_matches
from repro.kws import KWSIndex, KWSQuery, batch_kws
from repro.rpq import RPQIndex, matches_only
from repro.scc import SCCIndex, tarjan_scc


def build_graph() -> DiGraph:
    """A little citation-network-flavoured graph."""
    labels = {
        "p1": "paper", "p2": "paper", "p3": "paper", "p4": "paper",
        "a1": "author", "a2": "author",
        "v1": "venue", "v2": "venue",
        "t1": "topic",
    }
    edges = [
        ("p1", "p2"), ("p2", "p3"), ("p3", "p1"),   # citation cycle
        ("p4", "p1"),
        ("p1", "a1"), ("p2", "a1"), ("p3", "a2"), ("p4", "a2"),
        ("p1", "v1"), ("p2", "v1"), ("p3", "v2"), ("p4", "v2"),
        ("a1", "t1"), ("a2", "t1"),
    ]
    return DiGraph(labels=labels, edges=edges)


def main() -> None:
    graph = build_graph()
    print(f"graph: {graph}")

    # ------------------------------------------------------------------
    # 1. Keyword search (localizable IncKWS)
    # ------------------------------------------------------------------
    kws_query = KWSQuery(("author", "venue"), bound=2)
    kws = KWSIndex(graph.copy(), kws_query)
    print("\n[KWS] roots with an author and a venue within 2 hops:")
    for root, match in sorted(kws.matches().items()):
        print(f"  {root}: weight={match.weight} paths={dict(match.paths)}")

    # ------------------------------------------------------------------
    # 2. Regular path query (relatively bounded IncRPQ)
    # ------------------------------------------------------------------
    rpq_text = "paper . paper* . author"
    rpq = RPQIndex(graph.copy(), rpq_text)
    print(f"\n[RPQ] matches of {rpq_text!r}: {sorted(rpq.matches)}")

    # ------------------------------------------------------------------
    # 3. Strongly connected components (relatively bounded IncSCC)
    # ------------------------------------------------------------------
    scc = SCCIndex(graph.copy())
    nontrivial = [sorted(c) for c in scc.components() if len(c) > 1]
    print(f"\n[SCC] non-trivial components: {nontrivial}")

    # ------------------------------------------------------------------
    # 4. Subgraph isomorphism (localizable IncISO)
    # ------------------------------------------------------------------
    pattern = Pattern.from_edges(
        {0: "paper", 1: "paper", 2: "author"}, [(0, 1), (1, 2)]
    )
    iso = ISOIndex(graph.copy(), pattern)
    print(f"\n[ISO] paper->paper->author embeddings: {len(iso.matches)}")

    # ------------------------------------------------------------------
    # 5. One batch of updates, processed incrementally everywhere
    # ------------------------------------------------------------------
    batch = Delta([
        delete("p3", "p1"),                           # break the cycle
        insert("p3", "p4"),                           # re-route it
        insert("p5", "p3", source_label="paper"),     # a brand-new paper
        insert("p5", "a1"),
    ])
    print(f"\napplying ΔG = [{', '.join(str(u) for u in batch)}]")

    kws_delta = kws.apply(batch)
    print(f"[KWS] ΔO: +{sorted(kws_delta.added)} -{sorted(kws_delta.removed)} "
          f"rerouted={sorted(kws_delta.rerouted)}")

    rpq_delta = rpq.apply(batch)
    print(f"[RPQ] ΔO: +{sorted(rpq_delta.added)} -{sorted(rpq_delta.removed)}")

    scc_added, scc_removed = scc.apply(batch)
    print(f"[SCC] ΔO: +{[sorted(c) for c in scc_added]} "
          f"-{[sorted(c) for c in scc_removed]}")

    iso_delta = iso.apply(batch)
    print(f"[ISO] ΔO: +{len(iso_delta.added)} matches, -{len(iso_delta.removed)}")

    # ------------------------------------------------------------------
    # 6. The defining equation: incremental == from-scratch
    # ------------------------------------------------------------------
    patched = batch.applied(graph)
    assert kws.profile() == {
        root: {k: m.distances()[k] for k in kws_query.keywords}
        for root, m in batch_kws(patched, kws_query).items()
    }
    assert rpq.matches == matches_only(patched, rpq_text)
    assert scc.components() == tarjan_scc(patched).partition()
    assert iso.matches == vf2_matches(patched, pattern)
    print("\nall four incremental answers equal a from-scratch recomputation ✓")

    # ------------------------------------------------------------------
    # 7. The same stream, on a sharded store through the engine
    # ------------------------------------------------------------------
    sharded = ShardedGraphStore(shards=4)
    for node in graph.nodes():
        sharded.add_node(node, label=graph.label(node))
    for source, target in graph.edges():
        sharded.add_edge(source, target)

    engine = Engine(sharded)  # executor from REPRO_ENGINE_EXECUTOR
    engine.register("kws", lambda g, m: KWSIndex(g, kws_query, meter=m))
    engine.register("rpq", lambda g, m: RPQIndex(g, rpq_text, meter=m))
    engine.register("scc", lambda g, m: SCCIndex(g, meter=m))
    engine.register("iso", lambda g, m: ISOIndex(g, pattern, meter=m))
    report = engine.apply(batch)  # one G ⊕ ΔG, routed to all four views

    assert engine["kws"].profile() == kws.profile()
    assert engine["rpq"].matches == rpq.matches
    assert engine["scc"].components() == scc.components()
    assert engine["iso"].matches == iso.matches
    assert sharded == patched
    balance = ", ".join(
        f"shard {index}: {nodes}n/{edges}e"
        for index, (nodes, edges) in enumerate(sharded.shard_sizes())
    )
    print(
        f"\n[sharded] 4-shard engine ({engine.scheduler.executor} dispatch) "
        f"agrees on all four answers ✓"
    )
    print(f"[sharded] balance: {balance}; "
          f"cross-shard edges: {sharded.cross_shard_edges()}; "
          f"batch cost: {report.total_cost()} units")


if __name__ == "__main__":
    main()

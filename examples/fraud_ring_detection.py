#!/usr/bin/env python
"""Fraud-ring detection on a transaction graph: IncSCC + IncISO together.

Scenario: accounts transact continuously; compliance wants two standing
queries maintained under the update stream —

1. **money-laundering rings**: strongly connected components of the
   transaction graph that contain at least one *mule* account (funds can
   circulate and return) — maintained by the paper's IncSCC;
2. **a fan-in motif**: two mules paying the same *shell* account which
   pays a *bank* — maintained by the localizable IncISO.

Each round applies a batch of transaction edits incrementally and
cross-checks against recomputation (Tarjan / VF2).

Run:  python examples/fraud_ring_detection.py
"""

import random
import time

from repro import Delta, DiGraph, delete, insert
from repro.iso import ISOIndex, Pattern, vf2_matches
from repro.scc import SCCIndex, tarjan_scc

ACCOUNT_KINDS = ["retail", "mule", "shell", "bank"]


def build_transaction_graph(
    num_accounts: int,
    num_edges: int,
    num_rings: int,
    seed: int,
) -> DiGraph:
    """Mostly feed-forward payment flow (money moves from payers to payees
    'downstream') with a few planted laundering rings among mule accounts.

    Real transaction graphs are close to acyclic — cycles are the anomaly
    being hunted — so ordinary edges go low-id -> high-id and only the
    planted rings (plus churn) create back-flows.
    """
    rng = random.Random(seed)
    graph = DiGraph()
    for account in range(num_accounts):
        kind = rng.choices(ACCOUNT_KINDS, weights=[70, 12, 12, 6])[0]
        graph.add_node(account, label=kind)
    placed = 0
    while placed < num_edges:
        payer = rng.randrange(num_accounts)
        payee = rng.randrange(num_accounts)
        if payer > payee:
            payer, payee = payee, payer
        if payer != payee and not graph.has_edge(payer, payee):
            graph.add_edge(payer, payee)
            placed += 1
    mules = [a for a in graph.nodes() if graph.label(a) == "mule"]
    rng.shuffle(mules)
    for ring_index in range(num_rings):
        ring = mules[4 * ring_index: 4 * ring_index + 4]
        if len(ring) < 3:
            break
        for position, account in enumerate(ring):
            nxt = ring[(position + 1) % len(ring)]
            if not graph.has_edge(account, nxt):
                graph.add_edge(account, nxt)
    return graph


def fan_in_pattern() -> Pattern:
    """mule -> shell <- mule, shell -> bank."""
    return Pattern.from_edges(
        {0: "mule", 1: "mule", 2: "shell", 3: "bank"},
        [(0, 2), (1, 2), (2, 3)],
    )


def suspicious_rings(index: SCCIndex) -> list[frozenset]:
    return [
        component
        for component in index.components()
        if len(component) >= 3
        and any(index.graph.label(account) == "mule" for account in component)
    ]


def churn(graph: DiGraph, size: int, seed: int) -> Delta:
    """A burst of new transactions plus some reversals (deletes)."""
    rng = random.Random(seed)
    updates = []
    edges = list(graph.edges())
    rng.shuffle(edges)
    touched = set()
    for edge in edges[: size // 2]:
        updates.append(delete(*edge))
        touched.add(edge)
    accounts = list(graph.nodes())
    while len(updates) < size:
        payer, payee = rng.choice(accounts), rng.choice(accounts)
        edge = (payer, payee)
        if payer != payee and not graph.has_edge(*edge) and edge not in touched:
            updates.append(insert(*edge))
            touched.add(edge)
    return Delta(updates)


def main() -> None:
    graph = build_transaction_graph(
        num_accounts=3000, num_edges=9000, num_rings=5, seed=3
    )
    print(f"transaction graph: {graph}")

    scc_index = SCCIndex(graph.copy())
    iso_index = ISOIndex(graph.copy(), fan_in_pattern())
    print(
        f"initial state: {len(suspicious_rings(scc_index))} suspicious rings, "
        f"{len(iso_index.matches)} fan-in motifs"
    )

    inc_time = 0.0
    batch_time = 0.0
    for round_number in range(1, 6):
        delta = churn(scc_index.graph, 60, seed=40 + round_number)

        started = time.perf_counter()
        scc_added, scc_removed = scc_index.apply(delta)
        iso_delta = iso_index.apply(delta)
        inc_time += time.perf_counter() - started

        started = time.perf_counter()
        expected_components = tarjan_scc(scc_index.graph).partition()
        expected_matches = vf2_matches(iso_index.graph, iso_index.pattern)
        batch_time += time.perf_counter() - started

        assert scc_index.components() == expected_components
        assert iso_index.matches == expected_matches

        rings = suspicious_rings(scc_index)
        print(
            f"round {round_number}: |ΔG|={len(delta)}  "
            f"components {'+' + str(len(scc_added)):>3}/-{len(scc_removed)}  "
            f"motifs +{len(iso_delta.added)}/-{len(iso_delta.removed)}  "
            f"-> {len(rings)} rings, {len(iso_index.matches)} motifs"
        )

    biggest = max(suspicious_rings(scc_index), key=len, default=frozenset())
    print(f"\nlargest suspicious ring has {len(biggest)} accounts")
    print(
        f"cumulative: incremental {inc_time * 1e3:.1f} ms vs "
        f"recompute {batch_time * 1e3:.1f} ms "
        f"({batch_time / max(inc_time, 1e-9):.1f}x)"
    )


if __name__ == "__main__":
    main()

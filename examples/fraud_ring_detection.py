#!/usr/bin/env python
"""Fraud-ring detection on a transaction graph: IncSCC + IncISO fanned
out from one :class:`repro.engine.Engine` session.

Scenario: accounts transact continuously; compliance wants two standing
queries maintained under the update stream —

1. **money-laundering rings**: strongly connected components of the
   transaction graph that contain at least one *mule* account (funds can
   circulate and return) — maintained by the paper's IncSCC;
2. **a fan-in motif**: two mules paying the same *shell* account which
   pays a *bank* — maintained by the localizable IncISO.

Both detectors register against one engine over a *single* authoritative
graph — the update batch is validated once, applied once, and each view
repairs itself.  Each round cross-checks against recomputation (Tarjan /
VF2); at the end, the whole stream is rolled back through
``Delta.inverted()`` and both views arrive at the starting answers
without a rebuild — the investigation can replay history at will.

The second act is *durability*: the session snapshots its state through
:class:`repro.persist.SnapshotStore`, keeps journaling transactions into
the write-ahead delta log, then the monitoring process "crashes".
Recovery restores the snapshot and replays only the logged tail through
the same ``absorb`` fan-out — the detectors come back exactly where they
left off, without re-running Tarjan or VF2 over the whole graph.

Run:  python examples/fraud_ring_detection.py
"""

import random
import tempfile
import time
from pathlib import Path

from repro import Delta, DiGraph, Engine, delete, insert
from repro.iso import ISOIndex, Pattern, vf2_matches
from repro.persist import SnapshotStore
from repro.scc import SCCIndex, tarjan_scc

ACCOUNT_KINDS = ["retail", "mule", "shell", "bank"]


def build_transaction_graph(
    num_accounts: int,
    num_edges: int,
    num_rings: int,
    seed: int,
) -> DiGraph:
    """Mostly feed-forward payment flow (money moves from payers to payees
    'downstream') with a few planted laundering rings among mule accounts.

    Real transaction graphs are close to acyclic — cycles are the anomaly
    being hunted — so ordinary edges go low-id -> high-id and only the
    planted rings (plus churn) create back-flows.
    """
    rng = random.Random(seed)
    graph = DiGraph()
    for account in range(num_accounts):
        kind = rng.choices(ACCOUNT_KINDS, weights=[70, 12, 12, 6])[0]
        graph.add_node(account, label=kind)
    placed = 0
    while placed < num_edges:
        payer = rng.randrange(num_accounts)
        payee = rng.randrange(num_accounts)
        if payer > payee:
            payer, payee = payee, payer
        if payer != payee and not graph.has_edge(payer, payee):
            graph.add_edge(payer, payee)
            placed += 1
    mules = [a for a in graph.nodes() if graph.label(a) == "mule"]
    rng.shuffle(mules)
    for ring_index in range(num_rings):
        ring = mules[4 * ring_index: 4 * ring_index + 4]
        if len(ring) < 3:
            break
        for position, account in enumerate(ring):
            nxt = ring[(position + 1) % len(ring)]
            if not graph.has_edge(account, nxt):
                graph.add_edge(account, nxt)
    return graph


def fan_in_pattern() -> Pattern:
    """mule -> shell <- mule, shell -> bank."""
    return Pattern.from_edges(
        {0: "mule", 1: "mule", 2: "shell", 3: "bank"},
        [(0, 2), (1, 2), (2, 3)],
    )


def suspicious_rings(index: SCCIndex) -> list[frozenset]:
    return [
        component
        for component in index.components()
        if len(component) >= 3
        and any(index.graph.label(account) == "mule" for account in component)
    ]


def churn(graph: DiGraph, size: int, seed: int) -> Delta:
    """A burst of new transactions plus some reversals (deletes)."""
    rng = random.Random(seed)
    updates = []
    edges = list(graph.edges())
    rng.shuffle(edges)
    touched = set()
    for edge in edges[: size // 2]:
        updates.append(delete(*edge))
        touched.add(edge)
    accounts = list(graph.nodes())
    while len(updates) < size:
        payer, payee = rng.choice(accounts), rng.choice(accounts)
        edge = (payer, payee)
        if payer != payee and not graph.has_edge(*edge) and edge not in touched:
            updates.append(insert(*edge))
            touched.add(edge)
    return Delta(updates)


def main() -> None:
    graph = build_transaction_graph(
        num_accounts=3000, num_edges=9000, num_rings=5, seed=3
    )
    print(f"transaction graph: {graph}")

    engine = Engine(graph)
    scc_index = engine.register("rings", lambda g, meter: SCCIndex(g, meter=meter))
    iso_index = engine.register(
        "motifs", lambda g, meter: ISOIndex(g, fan_in_pattern(), meter=meter)
    )
    initial_rings = len(suspicious_rings(scc_index))
    initial_motifs = len(iso_index.matches)
    print(
        f"initial state: {initial_rings} suspicious rings, "
        f"{initial_motifs} fan-in motifs"
    )

    mark = engine.checkpoint()
    inc_time = 0.0
    batch_time = 0.0
    for round_number in range(1, 6):
        delta = churn(engine.graph, 60, seed=40 + round_number)

        started = time.perf_counter()
        report = engine.apply(delta)  # one batch, both detectors repaired
        inc_time += time.perf_counter() - started

        started = time.perf_counter()
        expected_components = tarjan_scc(engine.graph).partition()
        expected_matches = vf2_matches(engine.graph, iso_index.pattern)
        batch_time += time.perf_counter() - started

        assert scc_index.components() == expected_components
        assert iso_index.matches == expected_matches

        scc_added, scc_removed = report.output("rings")
        iso_delta = report.output("motifs")
        rings = suspicious_rings(scc_index)
        print(
            f"round {round_number}: |ΔG|={len(report.delta)}  "
            f"components {'+' + str(len(scc_added)):>3}/-{len(scc_removed)}  "
            f"motifs +{len(iso_delta.added)}/-{len(iso_delta.removed)}  "
            f"-> {len(rings)} rings, {len(iso_index.matches)} motifs"
        )

    biggest = max(suspicious_rings(scc_index), key=len, default=frozenset())
    print(f"\nlargest suspicious ring has {len(biggest)} accounts")
    print(
        f"cumulative: incremental {inc_time * 1e3:.1f} ms vs "
        f"recompute {batch_time * 1e3:.1f} ms "
        f"({batch_time / max(inc_time, 1e-9):.1f}x)"
    )

    # ------------------------------------------------------------------
    # Replay: undo the whole stream via Delta.inverted(), no rebuild.
    # ------------------------------------------------------------------
    engine.rollback(mark)
    assert scc_index.components() == tarjan_scc(engine.graph).partition()
    assert iso_index.matches == vf2_matches(engine.graph, iso_index.pattern)
    assert len(suspicious_rings(scc_index)) == initial_rings
    assert len(iso_index.matches) == initial_motifs
    print(
        f"rolled back {5} rounds: {len(suspicious_rings(scc_index))} rings, "
        f"{len(iso_index.matches)} motifs — matches the initial state"
    )

    # ------------------------------------------------------------------
    # Crash and recover: snapshot + write-ahead log survive the process.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory(prefix="fraud-ring-store-") as tmp:
        store = SnapshotStore(Path(tmp))
        store.save(engine)     # durable point-in-time state
        store.attach(engine)   # journal every batch from here on

        for round_number in range(6, 9):  # transactions after the snapshot
            engine.apply(churn(engine.graph, 60, seed=40 + round_number))
        expected_rings = suspicious_rings(scc_index)
        expected_motifs = set(iso_index.matches)
        del engine, scc_index, iso_index  # the monitoring process dies

        started = time.perf_counter()
        revived = store.load()  # restore snapshot, replay the logged tail
        recovery_ms = (time.perf_counter() - started) * 1e3
        rings = suspicious_rings(revived["rings"])
        assert set(rings) == set(expected_rings)
        assert revived["motifs"].matches == expected_motifs
        assert revived["rings"].components() == tarjan_scc(revived.graph).partition()
        tail = len(store.log.entries())
        print(
            f"\ncrash after 3 journaled rounds: recovered in {recovery_ms:.1f} ms "
            f"(snapshot + {tail}-batch replay) — {len(rings)} rings, "
            f"{len(revived['motifs'].matches)} motifs, identical to the lost session"
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Keyword-search monitoring over an evolving social graph.

Scenario (the paper's motivating KWS workload): a social network where
edges (follows, mentions) churn continuously, and an application keeps an
always-fresh answer to "which users have both a *musician* and a *label*
within 2 hops?" — e.g. for talent-scout alerting.

The script streams batches of updates through :class:`repro.kws.KWSIndex`
(the paper's IncKWS), reports ΔO per batch, compares the cumulative
incremental cost against recomputing with the batch algorithm each round,
and finally widens the search bound in place via the snapshot mechanism of
Section 4.2's Remark.

Run:  python examples/social_stream_monitor.py
"""

import time

from repro import CostMeter
from repro.graph.updates import random_delta
from repro.kws import KWSIndex, KWSQuery, batch_kws
from repro.kws.snapshot import extend_bound, profile_with_bound
from repro.workloads import livej_like, random_kws_queries

ROUNDS = 6
BATCH_FRACTION = 0.02  # 2% of |E| churn per round


def main() -> None:
    graph = livej_like(scale=0.4, seed=11)
    print(f"social graph: {graph}")

    query = random_kws_queries(graph, count=1, m=2, bound=2, seed=7)[0]
    print(f"watching keywords {query.keywords} within {query.bound} hops\n")

    meter = CostMeter()
    index = KWSIndex(graph, query, meter=meter)
    print(f"initial matches: {len(index.roots())} roots")
    build_cost = meter.total()
    meter.reset()

    incremental_seconds = 0.0
    batch_seconds = 0.0
    batch_size = round(graph.num_edges * BATCH_FRACTION)

    for round_number in range(1, ROUNDS + 1):
        delta = random_delta(index.graph, batch_size, seed=100 + round_number)

        started = time.perf_counter()
        delta_o = index.apply(delta)
        incremental_seconds += time.perf_counter() - started

        started = time.perf_counter()
        fresh = batch_kws(index.graph, query)  # what a recompute would cost
        batch_seconds += time.perf_counter() - started

        assert set(fresh) == index.roots(), "incremental diverged from batch!"
        print(
            f"round {round_number}: |ΔG|={len(delta)}  "
            f"+{len(delta_o.added)} roots, -{len(delta_o.removed)}, "
            f"~{len(delta_o.rerouted)} rerouted   "
            f"(total roots: {len(index.roots())})"
        )

    print(
        f"\ncumulative time: incremental {incremental_seconds * 1e3:.1f} ms vs "
        f"recompute-every-round {batch_seconds * 1e3:.1f} ms "
        f"({batch_seconds / max(incremental_seconds, 1e-9):.1f}x)"
    )
    print(
        f"incremental work since build: {meter.total():,} events "
        f"(initial build was {build_cost:,})"
    )

    # ------------------------------------------------------------------
    # Widening the radius without recomputation (Section 4.2, Remark)
    # ------------------------------------------------------------------
    wider = query.bound + 2
    before = len(index.roots())
    delta_o = extend_bound(index, wider)
    print(
        f"\nextended bound {query.bound} -> {wider} in place: "
        f"{before} -> {len(index.roots())} roots (+{len(delta_o.added)})"
    )
    narrow_again = profile_with_bound(index, query.bound)
    assert len(narrow_again) == before, "narrow view must match the old answer"
    print(f"narrow view at bound {query.bound} still answerable: {len(narrow_again)} roots")


if __name__ == "__main__":
    main()

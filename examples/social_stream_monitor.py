#!/usr/bin/env python
"""Keyword-search + path monitoring over an evolving social graph,
driven through one :class:`repro.engine.Engine` session.

Scenario (the paper's motivating KWS workload): a social network where
edges (follows, mentions) churn continuously, and an application keeps
*two* always-fresh standing queries —

1. **talent scouting** (KWS): which users have both a *musician* and a
   *label* within 2 hops?
2. **reachability watch** (RPQ): which user pairs are connected by a
   path matching ``musician label*``?

Both views register against a single engine owning one authoritative
graph; every round, one ``engine.apply(ΔG)`` normalizes the batch once,
applies ``G ⊕ ΔG`` once, and *routes* the update: each view's relevance
filter selects the sub-delta that can affect its answer, and views
routed nothing are skipped at zero cost — the per-round report shows how
many of the batch's updates each view actually absorbed.  The run
cross-checks against from-scratch recomputation, then widens the KWS
bound in place via the snapshot mechanism of Section 4.2's Remark.

The session is also *durable*: a :class:`repro.persist.SnapshotStore`
journals every batch, and an auto-:class:`repro.persist.SnapshotPolicy`
(every 2 batches) writes **incremental** snapshots mid-stream — only the
view sections the dirty set says changed are re-serialized; clean
sections are carried forward by record copy.

The run also exercises the view *lifecycle*: an SCC watch is declared
with ``build="on_first_apply"`` — the engine reserves the name but defers
the from-scratch Tarjan build until the stream actually reaches it — and
is later ``deregister``-ed mid-stream once the community scan is done,
without disturbing the other standing queries.

Run:  python examples/social_stream_monitor.py
"""

import tempfile
import time
from pathlib import Path

from repro import Engine, SnapshotPolicy, SnapshotStore
from repro.graph.updates import random_delta
from repro.kws import KWSIndex, batch_kws
from repro.kws.snapshot import extend_bound, profile_with_bound
from repro.rpq import RPQIndex, rpq_nfa
from repro.scc import SCCIndex, tarjan_scc
from repro.workloads import livej_like, random_kws_queries

ROUNDS = 6
BATCH_FRACTION = 0.02  # 2% of |E| churn per round


def main() -> None:
    graph = livej_like(scale=0.4, seed=11)
    print(f"social graph: {graph}")

    query = random_kws_queries(graph, count=1, m=2, bound=2, seed=7)[0]
    musician, label = query.keywords[0], query.keywords[1]
    regex = f"{musician} {label}*"
    print(f"watching keywords {query.keywords} within {query.bound} hops")
    print(f"watching paths matching {regex!r}\n")

    engine = Engine(graph)
    kws = engine.register("kws", lambda g, meter: KWSIndex(g, query, meter=meter))
    rpq = engine.register("rpq", lambda g, meter: RPQIndex(g, regex, meter=meter))
    # Declared now, built lazily: the Tarjan pass runs only when the
    # first batch reaches the view (build="on_first_apply").
    engine.register(
        "communities", lambda g, meter: SCCIndex(g, meter=meter),
        build="on_first_apply",
    )
    print(
        f"initial matches: {len(kws.roots())} roots, {len(rpq.matches)} path pairs"
    )
    build_cost = engine.meter("kws").total() + engine.meter("rpq").total()
    for name in engine.names():
        engine.meter(name).reset()

    # Durability: journal every batch; auto-snapshot incrementally every
    # 2 batches (only dirty view sections are re-serialized).
    store_root = Path(tempfile.mkdtemp(prefix="repro-social-"))
    store = SnapshotStore(store_root)
    store.save(engine)
    policy = SnapshotPolicy(every_batches=2)
    store.attach(engine, policy=policy)
    print(f"journaling to {store_root} (auto-snapshot every {policy.every_batches} batches)\n")

    incremental_seconds = 0.0
    batch_seconds = 0.0
    batch_size = round(graph.num_edges * BATCH_FRACTION)

    for round_number in range(1, ROUNDS + 1):
        delta = random_delta(engine.graph, batch_size, seed=100 + round_number)

        started = time.perf_counter()
        report = engine.apply(delta)  # one G ⊕ ΔG, routed to every view
        incremental_seconds += time.perf_counter() - started

        if round_number == 2:
            # The community scan is complete: detach the SCC view
            # mid-stream; the remaining standing queries are untouched.
            communities = engine.deregister("communities")
            assert communities.components() == tarjan_scc(engine.graph).partition()
            print(
                f"  (community watch done after round {round_number}: "
                f"{len(communities.components())} components; view deregistered)"
            )

        started = time.perf_counter()
        fresh_roots = batch_kws(engine.graph, query)  # recompute comparators
        fresh_pairs = rpq_nfa(engine.graph, regex).matches
        batch_seconds += time.perf_counter() - started

        assert set(fresh_roots) == kws.roots(), "KWS diverged from batch!"
        assert fresh_pairs == rpq.matches, "RPQ diverged from batch!"
        kws_delta = report.output("kws")
        rpq_delta = report.output("rpq")
        routed = {
            name: f"{view.routed_updates}/{len(report.delta)}"
            for name, view in report.views.items()
        }
        print(
            f"round {round_number}: |ΔG|={len(report.delta)}  "
            f"kws +{len(kws_delta.added)}/-{len(kws_delta.removed)} "
            f"(~{len(kws_delta.rerouted)} rerouted, "
            f"{report.cost('kws').total()} events)  "
            f"rpq +{len(rpq_delta.added)}/-{len(rpq_delta.removed)} "
            f"({report.cost('rpq').total()} events)  "
            f"routed {routed}"
        )

    print(
        f"\ncumulative time: incremental {incremental_seconds * 1e3:.1f} ms "
        f"(incl. journal fsyncs + {policy.saves} auto-snapshots) vs "
        f"recompute-every-round {batch_seconds * 1e3:.1f} ms, and recompute "
        f"buys no durability"
    )
    maintained = sum(engine.meter(name).total() for name in engine.names())
    print(
        f"incremental work since build: {maintained:,} events "
        f"(initial build was {build_cost:,})"
    )

    # Per-view routing scoreboard: batches absorbed vs. skipped entirely.
    print("\nrouting scoreboard (relevance-routed fan-out):")
    for name, stats in engine.routing_stats().items():
        print(
            f"  {name:>4}: {stats.batches_routed} batches absorbed, "
            f"{stats.batches_skipped} skipped, "
            f"{stats.updates_delivered} unit updates delivered"
        )
    print(
        f"auto-snapshots written: {policy.saves} (incremental — clean view "
        f"sections carried forward); dirty now: {sorted(engine.dirty_views()) or '[]'}"
    )

    # Prove the durable state is live: recover and compare.
    revived = store.load()
    assert revived["kws"].roots() == kws.roots(), "recovery diverged!"
    assert revived["rpq"].matches == rpq.matches, "recovery diverged!"
    print("recovered session from snapshot + log tail: answers identical")

    # ------------------------------------------------------------------
    # Widening the radius without recomputation (Section 4.2, Remark)
    # ------------------------------------------------------------------
    wider = query.bound + 2
    before = len(kws.roots())
    delta_o = extend_bound(kws, wider)
    print(
        f"\nextended bound {query.bound} -> {wider} in place: "
        f"{before} -> {len(kws.roots())} roots (+{len(delta_o.added)})"
    )
    narrow_again = profile_with_bound(kws, query.bound)
    assert len(narrow_again) == before, "narrow view must match the old answer"
    print(f"narrow view at bound {query.bound} still answerable: {len(narrow_again)} roots")


if __name__ == "__main__":
    main()

""":class:`DataflowView` — any dataflow program as an engine view.

A *program* is a named builder that wires a :class:`~repro.dataflow.
runtime.Dataflow` graph over two input relations mirroring the shared
:class:`~repro.graph.digraph.DiGraph`:

* ``inputs.nodes`` — rows ``(node, label)``;
* ``inputs.edges`` — rows ``(source, target, source_label,
  target_label)`` (endpoint labels are denormalized into the row, so
  most programs never join against ``nodes``).

Wrapping the program's output node, :class:`DataflowView` implements
the full 8-method :class:`~repro.engine.view.IncrementalView` protocol:
``absorb`` translates a normalized ΔG into input-var deltas and runs
one ``stabilize()`` (cost proportional to the change, metered through
the view's :class:`~repro.core.cost.CostMeter`); ``snapshot`` emits the
observed output in canonical row order under the ``"dataflow"`` kind
tag; ``restore`` re-derives the view by re-running the program over the
restored graph — sound because the dataflow state is a pure function of
``(graph, program)``, and verified against the stored records on every
load; ``relevance`` is the program's declared routing filter
(:class:`~repro.engine.relevance.SubscribeAll` when undeclared).

Registering a program makes it loadable by name from snapshots::

    >>> from repro import DiGraph
    >>> from repro.dataflow import DataflowView
    >>> g = DiGraph(labels={1: "a", 2: "b"}, edges=[(1, 2)])
    >>> view = DataflowView(g, "edge-label-count")
    >>> sorted(view.value())
    [('a', 'b', 1)]
    >>> view.insert_edge(2, 1).added
    ((('b', 'a', 1), 1),)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.core.cost import CostMeter, NULL_METER
from repro.core.delta import Delta
from repro.engine.relevance import DeltaFilter, SubscribeAll
from repro.engine.view import ViewSnapshot
from repro.graph.digraph import DiGraph, Node
from repro.kws.kdist import node_order

from repro.dataflow.runtime import Dataflow, Observer, Var, row_order

__all__ = [
    "DataflowDelta",
    "DataflowView",
    "GraphInputs",
    "Program",
    "register_program",
    "registered_programs",
]


@dataclass(frozen=True)
class DataflowDelta:
    """ΔO of a dataflow view: output rows entering/leaving, with
    multiplicities (``(row, count)`` pairs in canonical order).  Scalar
    outputs report the old value as removed and the new as added."""

    added: tuple
    removed: tuple

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed)


@dataclass(frozen=True)
class GraphInputs:
    """The two input relations every program is built over."""

    nodes: Var
    edges: Var


@dataclass(frozen=True)
class Program:
    """A registered standing-query builder.

    ``builder(flow, inputs, *args)`` returns the output node;
    ``relevance(*args)`` (optional) returns the routing
    :class:`~repro.engine.relevance.DeltaFilter` the view declares.
    """

    name: str
    builder: Callable
    relevance: Optional[Callable] = None
    description: str = ""


_PROGRAMS: dict[str, Program] = {}


def register_program(
    name: str,
    builder: Callable,
    relevance: Optional[Callable] = None,
    description: str = "",
) -> Program:
    """Register a program under ``name`` (snapshot config round-trips by
    name, so restoring a saved view requires its program registered)."""
    existing = _PROGRAMS.get(name)
    if existing is not None and existing.builder is not builder:
        raise ValueError(f"program {name!r} is already registered")
    program = Program(name, builder, relevance, description)
    _PROGRAMS[name] = program
    return program


def registered_programs() -> tuple[str, ...]:
    """The registered program names, sorted."""
    return tuple(sorted(_PROGRAMS))


class DataflowView:
    """An incrementally maintained view defined by a dataflow program."""

    def __init__(
        self,
        graph: DiGraph,
        program: str,
        *args,
        meter: CostMeter = NULL_METER,
    ) -> None:
        spec = _PROGRAMS.get(program)
        if spec is None:
            raise ValueError(
                f"unknown dataflow program {program!r}; registered: "
                f"{', '.join(registered_programs()) or '(none)'}"
            )
        for arg in args:
            if not isinstance(arg, (int, str)):
                raise ValueError(
                    f"program arguments must be int/str tokens, got {arg!r}"
                )
        self.graph = graph
        self.meter = meter
        self.program = spec.name
        self.args = tuple(args)
        self.flow = Dataflow(meter=meter)
        self.inputs = GraphInputs(
            self.flow.var(name="graph.nodes"), self.flow.var(name="graph.edges")
        )
        output = spec.builder(self.flow, self.inputs, *args)
        self.observer: Observer = self.flow.observe(output)
        self._relevance: DeltaFilter = (
            spec.relevance(*args) if spec.relevance else SubscribeAll()
        )
        label = graph.label
        self.inputs.nodes.update(
            {(node, label(node)): 1 for node in graph.nodes()}
        )
        self.inputs.edges.update(
            {
                (source, target, label(source), label(target)): 1
                for source, target in graph.edges()
            }
        )
        self.flow.stabilize()
        self.observer.take_delta()  # construction is not a ΔO

    # ------------------------------------------------------------------
    # IncrementalView protocol
    # ------------------------------------------------------------------

    def insert_edge(self, source: Node, target: Node, **labels) -> DataflowDelta:
        """Unit insertion: mutate the graph, restabilize, return ΔO."""
        from repro.core.delta import insert

        return self.apply(
            Delta(
                [
                    insert(
                        source,
                        target,
                        source_label=labels.get("source_label", ""),
                        target_label=labels.get("target_label", ""),
                    )
                ]
            )
        )

    def delete_edge(self, source: Node, target: Node) -> DataflowDelta:
        """Unit deletion: mutate the graph, restabilize, return ΔO."""
        from repro.core.delta import delete

        return self.apply(Delta([delete(source, target)]))

    def apply(self, delta: Delta) -> DataflowDelta:
        """Batch update: mutate the graph once, restabilize, return ΔO."""
        if not delta.is_normalized():
            delta = delta.normalized()
        new_nodes: list[Node] = []
        for update in delta.deletions:
            self.graph.remove_edge(update.source, update.target)
        for update in delta.insertions:
            for node, label in (
                (update.source, update.source_label),
                (update.target, update.target_label),
            ):
                if node not in self.graph:
                    self.graph.add_node(node, label=label)
                    new_nodes.append(node)
            self.graph.add_edge(update.source, update.target)
        return self.absorb(delta, new_nodes)

    def absorb(self, delta: Delta, new_nodes) -> DataflowDelta:
        """Engine fan-out path: the shared graph already holds
        ``G ⊕ ΔG``; translate the batch into input-relation deltas and
        stabilize.  Work (and meter movement) is proportional to the
        change the batch induces, not to the graph."""
        label = self.graph.label
        edge_rows: dict = {}
        for update in delta.deletions:
            row = (
                update.source,
                update.target,
                label(update.source),
                label(update.target),
            )
            edge_rows[row] = edge_rows.get(row, 0) - 1
        for update in delta.insertions:
            row = (
                update.source,
                update.target,
                label(update.source),
                label(update.target),
            )
            edge_rows[row] = edge_rows.get(row, 0) + 1
        node_rows = {
            (node, label(node)): 1
            for node in sorted(new_nodes, key=node_order)
        }
        if node_rows:
            self.inputs.nodes.update(node_rows)
        edge_rows = {row: net for row, net in edge_rows.items() if net}
        if edge_rows:
            self.inputs.edges.update(edge_rows)
        self.flow.stabilize()
        added, removed = self.observer.take_delta()
        return DataflowDelta(added, removed)

    def snapshot(self) -> ViewSnapshot:
        """Observed output as canonical token rows.

        Config row: ``(program_name, *args)``.  Relation outputs emit
        one ``(*row, count)`` record per distinct row in
        :func:`~repro.dataflow.runtime.row_order`; scalar outputs emit
        the single record ``(value,)``.  Canonical by construction, so
        routed and broadcast twins serialize byte-identically."""
        output = self.observer.node
        if output.is_relation:
            value = output.value
            records = tuple(
                (*row, value[row]) for row in sorted(value, key=row_order)
            )
        else:
            records = ((output.value,),)
        return ViewSnapshot(
            kind="dataflow",
            config=(self.program, *self.args),
            records=records,
        )

    @classmethod
    def restore(
        cls,
        graph: DiGraph,
        state: ViewSnapshot,
        meter: CostMeter = NULL_METER,
    ) -> "DataflowView":
        """Rebuild the view by re-running its program over ``graph``.

        The dataflow state is a pure function of ``(graph, program,
        args)``, so re-derivation is exact; the recomputed output is
        verified against the stored records, making every load an
        integrity check of the section."""
        if state.kind != "dataflow":
            raise ValueError(
                f"expected a 'dataflow' snapshot, got {state.kind!r}"
            )
        program, args = state.config[0], tuple(state.config[1:])
        view = cls(graph, program, *args, meter=meter)
        rebuilt = view.snapshot().records
        if rebuilt != state.records:
            raise ValueError(
                f"dataflow view {program!r} diverged from its snapshot: "
                f"recomputed {len(rebuilt)} record(s), stored "
                f"{len(state.records)}; the section does not match the "
                "graph it was saved with"
            )
        return view

    def relevance(self) -> DeltaFilter:
        """The program's declared routing filter (conservative by
        contract; ``SubscribeAll`` when the program declares none)."""
        return self._relevance

    def empty_output(self) -> DataflowDelta:
        """The ΔO of a batch the router skipped this view on."""
        return DataflowDelta((), ())

    # ------------------------------------------------------------------
    # Serving surface
    # ------------------------------------------------------------------

    def value(self) -> Any:
        """The standing answer: a ``frozenset`` of distinct output rows
        for relation outputs, the scalar itself otherwise."""
        output = self.observer.node
        if output.is_relation:
            return frozenset(output.value)
        return output.value

"""A small incremental-computation runtime (ROADMAP item 3).

The shape follows janestreet/incremental's variables → incrementals →
observers model: :class:`Var` nodes hold input *relations* (multisets of
flat token rows), combinator nodes derive new relations, and
:func:`Dataflow.stabilize` re-evaluates **only dirty nodes, in
topological (height) order, with cutoff** — a node whose recomputation
leaves its value unchanged does not dirty its children, so maintenance
cost is proportional to the change, not to the data.

Relations and deltas
--------------------

A relation value is a multiset ``{row: count}`` with strictly positive
counts; every row is a flat tuple of ``int``/``str`` tokens (the same
token universe as :mod:`repro.graph.io_tokens`, so observed outputs
serialize losslessly).  Change propagates as *deltas* — multisets with
signed counts — pushed from a parent to each child's pending buffer
when the parent's value changes.  Every combinator consumes its pending
deltas incrementally; only its first evaluation reads full parent
values.

Combinators
-----------

``map``/``filter`` (per-row), ``join`` (keyed, bilinear in both input
deltas), ``reduce`` (group-aggregate with invertible step), ``distinct``
(set projection), ``count`` (scalar cardinality), ``map_value``/``map2``
(whole-value functions with equality cutoff), and a bounded ``fixpoint``
for reachability-style recursion.  The fixpoint owns a private *inner
region* of nodes (its recursion variable and everything its step
builder creates); inner nodes are excluded from global stabilization
and iterated to convergence inside the fixpoint's own evaluation —
semi-naive for free, because each iteration feeds the recursion
variable's *diff* through the incremental inner combinators.

Example::

    >>> flow = Dataflow()
    >>> edges = flow.var(name="edges")
    >>> out_deg = flow.reduce(edges, key=lambda row: row[0],
    ...                       zero=0, step=lambda acc, row, c: acc + c)
    >>> obs = flow.observe(out_deg)
    >>> edges.update({("a", "b"): 1, ("a", "c"): 1})
    >>> _ = flow.stabilize()
    >>> sorted(obs.rows())
    [('a', 2)]
    >>> edges.update({("a", "c"): -1})
    >>> _ = flow.stabilize()
    >>> sorted(obs.rows())
    [('a', 1)]
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator, Optional

from repro.core.cost import CostMeter, NULL_METER

__all__ = [
    "Dataflow",
    "DataflowError",
    "FixpointDivergenceError",
    "Node",
    "Observer",
    "Var",
    "row_order",
]

Row = tuple
Multiset = dict

#: Fixpoints refusing to converge within this many iterations raise
#: :class:`FixpointDivergenceError` (reachability over N product nodes
#: converges in at most N+1 iterations; runaway step functions do not).
DEFAULT_FIXPOINT_BOUND = 1000

_UNSET = object()


class DataflowError(RuntimeError):
    """Misuse of the dataflow runtime (wiring, input, or value errors)."""


class FixpointDivergenceError(DataflowError):
    """A bounded fixpoint failed to converge within its iteration bound."""


def row_order(row: Row) -> tuple:
    """Deterministic total order over heterogeneous token rows.

    Mirrors :func:`repro.kws.kdist.node_order` element-wise so canonical
    serializations never depend on dict/set history.
    """
    return tuple((type(token).__name__, repr(token)) for token in row)


def _apply_delta(value: Multiset, delta: Multiset) -> Multiset:
    """Merge a signed ``delta`` into ``value``; return the *actual*
    (non-zero net) changes.  Counts must never go negative."""
    actual: Multiset = {}
    for row, change in delta.items():
        if change == 0:
            continue
        new_count = value.get(row, 0) + change
        if new_count < 0:
            raise DataflowError(
                f"multiset count for row {row!r} would become {new_count}"
            )
        if new_count:
            value[row] = new_count
        else:
            value.pop(row, None)
        actual[row] = change
    return actual


class Node:
    """One incremental computation; subclasses define ``_recompute``.

    ``value`` is the node's current relation (or scalar, for
    ``count``/``map_value`` nodes); ``eval_count`` counts recomputations
    (the cutoff tests assert on it); ``height`` is 1 + the maximum
    parent height, the topological rank ``stabilize`` schedules by.
    """

    #: Relation nodes hold multiset values and push multiset deltas;
    #: scalar nodes (count, map_value) push ``(old, new)`` pairs.
    is_relation = True

    def __init__(self, flow: "Dataflow", parents: tuple, name: str = "") -> None:
        self.flow = flow
        self.id = flow._register(self)
        self.name = name or f"{type(self).__name__.lstrip('_').lower()}#{self.id}"
        self.parents = parents
        self.children: list = []
        self.height = 1 + max((p.height for p in parents), default=-1)
        self.internal = False
        self.initialized = False
        self.eval_count = 0
        self.value: Any = {} if self.is_relation else None
        self._pending: dict = {}
        self._dirty = True
        for parent in parents:
            if parent.flow is not flow:
                raise DataflowError(
                    f"{self.name} wires across Dataflow instances"
                )
            if self not in parent.children:
                parent.children.append(self)
        flow._mark(self)

    # -- change propagation -------------------------------------------

    def _receive(self, parent: "Node", delta) -> None:
        """A parent changed: buffer its delta, schedule this node."""
        if parent.is_relation:
            bucket = self._pending.get(parent.id)
            if bucket is None:
                bucket = self._pending[parent.id] = {}
            for row, change in delta.items():
                net = bucket.get(row, 0) + change
                if net:
                    bucket[row] = net
                else:
                    bucket.pop(row, None)
        self._dirty = True
        self.flow._mark(self)

    def _take_pending(self, parent: "Node") -> Multiset:
        return self._pending.pop(parent.id, {})

    @property
    def needs_evaluation(self) -> bool:
        """True when stabilize must recompute this node."""
        return self._dirty or not self.initialized or bool(self._pending)

    def evaluate(self) -> bool:
        """Recompute; on change, push the delta to every child."""
        self.eval_count += 1
        self.flow.meter.visit_node(("dataflow", self.id))
        delta = self._recompute()
        self.initialized = True
        self._dirty = False
        self._pending.clear()
        if delta is None:
            return False  # cutoff: unchanged value stops propagation
        for child in self.children:
            child._receive(self, delta)
        return True

    def _recompute(self):
        """Return the pushed delta, or ``None`` when unchanged."""
        raise NotImplementedError

    def _merge(self, out_delta: Multiset) -> Optional[Multiset]:
        """Fold an output delta into ``value``; meter the row writes."""
        actual = _apply_delta(self.value, out_delta)
        if not actual:
            return None
        self.flow.meter.write(len(actual))
        return actual

    def rows(self) -> Iterator[Row]:
        """The relation's distinct rows (positive count)."""
        if not self.is_relation:
            raise DataflowError(f"{self.name} is scalar; read .value")
        return iter(self.value)

    # -- fluent combinator sugar --------------------------------------

    def map(self, fn: Callable[[Row], Optional[Row]], name: str = "") -> "Node":
        """Per-row projection; see :meth:`Dataflow.map`."""
        return self.flow.map(self, fn, name=name)

    def filter(self, predicate: Callable[[Row], bool], name: str = "") -> "Node":
        """Per-row selection; see :meth:`Dataflow.filter`."""
        return self.flow.filter(self, predicate, name=name)

    def distinct(self, name: str = "") -> "Node":
        """Set projection; see :meth:`Dataflow.distinct`."""
        return self.flow.distinct(self, name=name)

    def count(self, name: str = "") -> "Node":
        """Scalar cardinality; see :meth:`Dataflow.count`."""
        return self.flow.count(self, name=name)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} h={self.height}>"


class Var(Node):
    """An input relation, mutated via :meth:`update` / :meth:`replace`."""

    def __init__(self, flow: "Dataflow", name: str = "") -> None:
        super().__init__(flow, (), name=name)
        self._staged: Multiset = {}
        self._replacement: Optional[Multiset] = None

    def update(self, delta: Multiset) -> None:
        """Stage a signed multiset delta; applied at the next stabilize."""
        if self._replacement is not None:
            raise DataflowError(f"{self.name} has a staged replacement")
        for row, change in delta.items():
            if not isinstance(row, tuple):
                raise DataflowError(f"rows must be tuples, got {row!r}")
            net = self._staged.get(row, 0) + change
            if net:
                self._staged[row] = net
            else:
                self._staged.pop(row, None)
        self._dirty = True
        self.flow._mark(self)

    def replace(self, rows: Multiset) -> None:
        """Stage a full replacement; the delta is diffed at stabilize."""
        if self._staged:
            raise DataflowError(f"{self.name} has staged updates")
        self._replacement = dict(rows)
        self._dirty = True
        self.flow._mark(self)

    def _recompute(self):
        if self._replacement is not None:
            new_value, self._replacement = self._replacement, None
            delta = {
                row: count - self.value.get(row, 0)
                for row, count in new_value.items()
                if count != self.value.get(row, 0)
            }
            for row, count in self.value.items():
                if row not in new_value:
                    delta[row] = -count
            return self._merge(delta)
        staged, self._staged = self._staged, {}
        return self._merge(staged)


class _MapNode(Node):
    """Per-row projection; ``fn(row) -> row | None`` (None drops)."""

    def __init__(self, flow, parent, fn, name=""):
        self.fn = fn
        super().__init__(flow, (parent,), name=name)

    def _delta_of(self, in_delta: Multiset) -> Multiset:
        out: Multiset = {}
        for row, change in in_delta.items():
            mapped = self.fn(row)
            if mapped is None:
                continue
            if not isinstance(mapped, tuple):
                raise DataflowError(
                    f"{self.name}: map fn must return a tuple row or "
                    f"None, got {mapped!r}"
                )
            out[mapped] = out.get(mapped, 0) + change
        return out

    def _recompute(self):
        (parent,) = self.parents
        source = parent.value if not self.initialized else self._take_pending(parent)
        return self._merge(self._delta_of(source))


class _FilterNode(Node):
    """Per-row selection by a pure predicate."""

    def __init__(self, flow, parent, predicate, name=""):
        self.predicate = predicate
        super().__init__(flow, (parent,), name=name)

    def _recompute(self):
        (parent,) = self.parents
        source = parent.value if not self.initialized else self._take_pending(parent)
        out = {
            row: change
            for row, change in source.items()
            if self.predicate(row)
        }
        return self._merge(out)


class _JoinNode(Node):
    """Keyed equi-join, bilinear in both input deltas.

    Maintains per-side ``key → multiset-of-rows`` indexes so a delta on
    either side probes only matching keys:
    ``Δ(L ⋈ R) = ΔL ⋈ R ∪ (L ⊕ ΔL) ⋈ ΔR``.
    """

    def __init__(self, flow, left, right, left_key, right_key, merge, name=""):
        self.left_key = left_key
        self.right_key = right_key
        self.merge = merge or (lambda l, r: l + r)
        self._left_index: dict = {}
        self._right_index: dict = {}
        super().__init__(flow, (left, right), name=name)

    def _index_delta(self, index, key_fn, delta):
        for row, change in delta.items():
            key = key_fn(row)
            bucket = index.get(key)
            if bucket is None:
                bucket = index[key] = {}
            net = bucket.get(row, 0) + change
            if net:
                bucket[row] = net
            else:
                bucket.pop(row, None)
                if not bucket:
                    index.pop(key, None)

    def _probe(self, delta, key_fn, other_index, out, left_side):
        meter = self.flow.meter
        for row, change in delta.items():
            bucket = other_index.get(key_fn(row), ())
            for other_row in bucket:
                meter.traverse_edge()
                other_change = bucket[other_row]
                pair = (
                    self.merge(row, other_row)
                    if left_side
                    else self.merge(other_row, row)
                )
                if not isinstance(pair, tuple):
                    raise DataflowError(
                        f"{self.name}: join merge must return a tuple "
                        f"row, got {pair!r}"
                    )
                out[pair] = out.get(pair, 0) + change * other_change

    def _recompute(self):
        left, right = self.parents
        if not self.initialized:
            left_delta = dict(left.value)
            right_delta = dict(right.value)
        elif left is right:
            left_delta = self._take_pending(left)
            right_delta = left_delta
        else:
            left_delta = self._take_pending(left)
            right_delta = self._take_pending(right)
        out: Multiset = {}
        # ΔL against the *old* right index, then ΔR against the *new*
        # left index — together exactly Δ(L ⋈ R).
        self._index_delta(self._left_index, self.left_key, left_delta)
        self._probe(left_delta, self.left_key, self._right_index, out, True)
        self._index_delta(self._right_index, self.right_key, right_delta)
        self._probe(right_delta, self.right_key, self._left_index, out, False)
        return self._merge(out)


class _ReduceNode(Node):
    """Group-aggregate with an invertible step.

    ``key(row)`` buckets rows; ``step(acc, row, count)`` folds a signed
    count into the group's accumulator (so ``step`` must be invertible:
    ``step(step(a, r, c), r, -c) == a``).  Output rows are
    ``(*key, acc)`` for tuple keys and ``(key, acc)`` otherwise; a group
    disappears when its row support drops to zero.
    """

    def __init__(self, flow, parent, key, zero, step, name=""):
        self.key = key
        self.zero = zero
        self.step = step
        self._groups: dict = {}
        super().__init__(flow, (parent,), name=name)

    def _out_row(self, key, acc) -> Row:
        return (*key, acc) if isinstance(key, tuple) else (key, acc)

    def _recompute(self):
        (parent,) = self.parents
        source = parent.value if not self.initialized else self._take_pending(parent)
        touched: dict = {}
        for row, change in source.items():
            key = self.key(row)
            if key not in touched:
                touched[key] = self._groups.get(key)
            acc, support = self._groups.get(key, (self.zero, 0))
            self._groups[key] = (self.step(acc, row, change), support + change)
        out: Multiset = {}
        for key, before in touched.items():
            acc, support = self._groups[key]
            if support < 0:
                raise DataflowError(f"group {key!r} support went negative")
            if not support:
                del self._groups[key]
            if before is not None and before[1]:
                old_row = self._out_row(key, before[0])
                out[old_row] = out.get(old_row, 0) - 1
            if support:
                new_row = self._out_row(key, acc)
                out[new_row] = out.get(new_row, 0) + 1
        return self._merge(out)


class _DistinctNode(Node):
    """Set projection: every present row with count 1."""

    def __init__(self, flow, parent, name=""):
        super().__init__(flow, (parent,), name=name)

    def _recompute(self):
        (parent,) = self.parents
        if not self.initialized:
            return self._merge({row: 1 for row in parent.value})
        out: Multiset = {}
        for row, change in self._take_pending(parent).items():
            now = parent.value.get(row, 0)
            before = now - change
            if before <= 0 < now:
                out[row] = out.get(row, 0) + 1
            elif now <= 0 < before:
                out[row] = out.get(row, 0) - 1
        return self._merge(out)


class _CountNode(Node):
    """Scalar multiset cardinality (with multiplicity), incrementally."""

    is_relation = False

    def __init__(self, flow, parent, name=""):
        super().__init__(flow, (parent,), name=name)
        self.value = 0

    def _recompute(self):
        (parent,) = self.parents
        if not self.initialized:
            shift = sum(parent.value.values())
        else:
            shift = sum(self._take_pending(parent).values())
        if not shift:
            return None
        old, self.value = self.value, self.value + shift
        self.flow.meter.write()
        return (old, self.value)


class _MapValueNode(Node):
    """Whole-value function of the parents, with equality cutoff.

    Non-incremental by design (the function sees full parent values);
    use it for cheap scalar post-processing, not for relations.
    ``fn`` must not retain or mutate its arguments.
    """

    is_relation = False

    def __init__(self, flow, parents, fn, name=""):
        self.fn = fn
        super().__init__(flow, parents, name=name)
        self.value = _UNSET

    def _recompute(self):
        new = self.fn(*[parent.value for parent in self.parents])
        if self.initialized and new == self.value:
            return None
        old = None if self.value is _UNSET else self.value
        self.value = new
        self.flow.meter.write()
        return (old, new)


class _FixpointNode(Node):
    """Bounded least fixpoint ``lfp R. distinct(base ∪ step(R))``.

    The step builder's nodes (plus the recursion variable) form a
    private *inner region*: excluded from global stabilization and
    iterated here, in height order, until the reached set stops growing.
    Each iteration replaces the recursion variable, so inner combinators
    see only the per-iteration diff — semi-naive evaluation.  External
    inputs the region reads are wired as parents of this node, so a
    change to any of them re-triggers the fixpoint even when every
    individual inner node would cut off.
    """

    def __init__(self, flow, base, recur, step, inner, externals, bound, name=""):
        self.recur = recur
        self.step = step
        self.bound = bound
        self._inner = sorted(inner, key=lambda node: (node.height, node.id))
        parents = [base]
        for node in externals:
            if node is not base:
                parents.append(node)
        super().__init__(flow, tuple(parents), name=name)
        # the step node itself may be external (degenerate, non-recursive
        # builders); its height must still precede ours.
        self.height = max(self.height, step.height + 1, recur.height + 1)

    def _run_inner(self) -> None:
        for node in self._inner:
            if node.needs_evaluation:
                node.evaluate()

    def _recompute(self):
        base = self.parents[0]
        base_rows = {row: 1 for row in base.value}
        reached = base_rows
        for _ in range(self.bound):
            self.recur.replace(reached)
            self._run_inner()
            grown = dict(base_rows)
            if self.step.is_relation:
                for row in self.step.value:
                    grown[row] = 1
            else:
                raise DataflowError(
                    f"{self.name}: fixpoint step must be a relation"
                )
            if grown == reached:
                delta = {
                    row: 1 for row in reached if row not in self.value
                }
                for row in self.value:
                    if row not in reached:
                        delta[row] = -self.value[row]
                return self._merge(delta)
            reached = grown
        raise FixpointDivergenceError(
            f"{self.name} did not converge within {self.bound} iterations"
        )


class Observer:
    """A leaf subscription: accumulates the observed node's changes.

    ``take_delta()`` drains the accumulated change since the previous
    drain as ``(added, removed)`` tuples of ``(row, count)`` pairs in
    canonical :func:`row_order`; scalar nodes report the old and new
    value as one-token rows.
    """

    def __init__(self, node: Node) -> None:
        self.node = node
        self._accumulated: Multiset = {}
        self._scalar_old: Any = _UNSET
        self._scalar_new: Any = _UNSET
        node.children.append(self)

    def _receive(self, parent: Node, delta) -> None:
        if parent.is_relation:
            for row, change in delta.items():
                net = self._accumulated.get(row, 0) + change
                if net:
                    self._accumulated[row] = net
                else:
                    self._accumulated.pop(row, None)
        else:
            old, new = delta
            if self._scalar_old is _UNSET:
                self._scalar_old = old
            self._scalar_new = new

    @property
    def value(self):
        """The observed node's current value (live; do not mutate)."""
        return self.node.value

    def rows(self) -> Iterator[Row]:
        """Distinct rows of an observed relation."""
        return self.node.rows()

    def take_delta(self) -> tuple[tuple, tuple]:
        """Drain accumulated changes as sorted (added, removed) pairs."""
        if self.node.is_relation:
            added = []
            removed = []
            for row in sorted(self._accumulated, key=row_order):
                change = self._accumulated[row]
                if change > 0:
                    added.append((row, change))
                else:
                    removed.append((row, -change))
            self._accumulated = {}
            return tuple(added), tuple(removed)
        old, new = self._scalar_old, self._scalar_new
        self._scalar_old = self._scalar_new = _UNSET
        if new is _UNSET or old == new:
            return (), ()
        removed = () if old in (None, _UNSET) else (((old,), 1),)
        return (((new,), 1),), removed

    # Observers are leaves; stabilize must never schedule them.
    internal = True
    height = -1
    id = -1
    needs_evaluation = False


class Dataflow:
    """A dataflow graph: variables, combinators, observers, stabilize."""

    def __init__(self, meter: CostMeter = NULL_METER) -> None:
        self.meter = meter
        self.nodes: list[Node] = []
        self._dirty_ids: set[int] = set()
        self._heap: list[tuple[int, int]] = []
        self._capturing: Optional[list[Node]] = None

    # -- bookkeeping ---------------------------------------------------

    def _register(self, node: Node) -> int:
        node_id = len(self.nodes)
        self.nodes.append(node)
        if self._capturing is not None:
            self._capturing.append(node)
        return node_id

    def _mark(self, node: Node) -> None:
        if node.internal or node.id in self._dirty_ids:
            return
        self._dirty_ids.add(node.id)
        heapq.heappush(self._heap, (node.height, node.id))
        self.meter.pq_op()

    # -- constructors --------------------------------------------------

    def var(self, name: str = "") -> Var:
        """A new input relation."""
        return Var(self, name=name)

    def map(self, node: Node, fn, name: str = "") -> Node:
        """Per-row projection: ``fn(row) -> row`` (or None to drop)."""
        self._require_relation(node, "map")
        return _MapNode(self, node, fn, name=name)

    def filter(self, node: Node, predicate, name: str = "") -> Node:
        """Per-row selection by a pure predicate."""
        self._require_relation(node, "filter")
        return _FilterNode(self, node, predicate, name=name)

    def join(
        self,
        left: Node,
        right: Node,
        left_key,
        right_key,
        merge=None,
        name: str = "",
    ) -> Node:
        """Keyed equi-join; ``merge(l_row, r_row)`` shapes the output
        row (default: concatenation)."""
        self._require_relation(left, "join")
        self._require_relation(right, "join")
        return _JoinNode(self, left, right, left_key, right_key, merge, name=name)

    def reduce(self, node: Node, key, zero, step, name: str = "") -> Node:
        """Group-aggregate; see :class:`_ReduceNode` for the contract."""
        self._require_relation(node, "reduce")
        return _ReduceNode(self, node, key, zero, step, name=name)

    def count_by(self, node: Node, key, name: str = "") -> Node:
        """Sugar: per-group row count (``reduce`` with ``acc + count``)."""
        return self.reduce(
            node, key, 0, lambda acc, row, count: acc + count, name=name
        )

    def distinct(self, node: Node, name: str = "") -> Node:
        """Set projection of a multiset relation."""
        self._require_relation(node, "distinct")
        return _DistinctNode(self, node, name=name)

    def count(self, node: Node, name: str = "") -> Node:
        """Scalar cardinality (with multiplicity) of a relation."""
        self._require_relation(node, "count")
        return _CountNode(self, node, name=name)

    def map_value(self, node: Node, fn, name: str = "") -> Node:
        """Whole-value unary function with equality cutoff."""
        return _MapValueNode(self, (node,), fn, name=name)

    def map2(self, left: Node, right: Node, fn, name: str = "") -> Node:
        """Whole-value binary combination with equality cutoff."""
        return _MapValueNode(self, (left, right), fn, name=name)

    def fixpoint(
        self,
        base: Node,
        step,
        bound: int = DEFAULT_FIXPOINT_BOUND,
        name: str = "",
    ) -> Node:
        """Bounded least fixpoint of ``R ↦ distinct(base ∪ step(R))``.

        ``step(recur)`` receives the recursion variable and returns the
        relation derived from it; everything it builds becomes the
        fixpoint's private inner region.  Nesting fixpoints inside a
        step builder is not supported.
        """
        self._require_relation(base, "fixpoint")
        if self._capturing is not None:
            raise DataflowError("fixpoint builders cannot nest")
        self._capturing = captured = []
        try:
            recur = self.var(name=f"{name or 'fixpoint'}.recur")
            step_node = step(recur)
        finally:
            self._capturing = None
        self._require_relation(step_node, "fixpoint step")
        inner = set(captured)
        externals: list[Node] = []
        for node in captured:
            node.internal = True
            self._dirty_ids.discard(node.id)
            for parent in node.parents:
                if parent not in inner and parent not in externals:
                    externals.append(parent)
        return _FixpointNode(
            self, base, recur, step_node, captured, externals, bound, name=name
        )

    def observe(self, node: Node) -> Observer:
        """Subscribe to a node's value and per-stabilize deltas."""
        if node.internal:
            raise DataflowError(f"{node.name} is fixpoint-internal")
        return Observer(node)

    def _require_relation(self, node: Node, combinator: str) -> None:
        if not node.is_relation:
            raise DataflowError(
                f"{combinator} requires a relation input; {node.name} is "
                "scalar (wrap scalar post-processing in map_value/map2)"
            )

    # -- stabilization -------------------------------------------------

    def stabilize(self) -> int:
        """Re-evaluate dirty nodes in topological order; return how many
        nodes recomputed.  Idempotent: a second call with no staged
        input changes evaluates nothing."""
        evaluated = 0
        while self._heap:
            _, node_id = heapq.heappop(self._heap)
            self.meter.pq_op()
            if node_id not in self._dirty_ids:
                continue
            self._dirty_ids.discard(node_id)
            node = self.nodes[node_id]
            if node.needs_evaluation:
                node.evaluate()
                evaluated += 1
        return evaluated

"""Built-in dataflow programs — the standing-query workloads.

Four programs register at import time:

* ``rpq`` (args: query text) — regular path queries as a composition:
  the Glushkov NFA's transition table becomes a static relation, the
  product-graph step is two joins, and reachability is a bounded
  ``fixpoint``.  Answer-equivalent to the hand-written
  :class:`~repro.rpq.incremental.RPQIndex` (the parity suite holds them
  byte-identical), and it declares the identical
  :class:`~repro.engine.relevance.AlphabetRelevance` routing filter.
* ``edge-label-count`` — per ``(source_label, target_label)`` edge
  counts, a ``map`` + ``reduce`` aggregation.
* ``two-hop`` — the distinct ``(x, y, z)`` paths of length two, a
  self-``join`` on the edge relation.
* ``triangle-count`` — the number of directed 3-cycles, maintained as a
  join chain → canonical rotation → ``distinct`` → ``count``.

Example::

    >>> from repro import DiGraph
    >>> from repro.dataflow import DataflowView
    >>> g = DiGraph(labels={1: "a", 2: "a", 3: "a"},
    ...             edges=[(1, 2), (2, 3), (3, 1)])
    >>> DataflowView(g, "triangle-count").value()
    1
    >>> sorted(DataflowView(g, "two-hop").value())
    [(1, 2, 3), (2, 3, 1), (3, 1, 2)]
"""

from __future__ import annotations

from repro.engine.relevance import AlphabetRelevance
from repro.kws.kdist import node_order
from repro.rpq.batch import compile_query

from repro.dataflow.view import GraphInputs, register_program
from repro.dataflow.runtime import Dataflow, Node

__all__ = [
    "build_edge_label_count",
    "build_rpq",
    "build_triangle_count",
    "build_two_hop",
    "rpq_relevance",
]

#: Product reachability converges in at most |V|·|Q| iterations; the
#: bound only exists to turn a runaway recursion into a loud error.
RPQ_FIXPOINT_BOUND = 4096


# ----------------------------------------------------------------------
# rpq — NFA product via join + fixpoint (parity target)
# ----------------------------------------------------------------------


def build_rpq(flow: Dataflow, inputs: GraphInputs, query: str) -> Node:
    """RPQ matches ``(u, v)`` as a dataflow composition.

    Semantics mirror the product BFS of :mod:`repro.rpq.batch`: an
    entry ``(u, v, s)`` means state ``s`` is reachable at ``v`` from
    ``u``'s bootstrap (``s ∈ δ(s0, l(u))`` — the first transition
    consumes the source's own label, so single-node matches exist and
    the empty word is never spellable); a hop over edge ``(x, y)``
    steps ``s' ∈ δ(s, l(y))``; ``(u, v)`` matches when an accepting
    state is reachable at ``v``.
    """
    _, nfa = compile_query(query)
    transitions = flow.var(name="rpq.nfa")
    transitions.update(
        {
            (state, label, target): 1
            for state, by_label in nfa.transitions.items()
            for label, targets in by_label.items()
            for target in targets
        }
    )
    initial = nfa.initial
    start = flow.filter(
        transitions, lambda row: row[0] == initial, name="rpq.start"
    )
    base = flow.join(
        inputs.nodes,
        start,
        left_key=lambda n: n[1],
        right_key=lambda t: t[1],
        merge=lambda n, t: (n[0], n[0], t[2]),
        name="rpq.base",
    )

    def step(recur: Node) -> Node:
        hop = flow.join(
            recur,
            inputs.edges,
            left_key=lambda r: r[1],
            right_key=lambda e: e[0],
            merge=lambda r, e: (r[0], r[2], e[1], e[3]),
            name="rpq.hop",
        )
        return flow.join(
            hop,
            transitions,
            left_key=lambda h: (h[1], h[3]),
            right_key=lambda t: (t[0], t[1]),
            merge=lambda h, t: (h[0], h[2], t[2]),
            name="rpq.step",
        )

    reach = flow.fixpoint(base, step, bound=RPQ_FIXPOINT_BOUND, name="rpq.reach")
    accepting = nfa.accepting
    pairs = flow.map(
        reach,
        lambda r: (r[0], r[1]) if r[2] in accepting else None,
        name="rpq.pairs",
    )
    return flow.distinct(pairs, name="rpq.matches")


def rpq_relevance(query: str) -> AlphabetRelevance:
    """The identical routing filter :class:`~repro.rpq.incremental.
    RPQIndex` declares — product edges consume target labels, bootstraps
    consume start labels."""
    _, nfa = compile_query(query)
    alphabet = nfa.alphabet()
    start_labels = frozenset(
        label for label in alphabet if nfa.start_states(label)
    )
    return AlphabetRelevance(alphabet, start_labels)


# ----------------------------------------------------------------------
# edge-label-count — map + reduce aggregation
# ----------------------------------------------------------------------


def build_edge_label_count(flow: Dataflow, inputs: GraphInputs) -> Node:
    """Rows ``(source_label, target_label, count)`` over all edges."""
    labels = flow.map(
        inputs.edges, lambda e: (e[2], e[3]), name="labels.pairs"
    )
    return flow.count_by(
        labels, lambda row: (row[0], row[1]), name="labels.count"
    )


# ----------------------------------------------------------------------
# two-hop — self-join
# ----------------------------------------------------------------------


def build_two_hop(flow: Dataflow, inputs: GraphInputs) -> Node:
    """Distinct ``(x, y, z)`` with edges ``x→y`` and ``y→z``."""
    hops = flow.join(
        inputs.edges,
        inputs.edges,
        left_key=lambda e: e[1],
        right_key=lambda e: e[0],
        merge=lambda first, second: (first[0], first[1], second[1]),
        name="twohop.join",
    )
    return flow.distinct(hops, name="twohop.paths")


# ----------------------------------------------------------------------
# triangle-count — join chain + canonical rotation + distinct + count
# ----------------------------------------------------------------------


def _canonical_cycle(row):
    """Rotate a 3-cycle so its node_order-minimal node leads — all three
    rotations of one directed triangle collapse to the same row."""
    a, b, c = row
    best = min((a, b, c), key=node_order)
    if best == b:
        return (b, c, a)
    if best == c:
        return (c, a, b)
    return (a, b, c)


def build_triangle_count(flow: Dataflow, inputs: GraphInputs) -> Node:
    """The number of directed 3-cycles, one count per cycle."""
    paths = flow.join(
        inputs.edges,
        inputs.edges,
        left_key=lambda e: e[1],
        right_key=lambda e: e[0],
        merge=lambda first, second: (first[0], first[1], second[1]),
        name="tri.paths",
    )
    cycles = flow.join(
        paths,
        inputs.edges,
        left_key=lambda p: (p[2], p[0]),
        right_key=lambda e: (e[0], e[1]),
        merge=lambda p, _e: _canonical_cycle(p),
        name="tri.cycles",
    )
    return flow.count(flow.distinct(cycles, name="tri.distinct"), name="tri.count")


register_program(
    "rpq",
    build_rpq,
    relevance=rpq_relevance,
    description="RPQ matches as NFA-product join + fixpoint",
)
register_program(
    "edge-label-count",
    build_edge_label_count,
    description="per (source_label, target_label) edge counts",
)
register_program(
    "two-hop",
    build_two_hop,
    description="distinct length-2 paths (x, y, z)",
)
register_program(
    "triangle-count",
    build_triangle_count,
    description="number of directed 3-cycles",
)

"""Composable incremental dataflow (ROADMAP item 3).

:mod:`repro.dataflow.runtime` is the variables → incrementals →
observers engine (:class:`Var`, combinators, :func:`stabilize` with
topological dirty re-evaluation and cutoff); :mod:`repro.dataflow.view`
wraps any program as an engine-registrable
:class:`~repro.engine.view.IncrementalView`;
:mod:`repro.dataflow.library` ships the built-in standing queries
(``rpq``, ``edge-label-count``, ``two-hop``, ``triangle-count``).

See ``docs/DATAFLOW.md`` for the combinator catalogue, the stabilize
contract, and the define-your-own-view walkthrough.
"""

from repro.dataflow.runtime import (
    Dataflow,
    DataflowError,
    FixpointDivergenceError,
    Node,
    Observer,
    Var,
    row_order,
)
from repro.dataflow.view import (
    DataflowDelta,
    DataflowView,
    GraphInputs,
    Program,
    register_program,
    registered_programs,
)
from repro.dataflow import library  # noqa: F401  (registers built-ins)

__all__ = [
    "Dataflow",
    "DataflowDelta",
    "DataflowError",
    "DataflowView",
    "FixpointDivergenceError",
    "GraphInputs",
    "Node",
    "Observer",
    "Program",
    "Var",
    "register_program",
    "registered_programs",
    "row_order",
]

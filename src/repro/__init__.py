"""repro — Incremental Graph Computations: Doable and Undoable.

A from-scratch reproduction of Fan, Hu & Tian (SIGMOD 2017): incremental
algorithms with performance guarantees for four graph query classes —

* **KWS** (keyword search)      — localizable:        :class:`repro.kws.KWSIndex`
* **ISO** (subgraph isomorphism)— localizable:        :class:`repro.iso.ISOIndex`
* **RPQ** (regular path queries)— relatively bounded: :class:`repro.rpq.RPQIndex`
* **SCC** (strong components)   — relatively bounded: :class:`repro.scc.SCCIndex`

plus every batch substrate (Tarjan, VF2, NFA-guided RPQ, BLINKS-style
KWS), the theory artifacts of Theorem 1 (Δ-reductions, lower-bound
gadgets), workload/dataset generators, and a benchmark harness that
regenerates every figure of the paper's evaluation.

Quickstart::

    from repro import DiGraph, Delta, insert, delete
    from repro.kws import KWSIndex, KWSQuery

    g = DiGraph(labels={1: "paper", 2: "author", 3: "venue"},
                edges=[(1, 2), (1, 3)])
    index = KWSIndex(g, KWSQuery(("author", "venue"), bound=2))
    index.roots()                       # {1}
    index.delete_edge(1, 3)             # incremental ΔO, not recompute
"""

from repro.core.cost import CostLedger, CostMeter
from repro.core.delta import Delta, InvalidDeltaError, Update, delete, insert
from repro.dataflow import Dataflow, DataflowView, register_program
from repro.engine import (
    Engine,
    EngineError,
    EngineReport,
    IncrementalSession,
    IncrementalView,
    ViewSnapshot,
)
from repro.graph.digraph import DiGraph
from repro.graph.sharding import ShardedGraphStore, ShardMap
from repro.graph.updates import delta_fraction, random_delta
from repro.persist import (
    DeltaLog,
    SegmentedDeltaLog,
    SnapshotPolicy,
    SnapshotStore,
    load_session,
    save_session,
)
from repro.serving import (
    ReadSession,
    Repository,
    ServingError,
    ServingFrontend,
    SessionLimitError,
)

__version__ = "1.2.0"

__all__ = [
    "CostLedger",
    "CostMeter",
    "Dataflow",
    "DataflowView",
    "Delta",
    "DeltaLog",
    "DiGraph",
    "Engine",
    "EngineError",
    "EngineReport",
    "IncrementalSession",
    "IncrementalView",
    "InvalidDeltaError",
    "ReadSession",
    "Repository",
    "SegmentedDeltaLog",
    "ShardMap",
    "ShardedGraphStore",
    "ServingError",
    "ServingFrontend",
    "SessionLimitError",
    "SnapshotPolicy",
    "SnapshotStore",
    "Update",
    "ViewSnapshot",
    "delete",
    "delta_fraction",
    "insert",
    "load_session",
    "random_delta",
    "register_program",
    "save_session",
    "__version__",
]

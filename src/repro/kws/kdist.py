"""Keyword-distance lists kdist(·) — the KWS auxiliary structure
(paper Section 4.2, "Data structures").

For each node ``v`` and keyword ``k`` of the query, ``kdist(v)[k]`` holds

* ``dist`` — the length of the shortest *directed* path from ``v`` to any
  node labeled ``k`` (0 when ``l(v) = k``), provided it is ≤ the bound
  ``b``; entries beyond the bound are simply absent (the paper's ⊥), and
* ``next`` — the successor of ``v`` on the *chosen* shortest path
  (``None`` when ``dist`` is 0).  Ties are broken by a fixed total order
  on nodes ("a single shortest path is selected with a predefined order in
  case of a tie"), so each root determines a unique match tree.

:class:`KDistIndex` also maintains, per keyword, the reverse next-pointer
map ``parents_of`` (who routes through me?) so incremental algorithms can
walk affected chains upstream without scanning all predecessors, and so ΔO
can be confined to the 2b-neighborhood of ΔG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.graph.digraph import Label, Node


def node_order(node: Node) -> tuple[str, str]:
    """A total order over heterogeneous nodes used for all tie-breaking."""
    return (type(node).__name__, repr(node))


@dataclass(frozen=True)
class KDistEntry:
    """One ``(dist, next)`` pair; immutable so old values can be snapshotted
    by identity during incremental passes."""

    dist: int
    next: Optional[Node]

    def __post_init__(self) -> None:
        if self.dist < 0:
            raise ValueError(f"distance must be non-negative, got {self.dist}")
        if self.dist == 0 and self.next is not None:
            raise ValueError("a node matching the keyword has no next hop")
        if self.dist > 0 and self.next is None:
            raise ValueError("a positive distance requires a next hop")


@dataclass(frozen=True)
class KWSQuery:
    """A keyword query Q = (k1, ..., km) with bound b (paper Section 2.1)."""

    keywords: tuple[Label, ...]
    bound: int

    def __post_init__(self) -> None:
        if not self.keywords:
            raise ValueError("a keyword query needs at least one keyword")
        if len(set(self.keywords)) != len(self.keywords):
            raise ValueError("keywords must be distinct")
        if self.bound < 0:
            raise ValueError(f"bound must be non-negative, got {self.bound}")

    @property
    def m(self) -> int:
        return len(self.keywords)

    def with_bound(self, bound: int) -> "KWSQuery":
        return KWSQuery(self.keywords, bound)


class KDistIndex:
    """Mutable kdist(·) store with reverse next-pointer maintenance.

    Entries are exposed per keyword as ``{node: KDistEntry}``; an absent
    node means dist > b (the paper's ⟨⊥, nil⟩).
    """

    def __init__(self, query: KWSQuery) -> None:
        self.query = query
        self._entries: dict[Label, dict[Node, KDistEntry]] = {
            keyword: {} for keyword in query.keywords
        }
        # parents_of[k][x] = {u : kdist(u)[k].next == x}
        self._parents_of: dict[Label, dict[Node, set[Node]]] = {
            keyword: {} for keyword in query.keywords
        }

    # ------------------------------------------------------------------

    def get(self, node: Node, keyword: Label) -> Optional[KDistEntry]:
        """The entry or ``None`` (⊥)."""
        return self._entries[keyword].get(node)

    def dist(self, node: Node, keyword: Label) -> Optional[int]:
        entry = self._entries[keyword].get(node)
        return entry.dist if entry else None

    def entries(self, keyword: Label) -> dict[Node, KDistEntry]:
        """Read-only view of one keyword's entries (do not mutate)."""
        return self._entries[keyword]

    def parents_of(self, node: Node, keyword: Label) -> frozenset[Node]:
        """Nodes whose chosen shortest path routes through ``node``."""
        return frozenset(self._parents_of[keyword].get(node, ()))

    # ------------------------------------------------------------------

    def set(self, node: Node, keyword: Label, entry: KDistEntry) -> None:
        """Write an entry, keeping the reverse next-pointer map in sync."""
        old = self._entries[keyword].get(node)
        if old is not None and old.next is not None:
            self._parents_of[keyword][old.next].discard(node)
        self._entries[keyword][node] = entry
        if entry.next is not None:
            self._parents_of[keyword].setdefault(entry.next, set()).add(node)

    def clear(self, node: Node, keyword: Label) -> None:
        """Drop an entry (dist exceeded the bound)."""
        old = self._entries[keyword].pop(node, None)
        if old is not None and old.next is not None:
            self._parents_of[keyword][old.next].discard(node)

    # ------------------------------------------------------------------

    def complete_roots(self) -> set[Node]:
        """Nodes having entries for *all* keywords — the match roots."""
        keywords = self.query.keywords
        smallest = min(keywords, key=lambda k: len(self._entries[k]))
        roots = set(self._entries[smallest])
        for keyword in keywords:
            if keyword != smallest:
                roots &= self._entries[keyword].keys()
        return roots

    def is_root(self, node: Node) -> bool:
        return all(node in self._entries[k] for k in self.query.keywords)

    def upstream_closure(self, seeds: dict[Label, set[Node]]) -> set[Node]:
        """All nodes whose chosen path (for some keyword) passes through a
        seed node — the candidates whose match trees changed."""
        result: set[Node] = set()
        for keyword, nodes in seeds.items():
            frontier = list(nodes)
            seen = set(nodes)
            while frontier:
                node = frontier.pop()
                for parent in self._parents_of[keyword].get(node, ()):
                    if parent not in seen:
                        seen.add(parent)
                        frontier.append(parent)
            result |= seen
        return result

    # ------------------------------------------------------------------

    def check_shape(self) -> None:
        """Structural audit: entry constraints and reverse-map consistency."""
        for keyword in self.query.keywords:
            for node, entry in self._entries[keyword].items():
                if entry.dist > self.query.bound:
                    raise AssertionError(
                        f"entry {node!r}/{keyword!r} exceeds bound: {entry.dist}"
                    )
                if entry.next is not None:
                    parents = self._parents_of[keyword].get(entry.next, set())
                    if node not in parents:
                        raise AssertionError(
                            f"reverse map missing {node!r} -> {entry.next!r}"
                        )
            for target, parents in self._parents_of[keyword].items():
                for parent in parents:
                    entry = self._entries[keyword].get(parent)
                    if entry is None or entry.next != target:
                        raise AssertionError(
                            f"stale reverse-map entry {parent!r} -> {target!r}"
                        )

"""Keyword search with distinct roots: batch, IncKWS, snapshots."""

from repro.kws.batch import batch_kws, compute_kdist, verify_kdist
from repro.kws.incremental import KWSDelta, KWSIndex, inc_kws_n
from repro.kws.kdist import KDistEntry, KDistIndex, KWSQuery
from repro.kws.matches import (
    MatchTree,
    all_matches,
    distance_profile,
    follow_path,
    match_at,
)
from repro.kws.snapshot import extend_bound, profile_with_bound

__all__ = [
    "KDistEntry",
    "KDistIndex",
    "KWSDelta",
    "KWSIndex",
    "KWSQuery",
    "MatchTree",
    "all_matches",
    "batch_kws",
    "compute_kdist",
    "distance_profile",
    "extend_bound",
    "follow_path",
    "inc_kws_n",
    "match_at",
    "profile_with_bound",
    "verify_kdist",
]

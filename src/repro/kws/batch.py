"""Batch keyword search — the role BLINKS [27] plays in the paper's
experiments: given Q = (k1..km) and bound b, compute kdist(·) and Q(G)
from scratch.

Per keyword, a multi-source *reverse* BFS from all nodes labeled ``k``
computes bounded shortest forward distances in O(|V| + |E|); a second pass
derives deterministic ``next`` pointers (smallest successor in the fixed
node order among those one step closer).  Total O(m(|V| + |E|)) — the
unit-weight instantiation of the paper's O(m(|V| log |V| + |E|)) bound,
which covers weighted generalizations.
"""

from __future__ import annotations

from collections import deque

from repro.core.cost import CostMeter, NULL_METER
from repro.graph.digraph import DiGraph, Label
from repro.kws.kdist import KDistEntry, KDistIndex, KWSQuery, node_order
from repro.kws.matches import all_matches


def compute_kdist(
    graph: DiGraph,
    query: KWSQuery,
    meter: CostMeter = NULL_METER,
) -> KDistIndex:
    """Build kdist(·) for ``query`` over ``graph`` from scratch."""
    index = KDistIndex(query)
    for keyword in query.keywords:
        _bfs_one_keyword(graph, query.bound, keyword, index, meter)
    return index


def _bfs_one_keyword(
    graph: DiGraph,
    bound: int,
    keyword: Label,
    index: KDistIndex,
    meter: CostMeter,
) -> None:
    """Reverse BFS from keyword nodes; then fix next pointers."""
    dist: dict = {}
    frontier = deque()
    for node in graph.nodes_with_label(keyword):
        dist[node] = 0
        frontier.append(node)
    while frontier:
        node = frontier.popleft()
        meter.visit_node(node)
        depth = dist[node]
        if depth == bound:
            continue
        for predecessor in graph.predecessors(node):
            meter.traverse_edge()
            if predecessor not in dist:
                dist[predecessor] = depth + 1
                frontier.append(predecessor)
    for node, depth in dist.items():
        if depth == 0:
            index.set(node, keyword, KDistEntry(0, None))
            meter.write()
            continue
        next_hop = min(
            (
                successor
                for successor in graph.successors(node)
                if dist.get(successor, bound + 1) == depth - 1
            ),
            key=node_order,
        )
        index.set(node, keyword, KDistEntry(depth, next_hop))
        meter.write()


def batch_kws(
    graph: DiGraph,
    query: KWSQuery,
    meter: CostMeter = NULL_METER,
) -> dict:
    """Recompute Q(G) from scratch — the batch comparator in benchmarks."""
    return all_matches(compute_kdist(graph, query, meter=meter))


def verify_kdist(graph: DiGraph, index: KDistIndex) -> None:
    """Audit an (incrementally maintained) index against recomputation.

    Distances must agree exactly; ``next`` pointers must be *valid* (one
    step closer along an existing edge) but may differ from the batch
    tie-break after incremental updates (see DESIGN.md).
    """
    fresh = compute_kdist(graph, index.query)
    for keyword in index.query.keywords:
        maintained = index.entries(keyword)
        recomputed = fresh.entries(keyword)
        if maintained.keys() != recomputed.keys():
            missing = recomputed.keys() - maintained.keys()
            spurious = maintained.keys() - recomputed.keys()
            raise AssertionError(
                f"kdist domain mismatch for {keyword!r}: "
                f"missing={sorted(map(repr, missing))[:5]} "
                f"spurious={sorted(map(repr, spurious))[:5]}"
            )
        for node, entry in maintained.items():
            expected = recomputed[node]
            if entry.dist != expected.dist:
                raise AssertionError(
                    f"dist mismatch at {node!r}/{keyword!r}: "
                    f"maintained {entry.dist}, recomputed {expected.dist}"
                )
            if entry.dist > 0:
                if not graph.has_edge(node, entry.next):
                    raise AssertionError(
                        f"next pointer {node!r}->{entry.next!r} is not an edge"
                    )
                next_entry = maintained.get(entry.next)
                if next_entry is None or next_entry.dist != entry.dist - 1:
                    raise AssertionError(
                        f"next pointer {node!r}->{entry.next!r} not one step closer"
                    )
    index.check_shape()

"""IncKWS — localizable incremental keyword search (paper Section 4.2).

:class:`KWSIndex` maintains kdist(·) and therefore Q(G) under updates:

* **IncKWS+** (:meth:`KWSIndex.insert_edge`, paper Fig. 1): an insertion
  can only *shorten* distances; the improvement is propagated to ancestors
  with a FIFO queue, confined to the b-neighborhood of the new edge.
* **IncKWS−** (:meth:`KWSIndex.delete_edge`, paper Fig. 3): two phases —
  (A) mark nodes whose chosen shortest path routed through the deleted
  edge, walking reverse next-pointers; (B) compute potential values from
  unaffected successors; (C) settle exact values with a priority queue in
  ascending distance order (Ramalingam–Reps style).
* **batch IncKWS** (:meth:`KWSIndex.apply`, Section 4.2 (3)): interleaves
  all deletions' affected sets and all insertions' improvements through a
  single per-keyword priority queue, so each kdist entry is finalized at
  most once per batch regardless of how many updates touch it.

All three are *localizable*: the work is confined to the b-neighborhoods
of ΔG's endpoints (match updates to 2b), which the test-suite asserts via
cost-meter containment (Theorem 3).

ΔO is reported as a :class:`KWSDelta` of added / removed / rerouted roots;
match trees themselves are derived from kdist(·) (see
:mod:`repro.kws.matches`), so Q(G) ⊕ ΔO is materialized on demand.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

from repro.core.cost import CostMeter, NULL_METER
from repro.core.delta import Delta
from repro.engine.relevance import KeywordRelevance
from repro.engine.view import ViewSnapshot
from repro.graph.digraph import DiGraph, Label, Node
from repro.kws.batch import compute_kdist
from repro.kws.kdist import KDistEntry, KDistIndex, KWSQuery, node_order
from repro.kws.matches import MatchTree, all_matches, distance_profile, match_at

_INF = float("inf")


@dataclass(frozen=True)
class KWSDelta:
    """ΔO for keyword search.

    ``added``/``removed`` are roots whose match appeared/disappeared;
    ``rerouted`` are roots that keep a match but whose tree changed (a
    distance or an edge on some chosen path) — the "replace (u, u''1) with
    (u, u''2) in all the matches" of Fig. 1 lines 9-10.
    """

    added: frozenset[Node]
    removed: frozenset[Node]
    rerouted: frozenset[Node]

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.rerouted)


class KWSIndex:
    """Incrementally maintained keyword-search answers over a graph."""

    def __init__(
        self,
        graph: DiGraph,
        query: KWSQuery,
        meter: CostMeter = NULL_METER,
    ) -> None:
        self.graph = graph
        self.query = query
        self.meter = meter
        self.kdist = compute_kdist(graph, query, meter=meter)
        self._touched: dict[tuple[Node, Label], KDistEntry | None] = {}
        self._last_touched: dict[tuple[Node, Label], KDistEntry | None] = {}

    # ------------------------------------------------------------------
    # Query answers
    # ------------------------------------------------------------------

    def matches(self) -> dict[Node, MatchTree]:
        """Q(G) as {root: match tree}."""
        return all_matches(self.kdist)

    def match_at(self, root: Node) -> MatchTree | None:
        return match_at(self.kdist, root)

    def profile(self) -> dict[Node, dict[Label, int]]:
        """Tie-invariant fingerprint {root: {keyword: dist}}."""
        return distance_profile(self.kdist)

    def roots(self) -> set[Node]:
        return self.kdist.complete_roots()

    # ------------------------------------------------------------------
    # IncKWS+ : unit insertion (paper Fig. 1)
    # ------------------------------------------------------------------

    def insert_edge(self, source: Node, target: Node, **labels) -> KWSDelta:
        """Insert ``(source, target)`` and repair kdist(·); returns ΔO."""
        self._begin_op()
        self._realize_endpoints(source, target, labels)
        self.graph.add_edge(source, target, **labels)
        for keyword in self.query.keywords:
            self._propagate_improvement(source, target, keyword)
        return self._finish_op()

    def _propagate_improvement(self, source: Node, target: Node, keyword: Label) -> None:
        """Fig. 1: BFS of strict improvements along predecessors."""
        target_dist = self._dist_or_inf(target, keyword)
        if not self._relax(source, keyword, target_dist + 1, target):  # line 1
            return
        queue: deque[Node] = deque([source])  # line 3
        while queue:  # lines 4-8
            node = queue.popleft()
            self.meter.visit_node(node)
            node_dist = self.kdist.get(node, keyword).dist
            for predecessor in self.graph.predecessors(node):
                self.meter.traverse_edge()
                if self._relax(predecessor, keyword, node_dist + 1, node):
                    queue.append(predecessor)

    # ------------------------------------------------------------------
    # IncKWS− : unit deletion (paper Fig. 3)
    # ------------------------------------------------------------------

    def delete_edge(self, source: Node, target: Node) -> KWSDelta:
        """Delete ``(source, target)`` and repair kdist(·); returns ΔO."""
        self._begin_op()
        self.graph.remove_edge(source, target)
        for keyword in self.query.keywords:
            entry = self.kdist.get(source, keyword)
            if entry is None or entry.next != target:  # line 1
                continue
            affected = self._mark_affected({source}, keyword)  # lines 2-6
            queue = _SettleQueue(self.meter)
            self._compute_potentials(affected, keyword, queue)  # lines 7-9
            self._settle(keyword, affected, queue)  # lines 10-14
        return self._finish_op()

    def _mark_affected(self, seeds: set[Node], keyword: Label) -> set[Node]:
        """Phase A: closure of reverse next-pointers from ``seeds`` — every
        node whose chosen path routed through a seed."""
        affected = set(seeds)
        stack = list(seeds)
        while stack:
            node = stack.pop()
            self.meter.visit_node(node)
            for parent in self.kdist.parents_of(node, keyword):
                self.meter.traverse_edge()
                if parent not in affected:
                    affected.add(parent)
                    stack.append(parent)
        return affected

    def _compute_potentials(
        self,
        affected: set[Node],
        keyword: Label,
        queue: "_SettleQueue",
    ) -> None:
        """Phase B: per affected node, the best distance through a
        *non-affected* successor (paper Fig. 3 line 8), written into kdist
        as a provisional value and queued for exact settlement."""
        bound = self.query.bound
        for node in affected:
            best_dist = _INF
            best_next = None
            for successor in self.graph.successors(node):
                self.meter.traverse_edge()
                if successor in affected:
                    continue
                successor_entry = self.kdist.get(successor, keyword)
                if successor_entry is None:
                    continue
                candidate = successor_entry.dist + 1
                if candidate < best_dist or (
                    candidate == best_dist
                    and best_next is not None
                    and node_order(successor) < node_order(best_next)
                ):
                    best_dist = candidate
                    best_next = successor
            if best_dist <= bound:
                self._set(node, keyword, KDistEntry(int(best_dist), best_next))
                queue.push(node, int(best_dist))
            else:
                self._clear(node, keyword)

    def _settle(
        self,
        keyword: Label,
        affected: set[Node],
        queue: "_SettleQueue",
    ) -> None:
        """Phase C: Dijkstra-style settlement in ascending distance order
        (paper Fig. 3 lines 10-14; also the batch algorithm's phase (c))."""
        while queue:
            node, dist = queue.pop()
            entry = self.kdist.get(node, keyword)
            if entry is None or entry.dist != dist:
                continue  # stale queue record
            self.meter.visit_node(node)
            for predecessor in self.graph.predecessors(node):
                self.meter.traverse_edge()
                if self._relax(predecessor, keyword, dist + 1, node):
                    queue.push(predecessor, dist + 1)

    # ------------------------------------------------------------------
    # Batch IncKWS (Section 4.2 (3))
    # ------------------------------------------------------------------

    def apply(self, delta: Delta) -> KWSDelta:
        """Process a batch with one priority queue per keyword, finalizing
        each affected entry at most once."""
        if not delta.is_normalized():
            delta = delta.normalized()
        self._begin_op()

        # Realize all graph mutations up front: the paper's phase (a)
        # computes potentials over the *updated* graph ("this edge has
        # already been inspected to compute potential dist value").
        new_nodes: set[Node] = set()
        for update in delta.deletions:
            self.graph.remove_edge(update.source, update.target)
        for update in delta.insertions:
            labels = {
                "source_label": update.source_label,
                "target_label": update.target_label,
            }
            new_nodes |= self._realize_endpoints(update.source, update.target, labels)
            self.graph.add_edge(update.source, update.target)

        self._repair_batch(delta, new_nodes)
        return self._finish_op()

    def absorb(self, delta: Delta, new_nodes: set[Node]) -> KWSDelta:
        """Engine fan-out path: repair kdist(·) for a normalized ``delta``
        the shared graph *already* holds (``G ⊕ ΔG``); ``new_nodes`` are the
        nodes the batch introduced.  Same repair as :meth:`apply`, minus the
        graph mutations."""
        self._begin_op()
        for node in new_nodes:
            label = self.graph.label(node)
            if label in self.query.keywords and self.kdist.get(node, label) is None:
                self._set(node, label, KDistEntry(0, None))
        self._repair_batch(delta, set(new_nodes))
        return self._finish_op()

    def _repair_batch(self, delta: Delta, new_nodes: set[Node]) -> None:
        for keyword in self.query.keywords:
            # Phase (a): affected nodes w.r.t. deletions (plus new nodes,
            # whose distances are unknown), potentials into one queue.
            seeds = {
                update.source
                for update in delta.deletions
                if (entry := self.kdist.get(update.source, keyword)) is not None
                and entry.next == update.target
            }
            affected = self._mark_affected(seeds, keyword) if seeds else set()
            affected |= {
                node for node in new_nodes if self.kdist.get(node, keyword) is None
            }
            queue = _SettleQueue(self.meter)
            self._compute_potentials(affected, keyword, queue)

            # Phase (b): insertions between non-affected endpoints seed the
            # queue instead of propagating eagerly (interleaving point).
            for update in delta.insertions:
                source, target = update.source, update.target
                if source in affected or target in affected:
                    continue
                target_dist = self._dist_or_inf(target, keyword)
                if self._relax(source, keyword, target_dist + 1, target):
                    queue.push(source, int(target_dist) + 1)

            # Phase (c): one settlement pass decides every exact value.
            self._settle(keyword, affected, queue)

    # ------------------------------------------------------------------
    # Engine routing (repro.engine.relevance)
    # ------------------------------------------------------------------

    def relevance(self) -> KeywordRelevance:
        """Routing filter: deletions matter only when a chosen shortest
        path routes through the deleted edge; insertions only when the
        target can supply a distance (an in-bound kdist entry or a
        keyword label); new keyword-labeled nodes always reach
        ``absorb`` for their dist-0 bootstrap."""
        return KeywordRelevance(self)

    def empty_output(self) -> KWSDelta:
        """The ΔO of a batch that touched nothing this view depends on."""
        return KWSDelta(frozenset(), frozenset(), frozenset())

    # ------------------------------------------------------------------
    # Persistence (repro.persist)
    # ------------------------------------------------------------------

    def snapshot(self) -> ViewSnapshot:
        """Capture the maintained kdist(·) as token rows.

        Config row: ``(bound, keyword...)``.  One record per entry:
        ``(keyword, node, dist)`` for keyword-matching nodes (``next`` is
        ``nil``) and ``(keyword, node, dist, next)`` otherwise, nodes in
        :func:`~repro.kws.kdist.node_order` within each keyword — the
        canonical order, so behaviorally identical indexes serialize
        byte-identically regardless of internal dict history.  The
        reverse next-pointer maps are derived state and are rebuilt by
        :meth:`restore`.
        """
        records = []
        for keyword in self.query.keywords:
            entries = self.kdist.entries(keyword)
            for node in sorted(entries, key=node_order):
                entry = entries[node]
                if entry.next is None:
                    records.append((keyword, node, entry.dist))
                else:
                    records.append((keyword, node, entry.dist, entry.next))
        return ViewSnapshot(
            kind="kws",
            config=(self.query.bound, *self.query.keywords),
            records=tuple(records),
        )

    @classmethod
    def restore(
        cls,
        graph: DiGraph,
        state: ViewSnapshot,
        meter: CostMeter = NULL_METER,
    ) -> "KWSIndex":
        """Rebuild an index over ``graph`` from a snapshot — no BFS, just
        entry writes; behaviorally identical to the index that produced
        the snapshot."""
        if state.kind != "kws":
            raise ValueError(f"expected a 'kws' snapshot, got {state.kind!r}")
        bound, *keywords = state.config
        index = cls.__new__(cls)
        index.graph = graph
        index.query = KWSQuery(tuple(keywords), int(bound))
        index.meter = meter
        index.kdist = KDistIndex(index.query)
        for row in state.records:
            keyword, node, dist = row[0], row[1], int(row[2])
            successor = row[3] if len(row) == 4 else None
            index.kdist.set(node, keyword, KDistEntry(dist, successor))
        index._touched = {}
        index._last_touched = {}
        return index

    # ------------------------------------------------------------------
    # ΔO bookkeeping
    # ------------------------------------------------------------------

    def _begin_op(self) -> None:
        self._touched = {}

    def _finish_op(self) -> KWSDelta:
        touched = self._touched
        self._last_touched = touched  # kept for callers composing unit ops
        self._touched = {}
        changed: dict[Label, set[Node]] = {}
        for (node, keyword), old in touched.items():
            if self.kdist.get(node, keyword) != old:
                changed.setdefault(keyword, set()).add(node)
        if not changed:
            return KWSDelta(frozenset(), frozenset(), frozenset())
        candidates = {node for nodes in changed.values() for node in nodes}
        added: set[Node] = set()
        removed: set[Node] = set()
        for node in candidates:
            was_root = all(
                (
                    touched[(node, keyword)]
                    if (node, keyword) in touched
                    else self.kdist.get(node, keyword)
                )
                is not None
                for keyword in self.query.keywords
            )
            is_root = self.kdist.is_root(node)
            if is_root and not was_root:
                added.add(node)
            elif was_root and not is_root:
                removed.add(node)
        rerouted = {
            node
            for node in self.kdist.upstream_closure(changed)
            if self.kdist.is_root(node)
        } - added
        return KWSDelta(frozenset(added), frozenset(removed), frozenset(rerouted))

    def _relax(self, node: Node, keyword: Label, dist: float, via: Node) -> bool:
        """Offer ``node`` the candidate entry ``(dist, via)``.

        A strict distance improvement is written and returns ``True``
        (the caller must propagate/queue ``node``).  An equal-distance
        candidate whose witness precedes the current ``next`` in
        :func:`~repro.kws.kdist.node_order` rewrites only the witness
        and returns ``False`` — the distance is unchanged, so nothing
        propagates.  The tie rule makes the chosen witness independent
        of the order in which candidates are offered: routed fan-out
        (which may legitimately drop an insertion whose target only
        becomes reachable later in the same batch) and broadcast then
        settle on byte-identical kdist state instead of keeping
        whichever equal-length path happened to be written first.
        """
        if dist > self.query.bound:
            return False
        current = self.kdist.get(node, keyword)
        if current is None or dist < current.dist:
            self._set(node, keyword, KDistEntry(int(dist), via))
            return True
        if (
            dist == current.dist
            and current.next is not None
            and node_order(via) < node_order(current.next)
        ):
            self._set(node, keyword, KDistEntry(int(dist), via))
        return False

    def _set(self, node: Node, keyword: Label, entry: KDistEntry) -> None:
        key = (node, keyword)
        if key not in self._touched:
            self._touched[key] = self.kdist.get(node, keyword)
        self.kdist.set(node, keyword, entry)
        self.meter.write()

    def _clear(self, node: Node, keyword: Label) -> None:
        key = (node, keyword)
        if key not in self._touched:
            self._touched[key] = self.kdist.get(node, keyword)
        self.kdist.clear(node, keyword)
        self.meter.write()

    def _dist_or_inf(self, node: Node, keyword: Label) -> float:
        entry = self.kdist.get(node, keyword)
        return entry.dist if entry is not None else _INF

    def _realize_endpoints(self, source: Node, target: Node, labels: dict) -> set[Node]:
        """Create endpoints the graph has not seen; a new node matching a
        keyword gets its dist-0 entry immediately."""
        created: set[Node] = set()
        for node, label_key in ((source, "source_label"), (target, "target_label")):
            if node in self.graph:
                continue
            label = labels.get(label_key, "")
            self.graph.add_node(node, label=label)
            created.add(node)
            if label in self.query.keywords:
                self._set(node, label, KDistEntry(0, None))
        return created


class _SettleQueue:
    """Lazy-deletion binary heap keyed ``(dist, node order)`` — the paper's
    ``qi`` with ``insert``/``pull_min``/``decrease`` (decrease = re-push;
    stale records are skipped against the current kdist value)."""

    def __init__(self, meter: CostMeter) -> None:
        self._heap: list[tuple[int, tuple[str, str], Node]] = []
        self._meter = meter

    def push(self, node: Node, dist: int) -> None:
        heapq.heappush(self._heap, (dist, node_order(node), node))
        self._meter.pq_op()

    def pop(self) -> tuple[Node, int]:
        dist, _, node = heapq.heappop(self._heap)
        self._meter.pq_op()
        return node, dist

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __len__(self) -> int:
        return len(self._heap)


# ----------------------------------------------------------------------
# Unit-at-a-time baseline (IncKWSn in the paper's experiments)
# ----------------------------------------------------------------------


def inc_kws_n(index: KWSIndex, delta: Delta) -> KWSDelta:
    """Process ``delta`` one unit update at a time (no interleaving) —
    the IncKWSn comparator of Section 6."""
    outer_touched: dict = {}
    for update in delta:
        if update.is_insert:
            index.insert_edge(
                update.source,
                update.target,
                source_label=update.source_label,
                target_label=update.target_label,
            )
        else:
            index.delete_edge(update.source, update.target)
        # Merge first-touch records across unit ops into one batch ΔO.
        for key, old in index._last_touched.items():
            outer_touched.setdefault(key, old)
    index._touched = outer_touched
    return index._finish_op()

"""Match trees T(r, p1, ..., pm) (paper Section 2.1, KWS).

A match at root ``r`` is the union of the chosen shortest paths from ``r``
to one node per keyword, subject to the bound; the sum of distances is
minimal because each path is individually shortest.  Matches are *derived*
from kdist(·): following ``next`` pointers from the root materializes the
tree, so the auxiliary structure is the single source of truth and
incremental updates to it implicitly update Q(G) (paper Fig. 1 lines 9-10
"replace (u, u''1) with (u, u''2) in all the matches").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.digraph import Label, Node
from repro.kws.kdist import KDistIndex


class MatchExtractionError(RuntimeError):
    """kdist(·) was inconsistent while following next pointers."""


@dataclass(frozen=True)
class MatchTree:
    """One match: the root plus, per keyword, the chosen shortest path
    (a node tuple starting at the root and ending at the keyword node)."""

    root: Node
    paths: dict[Label, tuple[Node, ...]]

    @property
    def weight(self) -> int:
        """Σ dist(r, p_i) — the quantity the paper minimizes."""
        return sum(len(path) - 1 for path in self.paths.values())

    def distances(self) -> dict[Label, int]:
        return {keyword: len(path) - 1 for keyword, path in self.paths.items()}

    def edges(self) -> set[tuple[Node, Node]]:
        """The union of path edges — the tree as a subgraph."""
        tree_edges: set[tuple[Node, Node]] = set()
        for path in self.paths.values():
            tree_edges.update(zip(path, path[1:]))
        return tree_edges

    def nodes(self) -> set[Node]:
        return {node for path in self.paths.values() for node in path}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MatchTree):
            return NotImplemented
        return self.root == other.root and self.paths == other.paths

    def __hash__(self) -> int:
        return hash((self.root, tuple(sorted(self.paths.items(), key=lambda kv: repr(kv[0])))))


def follow_path(index: KDistIndex, root: Node, keyword: Label) -> tuple[Node, ...]:
    """Materialize the chosen shortest path from ``root`` for ``keyword``."""
    entry = index.get(root, keyword)
    if entry is None:
        raise MatchExtractionError(
            f"{root!r} has no {keyword!r} entry within bound {index.query.bound}"
        )
    path = [root]
    node = root
    remaining = entry.dist
    while entry.next is not None:
        node = entry.next
        path.append(node)
        entry = index.get(node, keyword)
        if entry is None or entry.dist != remaining - 1:
            raise MatchExtractionError(
                f"broken next chain at {node!r} for keyword {keyword!r}"
            )
        remaining = entry.dist
    return tuple(path)


def match_at(index: KDistIndex, root: Node) -> MatchTree | None:
    """The unique match rooted at ``root``, or ``None`` if some keyword is
    out of reach within the bound."""
    if not index.is_root(root):
        return None
    paths = {
        keyword: follow_path(index, root, keyword)
        for keyword in index.query.keywords
    }
    return MatchTree(root=root, paths=paths)


def all_matches(index: KDistIndex) -> dict[Node, MatchTree]:
    """Q(G): the match for every root (paper: r ranges over all nodes)."""
    return {root: match_at(index, root) for root in index.complete_roots()}


def distance_profile(index: KDistIndex) -> dict[Node, dict[Label, int]]:
    """{root: {keyword: dist}} — the tie-invariant fingerprint of Q(G)
    used by equivalence tests (see DESIGN.md on tie-breaking freedom)."""
    return {
        root: {
            keyword: index.get(root, keyword).dist
            for keyword in index.query.keywords
        }
        for root in index.complete_roots()
    }

"""Varying the bound b without recomputation (paper Section 4.2, Remark).

"When change propagation stops at node v due to bound b, we can annotate v
as a 'breakpoint' w.r.t. b ... When given a larger b′, the snapshot is
firstly restored and each breakpoint is regarded as a unit update to G ...
from where the change propagation continues.  In this way, KWS queries
with different b values can be answered using the same data structure."

Key observation: every node whose true distance lies in (b, b′] has its
shortest chain passing through *every* distance level, in particular
through the frontier layer at distance exactly b.  So the breakpoint seeds
are recoverable from the maintained kdist itself — the dist-b layer — and
no extra annotation has to be threaded through the incremental algorithms.

* :func:`extend_bound` resumes propagation outward from that layer,
  mutating the index in place and returning ΔO like any other update.
* :func:`profile_with_bound` answers queries with a *smaller* bound b″ ≤ b
  by filtering ("we only need to store the snapshot of G w.r.t. the
  maximum b that is encountered").
"""

from __future__ import annotations

from repro.graph.digraph import Label, Node
from repro.kws.incremental import KWSDelta, KWSIndex
from repro.kws.kdist import KDistEntry, node_order


def extend_bound(index: KWSIndex, new_bound: int) -> KWSDelta:
    """Grow the index's bound to ``new_bound`` in place, resuming the
    propagation that previously stopped at the old bound; returns ΔO."""
    old_bound = index.query.bound
    if new_bound < old_bound:
        raise ValueError(
            f"cannot shrink the bound in place ({old_bound} -> {new_bound}); "
            "use profile_with_bound for smaller bounds"
        )
    index._begin_op()
    index.query = index.query.with_bound(new_bound)
    index.kdist.query = index.query
    if new_bound == old_bound:
        return index._finish_op()
    # The bound is part of the snapshot config row: tick the meter so an
    # engine's dirty tripwire sees the mutation even when no kdist entry
    # changes (empty frontier) — see Engine.dirty_views.
    index.meter.write()
    for keyword in index.query.keywords:
        _resume_propagation(index, keyword, old_bound, new_bound)
    return index._finish_op()


def _resume_propagation(
    index: KWSIndex,
    keyword: Label,
    old_bound: int,
    new_bound: int,
) -> None:
    """BFS outward from the distance-``old_bound`` layer (the breakpoints'
    successors), assigning levels old_bound+1 .. new_bound."""
    # All frontier seeds share the same distance, so plain layered BFS
    # computes exact new distances; next pointers are derived per layer
    # with the standard deterministic tie-break.
    entries = index.kdist.entries(keyword)
    current_layer = sorted(
        (node for node, entry in entries.items() if entry.dist == old_bound),
        key=node_order,
    )
    depth = old_bound
    while current_layer and depth < new_bound:
        next_layer: list[Node] = []
        for node in current_layer:
            index.meter.visit_node(node)
            for predecessor in index.graph.predecessors(node):
                index.meter.traverse_edge()
                if index.kdist.get(predecessor, keyword) is None:
                    index._set(predecessor, keyword, KDistEntry(depth + 1, node))
                    next_layer.append(predecessor)
        # Re-resolve ties: a layer member may have several successors at
        # the previous depth; pick the smallest, matching the batch rule.
        for node in next_layer:
            best = min(
                (
                    successor
                    for successor in index.graph.successors(node)
                    if (entry := index.kdist.get(successor, keyword)) is not None
                    and entry.dist == depth
                ),
                key=node_order,
            )
            index._set(node, keyword, KDistEntry(depth + 1, best))
        current_layer = sorted(next_layer, key=node_order)
        depth += 1


def profile_with_bound(index: KWSIndex, bound: int) -> dict[Node, dict[Label, int]]:
    """Answer the query with a *smaller* bound from the same structure:
    roots whose every keyword distance is ≤ ``bound``."""
    if bound > index.query.bound:
        raise ValueError(
            f"bound {bound} exceeds the maintained bound {index.query.bound}; "
            "call extend_bound first"
        )
    result: dict[Node, dict[Label, int]] = {}
    for root in index.kdist.complete_roots():
        distances = {
            keyword: index.kdist.get(root, keyword).dist
            for keyword in index.query.keywords
        }
        if all(dist <= bound for dist in distances.values()):
            result[root] = distances
    return result

"""IncRPQ — bounded incremental RPQ relative to RPQ_NFA
(paper Section 5.2, Fig. 5, Example 5).

:class:`RPQIndex` maintains the pmark_e markings (dist/cpre/mpre per
source) and the match set under batch updates:

1. **cpre pruning + identAff** — deleted edges remove their product-graph
   predecessors from cpre/mpre; entries whose mpre empties are *affected*,
   and the invalidation propagates down mpre chains (Fig. 5 line 1).
2. **Potentials** — each affected entry gets a provisional distance from
   its surviving (unaffected) cpre members, queued by distance
   (lines 2-4).
3. **Insertions** — new edges register in cpre and seed the queue where
   they strictly improve an unaffected target (lines 5-8).
4. **Settle** — one global priority queue over (dist, source, node, state)
   fixes exact distances in ascending order, creating entries that become
   newly reachable and deleting affected entries that end unreachable
   (lines 9-10).  Grouping all sources and all updates into one queue is
   what "reduces redundant computations when processing ΔG".

Cost is O(|AFF| log |AFF|): every queue element corresponds to a marking
whose content differs between the batch runs on G and G ⊕ ΔG — exactly the
data RPQ_NFA necessarily inspects differently (the paper's AFF).

ΔO is the pair-level diff: ``RPQDelta(added, removed)`` with
``Q(G ⊕ ΔG) = Q(G) ∪ added − removed``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.core.cost import CostMeter, NULL_METER
from repro.core.delta import Delta
from repro.engine.relevance import AlphabetRelevance
from repro.engine.view import ViewSnapshot
from repro.graph.digraph import DiGraph, Node
from repro.kws.kdist import node_order
from repro.rpq.batch import compile_query, rpq_nfa
from repro.rpq.markings import BOOTSTRAP, MarkEntry, Markings, ProductNode
from repro.rpq.nfa import NFA, State
from repro.rpq.regex import Regex, parse

_INF = float("inf")

AffKey = tuple[Node, Node, State]  # (source u, node v, state s)


@dataclass(frozen=True)
class RPQDelta:
    """ΔO for RPQ: node pairs entering/leaving Q(G)."""

    added: frozenset[tuple[Node, Node]]
    removed: frozenset[tuple[Node, Node]]

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed)


class RPQIndex:
    """Incrementally maintained Q(G) and pmark_e for one RPQ query."""

    def __init__(
        self,
        graph: DiGraph,
        query: Regex | str,
        meter: CostMeter = NULL_METER,
    ) -> None:
        self.graph = graph
        self.meter = meter
        self.query: Regex = parse(query) if isinstance(query, str) else query
        result = rpq_nfa(graph, self.query, meter=meter)
        self.nfa: NFA = result.nfa
        self.markings: Markings = result.markings
        self.matches: set[tuple[Node, Node]] = result.matches
        self._pair_before: dict[tuple[Node, Node], bool] = {}

    # ------------------------------------------------------------------
    # Unit updates (thin wrappers; IncRPQn iterates these)
    # ------------------------------------------------------------------

    def insert_edge(self, source: Node, target: Node, **labels) -> RPQDelta:
        from repro.core.delta import insert

        return self.apply(
            Delta(
                [
                    insert(
                        source,
                        target,
                        source_label=labels.get("source_label", ""),
                        target_label=labels.get("target_label", ""),
                    )
                ]
            )
        )

    def delete_edge(self, source: Node, target: Node) -> RPQDelta:
        from repro.core.delta import delete

        return self.apply(Delta([delete(source, target)]))

    # ------------------------------------------------------------------
    # Batch IncRPQ (paper Fig. 5)
    # ------------------------------------------------------------------

    def apply(self, delta: Delta) -> RPQDelta:
        if not delta.is_normalized():
            delta = delta.normalized()
        self._pair_before = {}

        # Phase 0: graph mutations (potentials are computed on G ⊕ ΔG).
        new_nodes: list[Node] = []
        for update in delta.deletions:
            self.graph.remove_edge(update.source, update.target)
        for update in delta.insertions:
            for node, label in (
                (update.source, update.source_label),
                (update.target, update.target_label),
            ):
                if node not in self.graph:
                    self.graph.add_node(node, label=label)
                    new_nodes.append(node)
            self.graph.add_edge(update.source, update.target)

        return self._repair_batch(delta, new_nodes)

    def absorb(self, delta: Delta, new_nodes) -> RPQDelta:
        """Engine fan-out path: repair markings for a normalized ``delta``
        the shared graph already holds; ``new_nodes`` are the nodes the
        batch introduced.  Same repair as :meth:`apply`, minus phase 0."""
        self._pair_before = {}
        return self._repair_batch(delta, sorted(new_nodes, key=node_order))

    def _repair_batch(self, delta: Delta, new_nodes: list[Node]) -> RPQDelta:
        # Phase 1: prune cpre/mpre along deleted edges; seed identAff.
        seeds: set[AffKey] = set()
        for update in delta.deletions:
            self._prune_deleted_edge(update.source, update.target, seeds)

        # Phase 1b: identAff — close the affected set down mpre chains.
        affected = self._ident_aff(seeds)

        # Phase 1c: register inserted edges in cpre *before* potentials,
        # so an affected entry's potential already sees them (the paper:
        # "this edge has already been inspected to compute potential dist
        # value for node v").
        for update in delta.insertions:
            self._register_insertion_cpre(update.source, update.target)

        # Phase 2: potentials for affected entries (Fig. 5 lines 2-4).
        queue = _GlobalQueue(self.meter)
        for key in affected:
            self._compute_potential(key, affected, queue)

        # Phase 2b: bootstrap entries for new nodes whose label starts M_Q.
        for node in new_nodes:
            start_states = self.nfa.start_states(self.graph.label(node))
            for state in start_states:
                marks = self.markings.source(node)
                if marks.get(node, state) is None:
                    marks.set(
                        node,
                        state,
                        MarkEntry(dist=0, cpre={BOOTSTRAP}, mpre={BOOTSTRAP}),
                    )
                    self.meter.write()
                    self._note_pair(node, node)
                    queue.push(0, node, node, state)

        # Phase 3: insertions (Fig. 5 lines 5-8) — register cpre, seed
        # strict improvements of unaffected targets.
        for update in delta.insertions:
            self._seed_insertion(update.source, update.target, affected, queue)

        # Phase 4: settle exact values in ascending distance (line 9).
        self._settle(queue, affected)

        # Phase 4b: affected entries that stayed unreachable disappear.
        for source, node, state in affected:
            marks = self.markings.get(source)
            entry = marks.get(node, state) if marks else None
            if entry is not None and entry.dist == _INF:
                self._delete_entry(source, node, state)

        # Phase 5: ΔO — re-derive membership for touched pairs (line 10).
        return self._finish_delta()

    # ------------------------------------------------------------------
    # Phase helpers
    # ------------------------------------------------------------------

    def _prune_deleted_edge(self, x: Node, y: Node, seeds: set[AffKey]) -> None:
        """Remove product edges ((x,s),(y,s')) from cpre/mpre; entries whose
        mpre empties are identAff seeds."""
        label_y = self.graph.label(y)
        for source in self.markings.sources_with_entries_at(x):
            marks = self.markings.get(source)
            states_x = marks.states_at(x)
            for state in list(states_x):
                for next_state in self.nfa.delta(state, label_y):
                    entry_y = marks.get(y, next_state)
                    if entry_y is None:
                        continue
                    self.meter.traverse_edge()
                    entry_y.cpre.discard((x, state))
                    if (x, state) in entry_y.mpre:
                        entry_y.mpre.discard((x, state))
                        self.meter.write()
                        if not entry_y.mpre:
                            seeds.add((source, y, next_state))

    def _ident_aff(self, seeds: set[AffKey]) -> set[AffKey]:
        """identAff (Fig. 5 line 1): close ``seeds`` downward — a child
        whose every shortest-path parent is invalidated is itself
        affected."""
        affected: set[AffKey] = set()
        worklist = list(seeds)
        while worklist:
            key = worklist.pop()
            if key in affected:
                continue
            affected.add(key)
            source, node, state = key
            self.meter.visit_node(node)
            marks = self.markings.get(source)
            for successor in self.graph.successors(node):
                self.meter.traverse_edge()
                for next_state in self.nfa.delta(state, self.graph.label(successor)):
                    child = marks.get(successor, next_state)
                    if child is None or (node, state) not in child.mpre:
                        continue
                    child.mpre.discard((node, state))
                    self.meter.write()
                    if not child.mpre:
                        worklist.append((source, successor, next_state))
        return affected

    def _compute_potential(
        self,
        key: AffKey,
        affected: set[AffKey],
        queue: "_GlobalQueue",
    ) -> None:
        """Fig. 5 lines 2-4: provisional dist from surviving cpre members
        (all unaffected candidates achieving the minimum become mpre)."""
        source, node, state = key
        marks = self.markings.get(source)
        entry = marks.get(node, state)
        best = _INF
        best_parents: set[ProductNode] = set()
        for parent in entry.cpre:
            if parent == BOOTSTRAP:
                candidate = 0.0
            else:
                parent_node, parent_state = parent
                if (source, parent_node, parent_state) in affected:
                    continue
                parent_entry = marks.get(parent_node, parent_state)
                if parent_entry is None:
                    continue
                candidate = parent_entry.dist + 1
            if candidate < best:
                best = candidate
                best_parents = {parent}
            elif candidate == best:
                best_parents.add(parent)
        entry.dist = int(best) if best is not _INF else _INF
        entry.mpre = best_parents
        self.meter.write()
        if best is not _INF:
            queue.push(int(best), source, node, state)

    def _register_insertion_cpre(self, x: Node, y: Node) -> None:
        """Add the product edges of a new graph edge to existing targets'
        cpre sets (pure registration; no distance changes)."""
        label_y = self.graph.label(y)
        for source in self.markings.sources_with_entries_at(x):
            marks = self.markings.get(source)
            for state in marks.states_at(x):
                for next_state in self.nfa.delta(state, label_y):
                    entry_y = marks.get(y, next_state)
                    if entry_y is not None:
                        entry_y.cpre.add((x, state))

    def _seed_insertion(
        self,
        x: Node,
        y: Node,
        affected: set[AffKey],
        queue: "_GlobalQueue",
    ) -> None:
        """Fig. 5 lines 5-8 for one inserted edge (x, y): seed strict
        improvements whose endpoints are both unaffected (affected targets
        already saw the edge in their potential; affected sources have
        stale distances and propagate through the queue instead)."""
        label_y = self.graph.label(y)
        for source in self.markings.sources_with_entries_at(x):
            marks = self.markings.get(source)
            states_x = marks.states_at(x)
            for state, entry_x in list(states_x.items()):
                if (source, x, state) in affected:
                    continue  # settle will relax y when x settles
                for next_state in self.nfa.delta(state, label_y):
                    entry_y = marks.get(y, next_state)
                    if entry_y is not None:
                        if (source, y, next_state) in affected:
                            continue  # its potential already saw this edge
                        if entry_x.dist + 1 < entry_y.dist:
                            entry_y.dist = entry_x.dist + 1
                            entry_y.mpre = {(x, state)}
                            self.meter.write()
                            queue.push(entry_y.dist, source, y, next_state)
                        elif entry_x.dist + 1 == entry_y.dist:
                            entry_y.mpre.add((x, state))
                    else:
                        self._create_entry(
                            source, y, next_state, entry_x.dist + 1, (x, state)
                        )
                        queue.push(entry_x.dist + 1, source, y, next_state)

    def _settle(self, queue: "_GlobalQueue", affected: set[AffKey]) -> None:
        """Fig. 5 line 9: ascending-distance settlement over the global
        queue, guided by M_Q."""
        while queue:
            dist, source, node, state = queue.pop()
            marks = self.markings.get(source)
            entry = marks.get(node, state) if marks else None
            if entry is None or entry.dist != dist:
                continue  # stale record
            self.meter.visit_node(node)
            for successor in self.graph.successors(node):
                self.meter.traverse_edge()
                for next_state in self.nfa.delta(state, self.graph.label(successor)):
                    child = marks.get(successor, next_state)
                    if child is None:
                        self._create_entry(
                            source, successor, next_state, dist + 1, (node, state)
                        )
                        queue.push(dist + 1, source, successor, next_state)
                        continue
                    child.cpre.add((node, state))
                    if dist + 1 < child.dist:
                        child.dist = dist + 1
                        child.mpre = {(node, state)}
                        self.meter.write()
                        queue.push(dist + 1, source, successor, next_state)
                    elif dist + 1 == child.dist:
                        child.mpre.add((node, state))

    # ------------------------------------------------------------------
    # Entry lifecycle
    # ------------------------------------------------------------------

    def _create_entry(
        self,
        source: Node,
        node: Node,
        state: State,
        dist: int,
        via: ProductNode,
    ) -> None:
        """Create a newly reached entry; cpre is completed by scanning the
        node's graph predecessors so later deletions see every candidate."""
        marks = self.markings.source(source)
        cpre: set[ProductNode] = set()
        label_node = self.graph.label(node)
        for predecessor in self.graph.predecessors(node):
            self.meter.traverse_edge()
            for pred_state, _ in marks.states_at(predecessor).items():
                if state in self.nfa.delta(pred_state, label_node):
                    cpre.add((predecessor, pred_state))
        if node == source and state in self.nfa.start_states(label_node):
            cpre.add(BOOTSTRAP)
        cpre.add(via)
        marks.set(node, state, MarkEntry(dist=dist, cpre=cpre, mpre={via}))
        self.meter.write()
        if state in self.nfa.accepting:
            self._note_pair(source, node)

    def _delete_entry(self, source: Node, node: Node, state: State) -> None:
        """Drop an unreachable entry and deregister it from successors'
        cpre sets."""
        marks = self.markings.get(source)
        marks.remove(node, state)
        self.meter.write()
        for successor in self.graph.successors(node):
            self.meter.traverse_edge()
            for next_state in self.nfa.delta(state, self.graph.label(successor)):
                child = marks.get(successor, next_state)
                if child is not None:
                    child.cpre.discard((node, state))
        if state in self.nfa.accepting:
            self._note_pair(source, node)

    # ------------------------------------------------------------------
    # Engine routing (repro.engine.relevance)
    # ------------------------------------------------------------------

    def relevance(self) -> AlphabetRelevance:
        """Routing filter: a graph edge only induces product edges via
        ``δ(s, l(target))``, so updates whose target label is outside the
        NFA alphabet can never touch a marking; new nodes matter only
        when their label has start states (``δ(s0, l)`` non-empty)."""
        alphabet = self.nfa.alphabet()
        start_labels = frozenset(
            label for label in alphabet if self.nfa.start_states(label)
        )
        return AlphabetRelevance(alphabet, start_labels)

    def empty_output(self) -> RPQDelta:
        """The ΔO of a batch that touched nothing this view depends on."""
        return RPQDelta(frozenset(), frozenset())

    # ------------------------------------------------------------------
    # Persistence (repro.persist)
    # ------------------------------------------------------------------

    def snapshot(self) -> ViewSnapshot:
        """Capture pmark_e as token rows.

        Config row: ``(query_text,)`` — the regex in the concrete syntax
        of :func:`repro.rpq.regex.parse` (``str(ast)`` round-trips, so
        the NFA is rebuilt, not stored).  One record per marking entry:
        ``(source, node, state, dist)``, in canonical
        ``(source, node, state)`` order so behaviorally identical indexes
        serialize byte-identically regardless of internal dict history.

        ``cpre``/``mpre`` are deliberately *not* stored: a product node
        ``(v', s')`` is in ``(v, s)``'s cpre exactly when ``(v', v)`` is
        a graph edge, ``s ∈ δ(s', l(v))``, and ``(v', s')`` carries an
        entry — the same predecessor scan
        :meth:`RPQIndex._create_entry` performs — and mpre is cpre's
        ``dist(v', s') + 1 = dist(v, s)`` subset (plus the virtual
        :data:`~repro.rpq.markings.BOOTSTRAP` parent at dist 0).  Both
        are re-derived by :meth:`restore`, keeping snapshots linear in
        the number of entries rather than in Σ|cpre|.
        """
        records = []
        for source in sorted(self.markings.sources(), key=node_order):
            marks = self.markings.get(source)
            for node in sorted(marks.by_node, key=node_order):
                states = marks.by_node[node]
                for state in sorted(states):
                    records.append((source, node, state, int(states[state].dist)))
        return ViewSnapshot(
            kind="rpq", config=(str(self.query),), records=tuple(records)
        )

    @classmethod
    def restore(
        cls,
        graph: DiGraph,
        state: ViewSnapshot,
        meter: CostMeter = NULL_METER,
    ) -> "RPQIndex":
        """Rebuild an index over ``graph`` from a snapshot — the NFA is
        recompiled from the query text (O(|Q|)), the entries are writes,
        cpre/mpre come from one predecessor scan per entry (no product
        BFS, no priority queue), and the match set falls out of the
        accepting states."""
        if state.kind != "rpq":
            raise ValueError(f"expected an 'rpq' snapshot, got {state.kind!r}")
        index = cls.__new__(cls)
        index.graph = graph
        index.meter = meter
        index.query, index.nfa = compile_query(state.config[0])
        index.markings = Markings()
        index.matches = set()
        accepting = index.nfa.accepting
        matches = index.matches

        # Pass 1 — bulk-create the entry buckets (plain dict writes; the
        # node → sources reverse index is filled in one sweep afterwards).
        per_source: dict[Node, dict[Node, dict[State, MarkEntry]]] = {}
        for row in state.records:
            source, node, nfa_state, dist = row[0], row[1], int(row[2]), int(row[3])
            by_node = per_source.get(source)
            if by_node is None:
                by_node = per_source[source] = {}
            states = by_node.get(node)
            if states is None:
                states = by_node[node] = {}
            states[nfa_state] = MarkEntry(dist=dist, cpre=set(), mpre=set())
            if nfa_state in accepting:
                matches.add((source, node))
        sources_at = index.markings.sources_at
        for source, by_node in per_source.items():
            marks = index.markings.source(source)
            marks.by_node = by_node
            for node in by_node:
                owners = sources_at.get(node)
                if owners is None:
                    owners = sources_at[node] = set()
                owners.add(source)

        # Pass 2 — derive cpre/mpre over the product edges among restored
        # entries, resolving δ(pred_state, l(v)) once per (pred_state,
        # node) pair — cheaper than the product BFS because nothing is
        # queued, deduplicated, or discovered.
        by_label_state: dict = {}
        for from_state, by_label in index.nfa.transitions.items():
            for label, targets in by_label.items():
                by_label_state.setdefault(label, {})[from_state] = targets
        labels = graph.labels
        predecessors_of = graph.predecessors
        for source, by_node in per_source.items():
            for node, states in by_node.items():
                state_map = by_label_state.get(labels[node])
                if not state_map:
                    continue
                for predecessor in predecessors_of(node):
                    pred_states = by_node.get(predecessor)
                    if not pred_states:
                        continue
                    for pred_state, pred_entry in pred_states.items():
                        targets = state_map.get(pred_state)
                        if not targets:
                            continue
                        parent = (predecessor, pred_state)
                        parent_reach = pred_entry.dist + 1
                        for target_state in targets:
                            entry = states.get(target_state)
                            if entry is not None:
                                entry.cpre.add(parent)
                                if parent_reach == entry.dist:
                                    entry.mpre.add(parent)
            source_states = by_node.get(source)
            if source_states:
                for nfa_state in index.nfa.start_states(labels[source]):
                    entry = source_states.get(nfa_state)
                    if entry is not None:
                        entry.cpre.add(BOOTSTRAP)
                        if entry.dist == 0:
                            entry.mpre.add(BOOTSTRAP)
        index._pair_before = {}
        return index

    # ------------------------------------------------------------------
    # ΔO bookkeeping
    # ------------------------------------------------------------------

    def _note_pair(self, source: Node, node: Node) -> None:
        pair = (source, node)
        if pair not in self._pair_before:
            self._pair_before[pair] = pair in self.matches

    def _finish_delta(self) -> RPQDelta:
        added: set[tuple[Node, Node]] = set()
        removed: set[tuple[Node, Node]] = set()
        for (source, node), was_match in self._pair_before.items():
            marks = self.markings.get(source)
            is_match = bool(marks) and any(
                state in self.nfa.accepting
                for state in marks.states_at(node)
            )
            if is_match and not was_match:
                added.add((source, node))
                self.matches.add((source, node))
            elif was_match and not is_match:
                removed.add((source, node))
                self.matches.discard((source, node))
        self._pair_before = {}
        return RPQDelta(frozenset(added), frozenset(removed))


class _GlobalQueue:
    """Lazy-deletion heap over (dist, source, node, state) — the paper's
    single queue q that interleaves all sources and all updates."""

    def __init__(self, meter: CostMeter) -> None:
        self._heap: list = []
        self._meter = meter

    def push(self, dist: int, source: Node, node: Node, state: State) -> None:
        heapq.heappush(
            self._heap,
            (dist, node_order(source), node_order(node), state, source, node),
        )
        self._meter.pq_op()

    def pop(self) -> tuple[int, Node, Node, State]:
        dist, _, _, state, source, node = heapq.heappop(self._heap)
        self._meter.pq_op()
        return dist, source, node, state

    def __bool__(self) -> bool:
        return bool(self._heap)


# ----------------------------------------------------------------------
# Unit-at-a-time baseline (IncRPQn in the paper's experiments)
# ----------------------------------------------------------------------


def inc_rpq_n(index: RPQIndex, delta: Delta) -> RPQDelta:
    """Process ``delta`` one unit update at a time — the IncRPQn
    comparator of Section 6."""
    added: set[tuple[Node, Node]] = set()
    removed: set[tuple[Node, Node]] = set()
    for update in delta:
        if update.is_insert:
            step = index.insert_edge(
                update.source,
                update.target,
                source_label=update.source_label,
                target_label=update.target_label,
            )
        else:
            step = index.delete_edge(update.source, update.target)
        for pair in step.added:
            if pair in removed:
                removed.discard(pair)
            else:
                added.add(pair)
        for pair in step.removed:
            if pair in added:
                added.discard(pair)
            else:
                removed.add(pair)
    return RPQDelta(frozenset(added), frozenset(removed))

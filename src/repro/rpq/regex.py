"""Regular path query expressions (paper Section 2.1).

    Q ::= ε | α | Q·Q | Q+Q | Q*

where α ranges over node labels.  ``|Q|`` is "the number of occurrences of
labels from Σ in Q" — exactly the number of :class:`Sym` leaves, which is
also the number of Glushkov NFA positions (see :mod:`repro.rpq.nfa`).

The concrete syntax accepted by :func:`parse`:

* labels: identifiers ``[A-Za-z0-9_]+``;
* concatenation ``.``, union ``+``, Kleene star ``*`` (postfix);
* grouping ``( ... )``; epsilon as ``eps``;
* whitespace is insignificant.

Example: ``c . (b . a + c)* . c`` — the query of the paper's Example 4.
"""

from __future__ import annotations

import re as _stdlib_re
from dataclasses import dataclass

from repro.graph.digraph import Label


class RegexSyntaxError(ValueError):
    """Malformed regular path query text."""

    def __init__(self, text: str, position: int, reason: str) -> None:
        pointer = " " * position + "^"
        super().__init__(f"{reason} at position {position}:\n  {text}\n  {pointer}")
        self.position = position


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------


class Regex:
    """Base class for regular path query ASTs (immutable)."""

    __slots__ = ()

    # Combinator sugar so queries compose programmatically:
    def concat(self, other: "Regex") -> "Regex":
        return Concat(self, other)

    def union(self, other: "Regex") -> "Regex":
        return Union(self, other)

    def star(self) -> "Regex":
        return Star(self)

    @property
    def size(self) -> int:
        """|Q| — occurrences of labels (paper's query-size measure)."""
        raise NotImplementedError

    def labels(self) -> frozenset[Label]:
        """The set of distinct labels mentioned."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Epsilon(Regex):
    """The empty path ε."""

    @property
    def size(self) -> int:
        return 0

    def labels(self) -> frozenset[Label]:
        return frozenset()

    def __str__(self) -> str:
        return "eps"


@dataclass(frozen=True, slots=True)
class Sym(Regex):
    """A single label α ∈ Σ."""

    label: Label

    @property
    def size(self) -> int:
        return 1

    def labels(self) -> frozenset[Label]:
        return frozenset([self.label])

    def __str__(self) -> str:
        return str(self.label)


@dataclass(frozen=True, slots=True)
class Concat(Regex):
    left: Regex
    right: Regex

    @property
    def size(self) -> int:
        return self.left.size + self.right.size

    def labels(self) -> frozenset[Label]:
        return self.left.labels() | self.right.labels()

    def __str__(self) -> str:
        return f"{_wrap(self.left, Union)} . {_wrap(self.right, Union)}"


@dataclass(frozen=True, slots=True)
class Union(Regex):
    left: Regex
    right: Regex

    @property
    def size(self) -> int:
        return self.left.size + self.right.size

    def labels(self) -> frozenset[Label]:
        return self.left.labels() | self.right.labels()

    def __str__(self) -> str:
        return f"{self.left} + {self.right}"


@dataclass(frozen=True, slots=True)
class Star(Regex):
    child: Regex

    @property
    def size(self) -> int:
        return self.child.size

    def labels(self) -> frozenset[Label]:
        return self.child.labels()

    def __str__(self) -> str:
        if isinstance(self.child, (Sym, Epsilon, Star)):
            return f"{self.child}*"
        return f"({self.child})*"


def _wrap(node: Regex, *outer_precedence: type) -> str:
    if isinstance(node, outer_precedence):
        return f"({node})"
    return str(node)


# ----------------------------------------------------------------------
# Parser (recursive descent)
# ----------------------------------------------------------------------

_TOKEN = _stdlib_re.compile(r"\s*(?:(?P<label>[A-Za-z0-9_]+)|(?P<op>[.+*()]))")


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens: list[tuple[str, str, int]] = []
        position = 0
        while position < len(text):
            match = _TOKEN.match(text, position)
            if match is None:
                stripped = text[position:].lstrip()
                if not stripped:
                    break
                raise RegexSyntaxError(text, position, "unexpected character")
            if match.group("label") is not None:
                self.tokens.append(("label", match.group("label"), match.start("label")))
            else:
                self.tokens.append(("op", match.group("op"), match.start("op")))
            position = match.end()
        self.cursor = 0

    def peek(self) -> tuple[str, str, int] | None:
        return self.tokens[self.cursor] if self.cursor < len(self.tokens) else None

    def advance(self) -> tuple[str, str, int]:
        token = self.tokens[self.cursor]
        self.cursor += 1
        return token

    # expr := term ('+' term)*
    def expr(self) -> Regex:
        node = self.term()
        while (token := self.peek()) and token[:2] == ("op", "+"):
            self.advance()
            node = Union(node, self.term())
        return node

    # term := factor ('.' factor | factor)*   (juxtaposition also concatenates)
    def term(self) -> Regex:
        node = self.factor()
        while True:
            token = self.peek()
            if token and token[:2] == ("op", "."):
                self.advance()
                node = Concat(node, self.factor())
            elif token and (token[0] == "label" or token[:2] == ("op", "(")):
                node = Concat(node, self.factor())
            else:
                return node

    # factor := atom '*'*
    def factor(self) -> Regex:
        node = self.atom()
        while (token := self.peek()) and token[:2] == ("op", "*"):
            self.advance()
            node = Star(node)
        return node

    def atom(self) -> Regex:
        token = self.peek()
        if token is None:
            raise RegexSyntaxError(self.text, len(self.text), "unexpected end of query")
        kind, value, position = token
        if kind == "label":
            self.advance()
            return Epsilon() if value == "eps" else Sym(value)
        if value == "(":
            self.advance()
            node = self.expr()
            closing = self.peek()
            if closing is None or closing[:2] != ("op", ")"):
                raise RegexSyntaxError(self.text, position, "unbalanced parenthesis")
            self.advance()
            return node
        raise RegexSyntaxError(self.text, position, f"unexpected {value!r}")


def parse(text: str) -> Regex:
    """Parse the concrete syntax into an AST."""
    parser = _Parser(text)
    if not parser.tokens:
        raise RegexSyntaxError(text, 0, "empty query")
    node = parser.expr()
    trailing = parser.peek()
    if trailing is not None:
        raise RegexSyntaxError(text, trailing[2], f"trailing {trailing[1]!r}")
    return node


# ----------------------------------------------------------------------
# Word membership (reference semantics for tests)
# ----------------------------------------------------------------------


def matches_word(query: Regex, word: tuple[Label, ...]) -> bool:
    """Decide word ∈ L(Q) by AST interpretation (exponential-free
    Brzozowski-style matching via position sets; used as a test oracle)."""
    from repro.rpq.nfa import glushkov

    return glushkov(query).accepts(word)


def nullable(query: Regex) -> bool:
    """ε ∈ L(Q)?"""
    if isinstance(query, Epsilon):
        return True
    if isinstance(query, Sym):
        return False
    if isinstance(query, Concat):
        return nullable(query.left) and nullable(query.right)
    if isinstance(query, Union):
        return nullable(query.left) or nullable(query.right)
    if isinstance(query, Star):
        return True
    raise TypeError(f"not a Regex node: {query!r}")

"""RPQ_NFA — the batch RPQ algorithm (paper Section 5.2, [29, 33]).

Two phases: translate the query into an (ε-free, position) NFA M_Q, then
traverse the intersection graph G_I of G and M_Q from every viable source.

The intersection graph pairs graph nodes with NFA states:
``((v, s), (v', s')) ∈ E_I`` iff ``(v, v') ∈ E`` and ``s' ∈ δ(s, l(v'))``.
A source ``u`` starts at the virtual node ``(u, s0)`` and *bootstraps* by
consuming its own label: the first real product nodes are ``(u, s)`` for
``s ∈ δ(s0, l(u))``, at distance 0.  ``(u, v)`` is a match iff some
``(v, s)`` with accepting ``s`` is reachable — the witnessing path spells
``l(u) l(v1) ... l(v)`` ∈ L(Q).  Single-node paths (v = u) are included;
the empty word is not spellable by any path, so an accepting s0 (nullable
query) contributes nothing, and Glushkov's s0 has no incoming transitions,
so it never reappears.

The BFS also fills the pmark_e auxiliary structures (dist/cpre/mpre)
"without increasing its complexity" — they ride along with the traversal.
"""

from __future__ import annotations

from collections import deque

from repro.core.cost import CostMeter, NULL_METER
from repro.graph.digraph import DiGraph, Node
from repro.rpq.markings import BOOTSTRAP, MarkEntry, Markings, SourceMarks
from repro.rpq.nfa import NFA, glushkov
from repro.rpq.regex import Regex, parse


class RPQResult:
    """Q(G) plus the auxiliary markings that IncRPQ maintains."""

    __slots__ = ("nfa", "markings", "matches")

    def __init__(self, nfa: NFA, markings: Markings, matches: set[tuple[Node, Node]]):
        self.nfa = nfa
        self.markings = markings
        self.matches = matches


def compile_query(query: Regex | str) -> tuple[Regex, NFA]:
    """Parse (if needed) and translate a query to its NFA."""
    ast = parse(query) if isinstance(query, str) else query
    return ast, glushkov(ast)


def rpq_nfa(
    graph: DiGraph,
    query: Regex | str,
    meter: CostMeter = NULL_METER,
) -> RPQResult:
    """Run the full batch algorithm: NFA construction + product BFS from
    every source whose label admits a bootstrap state."""
    _, nfa = compile_query(query)
    markings = Markings()
    matches: set[tuple[Node, Node]] = set()
    for source in graph.nodes():
        start_states = nfa.start_states(graph.label(source))
        if not start_states:
            continue
        source_marks = markings.source(source)
        _bfs_from(graph, nfa, source, start_states, source_marks, meter)
        for node, states in source_marks.by_node.items():
            if any(state in nfa.accepting for state in states):
                matches.add((source, node))
    return RPQResult(nfa=nfa, markings=markings, matches=matches)


def _bfs_from(
    graph: DiGraph,
    nfa: NFA,
    source: Node,
    start_states,
    marks: SourceMarks,
    meter: CostMeter,
) -> None:
    """BFS over the intersection graph from (source, s0)."""
    queue: deque[tuple[Node, int]] = deque()
    for state in start_states:
        marks.set(source, state, MarkEntry(dist=0, cpre={BOOTSTRAP}, mpre={BOOTSTRAP}))
        meter.write()
        queue.append((source, state))
    while queue:
        node, state = queue.popleft()
        meter.visit_node(node)
        entry = marks.get(node, state)
        for successor in graph.successors(node):
            meter.traverse_edge()
            for next_state in nfa.delta(state, graph.label(successor)):
                next_entry = marks.get(successor, next_state)
                if next_entry is None:
                    marks.set(
                        successor,
                        next_state,
                        MarkEntry(
                            dist=entry.dist + 1,
                            cpre={(node, state)},
                            mpre={(node, state)},
                        ),
                    )
                    meter.write()
                    queue.append((successor, next_state))
                else:
                    next_entry.cpre.add((node, state))
                    if entry.dist + 1 == next_entry.dist:
                        next_entry.mpre.add((node, state))
    # cpre completeness: BFS visits every reached product node once and
    # scans its out-edges, so each reached predecessor registers itself
    # with each reached successor exactly once.


def matches_only(
    graph: DiGraph,
    query: Regex | str,
    meter: CostMeter = NULL_METER,
) -> set[tuple[Node, Node]]:
    """Convenience wrapper returning just Q(G)."""
    return rpq_nfa(graph, query, meter=meter).matches


def verify_markings(graph: DiGraph, query: Regex | str, markings: Markings) -> None:
    """Audit maintained markings against recomputation.

    Distances and entry domains must agree exactly; cpre must equal the
    reached product predecessors; mpre must be the shortest-path subset.
    """
    fresh = rpq_nfa(graph, query)
    fresh_sources = {
        source: marks
        for source, marks in fresh.markings.per_source.items()
        if marks.by_node
    }
    maintained_sources = {
        source: marks
        for source, marks in markings.per_source.items()
        if marks.by_node
    }
    if fresh_sources.keys() != maintained_sources.keys():
        missing = fresh_sources.keys() - maintained_sources.keys()
        spurious = maintained_sources.keys() - fresh_sources.keys()
        raise AssertionError(
            f"marking sources diverged: missing={list(missing)[:5]} "
            f"spurious={list(spurious)[:5]}"
        )
    for source, fresh_marks in fresh_sources.items():
        kept = maintained_sources[source]
        fresh_nodes = set(fresh_marks.product_nodes())
        kept_nodes = set(kept.product_nodes())
        if fresh_nodes != kept_nodes:
            raise AssertionError(
                f"source {source!r}: product nodes diverged "
                f"(missing={list(fresh_nodes - kept_nodes)[:5]}, "
                f"spurious={list(kept_nodes - fresh_nodes)[:5]})"
            )
        for node, state in fresh_nodes:
            expected = fresh_marks.get(node, state)
            actual = kept.get(node, state)
            if expected.dist != actual.dist:
                raise AssertionError(
                    f"source {source!r}, ({node!r}, {state}): dist "
                    f"{actual.dist} != expected {expected.dist}"
                )
            if expected.cpre != actual.cpre:
                raise AssertionError(
                    f"source {source!r}, ({node!r}, {state}): cpre diverged"
                )
            if expected.mpre != actual.mpre:
                raise AssertionError(
                    f"source {source!r}, ({node!r}, {state}): mpre diverged"
                )

"""Glushkov NFA construction — small ε-free automata (paper Section 5.2).

The paper adopts the construction of Hromkovič et al. [29] because it
yields smaller NFAs than partial derivatives [7].  The classical Glushkov
(position) automaton shares the key properties the algorithms rely on:

* ε-free, with exactly |Q| + 1 states (one per label occurrence plus the
  initial state s0), and
* **s0 has no incoming transitions**, which is what lets the product-graph
  construction treat "being at (u, s0)" as the pre-bootstrap virtual start
  that never reappears on a path (see :mod:`repro.rpq.batch`).

States are integers: 0 is s0, positions are 1..n in left-to-right order of
label occurrences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.graph.digraph import Label
from repro.rpq.regex import Concat, Epsilon, Regex, Star, Sym, Union

State = int


@dataclass(frozen=True)
class NFA:
    """An ε-free NFA (S, Σ, δ, s0=0, F)."""

    num_states: int
    accepting: frozenset[State]
    transitions: dict[State, dict[Label, frozenset[State]]]

    @property
    def initial(self) -> State:
        return 0

    def delta(self, state: State, label: Label) -> frozenset[State]:
        """δ(state, label) — empty set when undefined."""
        return self.transitions.get(state, {}).get(label, frozenset())

    def start_states(self, label: Label) -> frozenset[State]:
        """δ(s0, label): the bootstrap states for a source node labeled
        ``label`` (consumes the source's own label, paper Section 5.2)."""
        return self.delta(0, label)

    def accepts(self, word: Iterable[Label]) -> bool:
        """Word membership by subset simulation (test oracle)."""
        current: set[State] = {0}
        for symbol in word:
            current = {
                next_state
                for state in current
                for next_state in self.delta(state, symbol)
            }
            if not current:
                return False
        return bool(current & self.accepting)

    def alphabet(self) -> frozenset[Label]:
        return frozenset(
            label
            for by_label in self.transitions.values()
            for label in by_label
        )


def glushkov(query: Regex) -> NFA:
    """Build the position automaton of ``query``.

    Standard construction: number the label occurrences 1..n ("positions"),
    compute ``first``/``last``/``follow`` sets and nullability, then

    * δ(0, a)  = {p ∈ first  : sym(p) = a}
    * δ(p, a)  = {q ∈ follow(p) : sym(q) = a}
    * F        = last ∪ ({0} if ε ∈ L(Q))
    """
    symbols: list[Label] = []

    def linearize(node: Regex) -> "_Pos":
        if isinstance(node, Epsilon):
            return _Pos(nullable=True, first=frozenset(), last=frozenset(), follow={})
        if isinstance(node, Sym):
            symbols.append(node.label)
            position = len(symbols)  # 1-based
            return _Pos(
                nullable=False,
                first=frozenset([position]),
                last=frozenset([position]),
                follow={},
            )
        if isinstance(node, Concat):
            left = linearize(node.left)
            right = linearize(node.right)
            follow = _merge_follow(left.follow, right.follow)
            for position in left.last:
                follow[position] = follow.get(position, frozenset()) | right.first
            return _Pos(
                nullable=left.nullable and right.nullable,
                first=left.first | (right.first if left.nullable else frozenset()),
                last=right.last | (left.last if right.nullable else frozenset()),
                follow=follow,
            )
        if isinstance(node, Union):
            left = linearize(node.left)
            right = linearize(node.right)
            return _Pos(
                nullable=left.nullable or right.nullable,
                first=left.first | right.first,
                last=left.last | right.last,
                follow=_merge_follow(left.follow, right.follow),
            )
        if isinstance(node, Star):
            child = linearize(node.child)
            follow = dict(child.follow)
            for position in child.last:
                follow[position] = follow.get(position, frozenset()) | child.first
            return _Pos(
                nullable=True,
                first=child.first,
                last=child.last,
                follow=follow,
            )
        raise TypeError(f"not a Regex node: {node!r}")

    info = linearize(query)
    transitions: dict[State, dict[Label, frozenset[State]]] = {}

    def add_transitions(state: State, targets: frozenset[State]) -> None:
        by_label: dict[Label, set[State]] = {}
        for position in targets:
            by_label.setdefault(symbols[position - 1], set()).add(position)
        if by_label:
            transitions[state] = {
                label: frozenset(states) for label, states in by_label.items()
            }

    add_transitions(0, info.first)
    for position in range(1, len(symbols) + 1):
        add_transitions(position, info.follow.get(position, frozenset()))

    accepting = set(info.last)
    if info.nullable:
        accepting.add(0)
    return NFA(
        num_states=len(symbols) + 1,
        accepting=frozenset(accepting),
        transitions=transitions,
    )


@dataclass(frozen=True)
class _Pos:
    """Glushkov bookkeeping for one subexpression."""

    nullable: bool
    first: frozenset[int]
    last: frozenset[int]
    follow: dict[int, frozenset[int]]


def _merge_follow(
    left: dict[int, frozenset[int]],
    right: dict[int, frozenset[int]],
) -> dict[int, frozenset[int]]:
    merged = dict(left)
    for position, targets in right.items():
        merged[position] = merged.get(position, frozenset()) | targets
    return merged

"""Regular path queries: regex, Glushkov NFA, RPQ_NFA batch, IncRPQ."""

from repro.rpq.batch import (
    RPQResult,
    compile_query,
    matches_only,
    rpq_nfa,
    verify_markings,
)
from repro.rpq.incremental import RPQDelta, RPQIndex, inc_rpq_n
from repro.rpq.markings import BOOTSTRAP, MarkEntry, Markings, SourceMarks
from repro.rpq.nfa import NFA, glushkov
from repro.rpq.regex import (
    Concat,
    Epsilon,
    Regex,
    RegexSyntaxError,
    Star,
    Sym,
    Union,
    matches_word,
    nullable,
    parse,
)

__all__ = [
    "BOOTSTRAP",
    "Concat",
    "Epsilon",
    "MarkEntry",
    "Markings",
    "NFA",
    "RPQDelta",
    "RPQIndex",
    "RPQResult",
    "Regex",
    "RegexSyntaxError",
    "SourceMarks",
    "Star",
    "Sym",
    "Union",
    "compile_query",
    "glushkov",
    "inc_rpq_n",
    "matches_only",
    "matches_word",
    "nullable",
    "parse",
    "rpq_nfa",
    "verify_markings",
]

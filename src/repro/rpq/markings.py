"""pmark_e markings — the RPQ auxiliary structure (paper Section 5.2).

For a source node ``u``, ``v.pmark_e(u)[s]`` is a tuple
``(state, dist, cpre, mpre)`` where

* ``dist`` — shortest distance from ``(u, s0)`` to ``(v, s)`` in the
  intersection graph G_I, counted in graph hops (bootstrap = 0, so the
  dist equals the length of the witnessing path in G);
* ``cpre`` — *candidate* predecessors: every reached product node
  ``(v', s')`` with an edge to ``(v, s)`` in G_I;
* ``mpre`` — the subset of ``cpre`` lying on shortest paths
  (``dist(v', s') + 1 == dist(v, s)``).

Bootstrap entries (``v == u`` and ``s ∈ δ(s0, l(u))``) carry the virtual
predecessor ``BOOTSTRAP`` in cpre/mpre, marking distance 0 as coming from
``(u, s0)`` directly.

Storage is per source, indexed by graph node first so that updates to the
edges around a node touch only that node's state bucket:
``marks[u][v][s] -> MarkEntry``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.digraph import Node
from repro.rpq.nfa import State

ProductNode = tuple[Node, State]

#: Virtual predecessor representing (u, s0) — the pre-bootstrap start.
BOOTSTRAP: ProductNode = ("__s0__", -1)


@dataclass
class MarkEntry:
    """Mutable marking for one product node (v, s) w.r.t. a source u."""

    dist: int
    cpre: set[ProductNode] = field(default_factory=set)
    mpre: set[ProductNode] = field(default_factory=set)

    def snapshot(self) -> tuple[int, frozenset[ProductNode]]:
        """Immutable (dist, mpre) view for first-touch records."""
        return (self.dist, frozenset(self.mpre))


class SourceMarks:
    """All markings for one source node u: ``{v: {s: MarkEntry}}``.

    When owned by a :class:`Markings` registry, first/last entries at a
    graph node register/deregister the source in the registry's
    node → sources reverse index (so per-update scans touch only sources
    that actually reach the updated node).
    """

    __slots__ = ("by_node", "_owner", "_registry")

    def __init__(self, owner: Node = None, registry: "Markings | None" = None) -> None:
        self.by_node: dict[Node, dict[State, MarkEntry]] = {}
        self._owner = owner
        self._registry = registry

    def get(self, node: Node, state: State) -> MarkEntry | None:
        return self.by_node.get(node, {}).get(state)

    def states_at(self, node: Node) -> dict[State, MarkEntry]:
        return self.by_node.get(node, {})

    def set(self, node: Node, state: State, entry: MarkEntry) -> None:
        states = self.by_node.get(node)
        if states is None:
            states = self.by_node[node] = {}
            if self._registry is not None:
                self._registry.sources_at.setdefault(node, set()).add(self._owner)
        states[state] = entry

    def remove(self, node: Node, state: State) -> None:
        states = self.by_node.get(node)
        if states is None or state not in states:
            return
        del states[state]
        if not states:
            del self.by_node[node]
            if self._registry is not None:
                owners = self._registry.sources_at.get(node)
                if owners is not None:
                    owners.discard(self._owner)
                    if not owners:
                        del self._registry.sources_at[node]

    def product_nodes(self) -> list[tuple[Node, State]]:
        return [
            (node, state)
            for node, states in self.by_node.items()
            for state in states
        ]

    def __len__(self) -> int:
        return sum(len(states) for states in self.by_node.values())

    def __bool__(self) -> bool:
        # Without this, truthiness falls back to __len__, which sums over
        # every node bucket — O(reached nodes) for what hot paths
        # (e.g. RPQIndex._finish_delta) use as an emptiness test.
        return bool(self.by_node)


class Markings:
    """pmark_e for all sources: ``{u: SourceMarks}``.

    Sources whose label admits no bootstrap state simply have no bucket.
    ``sources_at[v]`` lists the sources with at least one entry at graph
    node v — the incremental algorithms' per-update scan set.
    """

    __slots__ = ("per_source", "sources_at")

    def __init__(self) -> None:
        self.per_source: dict[Node, SourceMarks] = {}
        self.sources_at: dict[Node, set[Node]] = {}

    def source(self, source: Node) -> SourceMarks:
        marks = self.per_source.get(source)
        if marks is None:
            marks = SourceMarks(owner=source, registry=self)
            self.per_source[source] = marks
        return marks

    def get(self, source: Node) -> SourceMarks | None:
        return self.per_source.get(source)

    def sources(self) -> list[Node]:
        return list(self.per_source)

    def sources_with_entries_at(self, node: Node) -> tuple[Node, ...]:
        """Sources whose product BFS reached ``node`` (reverse index)."""
        return tuple(self.sources_at.get(node, ()))

    def total_entries(self) -> int:
        return sum(len(marks) for marks in self.per_source.values())

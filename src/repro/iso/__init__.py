"""Subgraph isomorphism: patterns, VF2, localizable IncISO."""

from repro.iso.incremental import ISODelta, ISOIndex, inc_iso_n
from repro.iso.patterns import Match, Pattern, PatternError, make_match
from repro.iso.vf2 import has_match, vf2_matches

__all__ = [
    "ISODelta",
    "ISOIndex",
    "Match",
    "Pattern",
    "PatternError",
    "has_match",
    "inc_iso_n",
    "make_match",
    "vf2_matches",
]

"""VF2-style subgraph matching [15] — the batch ISO algorithm.

Enumerates all embeddings of a pattern into a graph under the paper's
match semantics (non-induced: every pattern edge must map to a graph edge;
extra graph edges among image nodes are permitted, they simply stay
outside the match subgraph).  Standard VF2 ingredients:

* state-space search mapping one pattern node at a time,
* candidate-pair selection anchored at a mapped neighbor (connectivity
  order), falling back to the globally rarest-label pattern node,
* feasibility pruning: label equality, injectivity, and consistency of
  already-mapped neighbors in both edge directions, plus a degree
  look-ahead.

Matches are canonicalized via :func:`repro.iso.patterns.make_match`, so
automorphic embeddings dedupe into one match, per Section 2.1.
"""

from __future__ import annotations

from repro.core.cost import CostMeter, NULL_METER
from repro.graph.digraph import DiGraph, Node
from repro.iso.patterns import Match, Pattern, make_match


def vf2_matches(
    graph: DiGraph,
    pattern: Pattern,
    meter: CostMeter = NULL_METER,
    required_edge: tuple[Node, Node] | None = None,
) -> set[Match]:
    """All matches of ``pattern`` in ``graph``.

    ``required_edge`` restricts the search to matches whose edge set uses
    that graph edge — the filter IncISOn applies per inserted edge.
    """
    matcher = _VF2(graph, pattern, meter)
    results = matcher.run()
    if required_edge is not None:
        results = {match for match in results if match.uses_edge(required_edge)}
    return results


def anchored_matches(
    graph: DiGraph,
    pattern: Pattern,
    edge: tuple[Node, Node],
    meter: CostMeter = NULL_METER,
) -> set[Match]:
    """All matches whose subgraph *uses* the given graph edge.

    For every pattern edge with compatible endpoint labels, the search is
    seeded with that pattern edge pinned onto ``edge`` and completed by
    VF2.  Any new match created by inserting ``edge`` must map some
    pattern edge onto it, so the union over pattern edges is exactly the
    set of matches IncISO gains — and the search never leaves the
    d_Q-neighborhood of the edge's endpoints, keeping IncISO localizable.
    """
    source, target = edge
    if source not in graph or not graph.has_edge(source, target):
        return set()
    source_label = graph.label(source)
    target_label = graph.label(target)
    results: set[Match] = set()
    for pattern_source, pattern_target in pattern.graph.edges():
        if pattern.graph.label(pattern_source) != source_label:
            continue
        if pattern.graph.label(pattern_target) != target_label:
            continue
        if pattern_source == pattern_target and source != target:
            continue
        seed = (
            {pattern_source: source}
            if pattern_source == pattern_target
            else {pattern_source: source, pattern_target: target}
        )
        matcher = _VF2(graph, pattern, meter, seed_assignment=seed)
        results |= matcher.run()
    return {match for match in results if match.uses_edge(edge)}


def has_match(graph: DiGraph, pattern: Pattern, meter: CostMeter = NULL_METER) -> bool:
    """Decision variant (NP-complete in general, cf. [35])."""
    matcher = _VF2(graph, pattern, meter, first_only=True)
    return bool(matcher.run())


class _VF2:
    """One matching run; not reusable.

    ``seed_assignment`` pins pattern nodes to graph nodes before the
    search starts (validated for label and edge consistency); the search
    completes the remaining pattern nodes.
    """

    def __init__(
        self,
        graph: DiGraph,
        pattern: Pattern,
        meter: CostMeter,
        first_only: bool = False,
        seed_assignment: dict[Node, Node] | None = None,
    ) -> None:
        self.graph = graph
        self.pattern = pattern.graph
        self.pattern_obj = pattern
        self.meter = meter
        self.first_only = first_only
        self.assignment: dict[Node, Node] = {}
        self.used: set[Node] = set()
        self.results: set[Match] = set()
        self.seed_ok = True
        if seed_assignment:
            for pattern_node, graph_node in seed_assignment.items():
                if graph_node in self.used or not self._feasible(
                    pattern_node, graph_node
                ):
                    self.seed_ok = False
                    break
                self.assignment[pattern_node] = graph_node
                self.used.add(graph_node)
        self.order = self._matching_order()

    def _matching_order(self) -> list[Node]:
        """Connectivity-first order starting from the rarest label."""
        label_frequency: dict = {}
        for node in self.graph.nodes():
            label = self.graph.label(node)
            label_frequency[label] = label_frequency.get(label, 0) + 1

        def rarity(pattern_node: Node) -> tuple[int, int]:
            label = self.pattern.label(pattern_node)
            degree = self.pattern.out_degree(pattern_node) + self.pattern.in_degree(
                pattern_node
            )
            return (label_frequency.get(label, 0), -degree)

        remaining = set(self.pattern.nodes()) - set(self.assignment)
        order: list[Node] = []
        while remaining:
            # prefer nodes adjacent to already-ordered ones (connectivity)
            frontier = [
                node
                for node in remaining
                if any(
                    neighbor not in remaining
                    for neighbor in set(self.pattern.successors(node))
                    | set(self.pattern.predecessors(node))
                )
            ]
            pool = frontier if frontier else list(remaining)
            chosen = min(pool, key=lambda node: (rarity(node), repr(node)))
            order.append(chosen)
            remaining.discard(chosen)
        return order

    def run(self) -> set[Match]:
        if not self.seed_ok:
            return set()
        self._extend(0)
        return self.results

    def _extend(self, depth: int) -> bool:
        """Returns True when the search should stop early (first_only)."""
        if depth == len(self.order):
            self.results.add(make_match(self.pattern_obj, dict(self.assignment)))
            return self.first_only
        pattern_node = self.order[depth]
        for candidate in self._candidates(pattern_node):
            self.meter.visit_node(candidate)
            if not self._feasible(pattern_node, candidate):
                continue
            self.assignment[pattern_node] = candidate
            self.used.add(candidate)
            stop = self._extend(depth + 1)
            del self.assignment[pattern_node]
            self.used.discard(candidate)
            if stop:
                return True
        return False

    def _candidates(self, pattern_node: Node):
        """Graph nodes worth trying for ``pattern_node``: anchored at a
        mapped pattern neighbor when one exists, else a label scan."""
        label = self.pattern.label(pattern_node)
        for neighbor in self.pattern.successors(pattern_node):
            if neighbor in self.assignment:
                # pattern_node -> neighbor, so candidates are graph
                # predecessors of the neighbor's image.
                return [
                    node
                    for node in self.graph.predecessors(self.assignment[neighbor])
                    if self.graph.label(node) == label and node not in self.used
                ]
        for neighbor in self.pattern.predecessors(pattern_node):
            if neighbor in self.assignment:
                return [
                    node
                    for node in self.graph.successors(self.assignment[neighbor])
                    if self.graph.label(node) == label and node not in self.used
                ]
        return [
            node
            for node in self.graph.nodes_with_label(label)
            if node not in self.used
        ]

    def _feasible(self, pattern_node: Node, candidate: Node) -> bool:
        if self.graph.label(candidate) != self.pattern.label(pattern_node):
            return False
        # consistency with every already-mapped pattern neighbor
        for successor in self.pattern.successors(pattern_node):
            if successor in self.assignment:
                self.meter.traverse_edge()
                if not self.graph.has_edge(candidate, self.assignment[successor]):
                    return False
        for predecessor in self.pattern.predecessors(pattern_node):
            if predecessor in self.assignment:
                self.meter.traverse_edge()
                if not self.graph.has_edge(self.assignment[predecessor], candidate):
                    return False
        # degree look-ahead: the candidate must offer at least as many
        # unmapped out/in neighbors as the pattern still requires.
        pattern_out = sum(
            1
            for successor in self.pattern.successors(pattern_node)
            if successor not in self.assignment
        )
        if pattern_out > self.graph.out_degree(candidate):
            return False
        pattern_in = sum(
            1
            for predecessor in self.pattern.predecessors(pattern_node)
            if predecessor not in self.assignment
        )
        if pattern_in > self.graph.in_degree(candidate):
            return False
        return True

"""IncISO — localizable incremental subgraph isomorphism (paper Appendix,
"Localizable Algorithm for ISO"; Theorem 3).

The maintained answer Q(G) is a set of canonical matches plus an
edge → matches index.  Under a batch ΔG = (ΔG+, ΔG−):

1. **Deletions** remove every match whose subgraph uses a deleted edge —
   an index lookup, no search.  Under the paper's non-induced match
   semantics a deletion can never *create* a match, so this is complete.
2. **Insertions** search only within the d_Q-neighborhoods of inserted
   edges: every new match must map some pattern edge onto an inserted
   graph edge, and all its nodes lie within d_Q undirected hops of that
   edge's endpoints (the match image is connected with diameter ≤ d_Q).
   IncISO therefore runs *anchored* VF2 — the search seeded with a
   pattern edge pinned to each inserted edge (:func:`repro.iso.vf2.
   anchored_matches`) — which by construction never leaves
   G_{d_Q}(ΔG+).  This realizes the appendix's "compute Q(G_{d_Q}(ΔG+))
   all together" without materializing the neighborhood subgraph; the
   unit-at-a-time comparator IncISOn keeps the appendix's literal recipe
   (extract the d_Q-neighborhood of each update, run the batch algorithm
   on it, one update at a time).

Cost is a function of |Q| and |G_{d_Q}(ΔG)| — never of |G| — which makes
IncISO localizable; the tests assert meter containment in that region.

ΔO is ``ISODelta(added, removed)`` with Q(G ⊕ ΔG) = Q(G) ∪ added − removed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost import CostMeter, NULL_METER
from repro.core.delta import Delta
from repro.engine.relevance import PatternRelevance
from repro.engine.view import ViewSnapshot
from repro.kws.kdist import node_order
from repro.graph.digraph import DiGraph, Edge, Node
from repro.graph.neighborhood import nodes_within
from repro.iso.patterns import Match, Pattern, make_match
from repro.iso.vf2 import anchored_matches, vf2_matches


@dataclass(frozen=True)
class ISODelta:
    """ΔO for subgraph isomorphism."""

    added: frozenset[Match]
    removed: frozenset[Match]

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed)


class ISOIndex:
    """Incrementally maintained Q(G) for one pattern query."""

    def __init__(
        self,
        graph: DiGraph,
        pattern: Pattern,
        meter: CostMeter = NULL_METER,
    ) -> None:
        self.graph = graph
        self.pattern = pattern
        self.meter = meter
        self.matches: set[Match] = vf2_matches(graph, pattern, meter=meter)
        self._by_edge: dict[Edge, set[Match]] = {}
        for match in self.matches:
            self._index(match)

    # ------------------------------------------------------------------

    def _index(self, match: Match) -> None:
        for edge in match.edges:
            self._by_edge.setdefault(edge, set()).add(match)

    def _deindex(self, match: Match) -> None:
        for edge in match.edges:
            bucket = self._by_edge.get(edge)
            if bucket is not None:
                bucket.discard(match)
                if not bucket:
                    del self._by_edge[edge]

    # ------------------------------------------------------------------

    def apply(self, delta: Delta) -> ISODelta:
        """Batch IncISO: deletions by index, insertions by anchored VF2
        within G_{d_Q}(ΔG+)."""
        if not delta.is_normalized():
            delta = delta.normalized()
        return self._repair_batch(delta, mutate=True)

    def absorb(self, delta: Delta, new_nodes) -> ISODelta:
        """Engine fan-out path: repair the match set for a normalized
        ``delta`` the shared graph already holds.  IncISO needs no special
        handling for ``new_nodes`` — a brand-new node participates in a
        match only through its batch edges, which the anchored search from
        those edges already explores."""
        return self._repair_batch(delta, mutate=False)

    def _repair_batch(self, delta: Delta, mutate: bool) -> ISODelta:
        removed: set[Match] = set()
        for update in delta.deletions:
            if mutate:
                self.graph.remove_edge(update.source, update.target)
            for match in self._by_edge.get((update.source, update.target), set()).copy():
                self._deindex(match)
                self.matches.discard(match)
                removed.add(match)

        added: set[Match] = set()
        if delta.insertions:
            # All graph mutations first: a new match may use several of
            # the batch's edges, and the anchored search from any one of
            # them must see the others.
            if mutate:
                for update in delta.insertions:
                    self.graph.add_edge(
                        update.source,
                        update.target,
                        source_label=update.source_label,
                        target_label=update.target_label,
                    )
            for update in delta.insertions:
                for match in anchored_matches(
                    self.graph, self.pattern, update.edge, meter=self.meter
                ):
                    if match not in self.matches:
                        self.matches.add(match)
                        self._index(match)
                        added.add(match)

        # A match deleted and re-created within one batch nets out.
        resurrected = added & removed
        return ISODelta(
            frozenset(added - resurrected), frozenset(removed - resurrected)
        )

    def insert_edge(self, source: Node, target: Node, **labels) -> ISODelta:
        from repro.core.delta import insert

        return self.apply(
            Delta(
                [
                    insert(
                        source,
                        target,
                        source_label=labels.get("source_label", ""),
                        target_label=labels.get("target_label", ""),
                    )
                ]
            )
        )

    def delete_edge(self, source: Node, target: Node) -> ISODelta:
        from repro.core.delta import delete

        return self.apply(Delta([delete(source, target)]))

    # ------------------------------------------------------------------

    def _insertion_region(self, edges: list[Edge]) -> DiGraph:
        """G_{d_Q}(ΔG+): the induced subgraph on the union of
        d_Q-neighborhoods of inserted endpoints, in the updated graph."""
        endpoints = {node for edge in edges for node in edge}
        nodes = nodes_within(
            self.graph, endpoints, self.pattern.diameter, meter=self.meter
        )
        return self.graph.subgraph(nodes)

    # ------------------------------------------------------------------
    # Engine routing (repro.engine.relevance)
    # ------------------------------------------------------------------

    def relevance(self) -> PatternRelevance:
        """Routing filter: an insertion can only create matches when its
        endpoint label pair occurs among the pattern's edge label pairs
        (anchored VF2 pins a pattern edge to the inserted edge); a
        deletion only matters when the edge → matches index holds it."""
        pattern_graph = self.pattern.graph
        label_pairs = frozenset(
            (pattern_graph.label(source), pattern_graph.label(target))
            for source, target in pattern_graph.edges()
        )
        return PatternRelevance(self, label_pairs)

    def empty_output(self) -> ISODelta:
        """The ΔO of a batch that touched nothing this view depends on."""
        return ISODelta(frozenset(), frozenset())

    # ------------------------------------------------------------------
    # Persistence (repro.persist)
    # ------------------------------------------------------------------

    def snapshot(self) -> ViewSnapshot:
        """Capture the pattern and the match set as token rows.

        Records are tagged: ``("pn", node, label)`` and
        ``("pe", source, target)`` spell out the pattern graph, and one
        ``("m", pattern_node, graph_node, ...)`` row per match flattens
        its retained embedding.  Rows of each tag are emitted in sorted
        order (the canonical order, so behaviorally identical indexes
        serialize byte-identically regardless of set history).  The
        canonical node/edge sets and the edge → matches index are
        derived state, re-canonicalized through
        :func:`~repro.iso.patterns.make_match` on restore.
        """

        def row_key(row: tuple) -> tuple:
            return tuple(node_order(value) for value in row)

        records: list[tuple] = []
        pattern_graph = self.pattern.graph
        records.extend(
            sorted(
                (("pn", node, pattern_graph.label(node))
                 for node in pattern_graph.nodes()),
                key=row_key,
            )
        )
        records.extend(
            sorted(
                (("pe", source, target)
                 for source, target in pattern_graph.edges()),
                key=row_key,
            )
        )
        records.extend(
            sorted(
                (
                    ("m", *(value for pair in match.embedding for value in pair))
                    for match in self.matches
                ),
                key=row_key,
            )
        )
        return ViewSnapshot(kind="iso", config=(), records=tuple(records))

    @classmethod
    def restore(
        cls,
        graph: DiGraph,
        state: ViewSnapshot,
        meter: CostMeter = NULL_METER,
    ) -> "ISOIndex":
        """Rebuild an index over ``graph`` from a snapshot — no VF2
        search; matches are re-canonicalized from their embeddings."""
        if state.kind != "iso":
            raise ValueError(f"expected an 'iso' snapshot, got {state.kind!r}")
        index = cls.__new__(cls)
        index.graph = graph
        index.meter = meter
        pattern_graph = DiGraph()
        match_rows = []
        for row in state.records:
            tag = row[0]
            if tag == "pn":
                pattern_graph.add_node(row[1], label=row[2])
            elif tag == "pe":
                pattern_graph.add_edge(row[1], row[2])
            elif tag == "m":
                match_rows.append(row)
            else:
                raise ValueError(f"unknown iso snapshot record tag {tag!r}")
        index.pattern = Pattern.from_graph(pattern_graph)
        index.matches = set()
        index._by_edge = {}
        for row in match_rows:
            assignment = dict(zip(row[1::2], row[2::2]))
            match = make_match(index.pattern, assignment)
            index.matches.add(match)
            index._index(match)
        return index

    def check_consistency(self) -> None:
        """Audit against recomputation (test helper)."""
        fresh = vf2_matches(self.graph, self.pattern)
        if fresh != self.matches:
            missing = fresh - self.matches
            spurious = self.matches - fresh
            raise AssertionError(
                f"ISO matches diverged: missing={len(missing)} "
                f"spurious={len(spurious)}"
            )
        indexed = {match for bucket in self._by_edge.values() for match in bucket}
        if indexed != self.matches:
            raise AssertionError("edge index diverged from the match set")


# ----------------------------------------------------------------------
# Unit-at-a-time baseline (IncISOn in the paper's experiments)
# ----------------------------------------------------------------------


def inc_iso_n(index: ISOIndex, delta: Delta) -> ISODelta:
    """The appendix's literal IncISOn: "applies the batch algorithm on the
    d_Q-neighbor of each update one by one" — per unit update, extract the
    d_Q-neighborhood subgraph and run the full batch VF2 on it."""
    added: set[Match] = set()
    removed: set[Match] = set()
    for update in delta:
        if update.is_delete:
            index.graph.remove_edge(update.source, update.target)
            step_removed = set(
                index._by_edge.get((update.source, update.target), set())
            )
            for match in step_removed:
                index._deindex(match)
                index.matches.discard(match)
                if match in added:
                    added.discard(match)
                else:
                    removed.add(match)
            continue
        index.graph.add_edge(
            update.source,
            update.target,
            source_label=update.source_label,
            target_label=update.target_label,
        )
        region = index._insertion_region([update.edge])
        for match in vf2_matches(region, index.pattern, meter=index.meter):
            if match not in index.matches:
                index.matches.add(match)
                index._index(match)
                if match in removed:
                    removed.discard(match)
                else:
                    added.add(match)
    return ISODelta(frozenset(added), frozenset(removed))

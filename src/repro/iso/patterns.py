"""Pattern queries for subgraph isomorphism (paper Section 2.1, ISO).

A pattern Q = (V_Q, E_Q, l_Q) is itself a small labeled digraph.  The
locality radius of IncISO is the pattern's *diameter* d_Q: "the length of
the longest shortest path between any two nodes in Q when taken as an
undirected graph" (Section 6, query generators) — every node of a match
image lies within d_Q undirected hops of any other, so new matches created
by an edge insertion live inside the d_Q-neighborhood of its endpoints.

Match semantics (Section 2.1): a match is a *subgraph* G_s of G isomorphic
to Q — the bijection h maps V_Q onto G_s's nodes with labels preserved and
(u, u') ∈ E_Q iff (h(u), h(u')) ∈ E_s.  Since G_s is any subgraph (not
necessarily induced), a match is determined by an injective embedding
whose edge image is E_s; two embeddings differing by a pattern automorphism
yield the same subgraph and hence the *same* match.  :class:`Match`
canonicalizes accordingly (frozen node and edge sets).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.graph.digraph import DiGraph, Edge, Label, Node
from repro.graph.neighborhood import undirected_distance


class PatternError(ValueError):
    """Invalid pattern query."""


@dataclass(frozen=True)
class Pattern:
    """An immutable pattern query with a precomputed diameter."""

    graph: DiGraph
    diameter: int

    @classmethod
    def from_graph(cls, graph: DiGraph) -> "Pattern":
        if graph.num_nodes == 0:
            raise PatternError("a pattern needs at least one node")
        diameter = 0
        for first, second in combinations(list(graph.nodes()), 2):
            hops = undirected_distance(graph, first, second)
            if hops is None:
                raise PatternError(
                    "pattern must be weakly connected (disconnected patterns "
                    "make locality radii meaningless)"
                )
            diameter = max(diameter, hops)
        return cls(graph=graph, diameter=diameter)

    @classmethod
    def from_edges(cls, labels: dict[Node, Label], edges: list[Edge]) -> "Pattern":
        return cls.from_graph(DiGraph(labels=labels, edges=edges))

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def shape(self) -> tuple[int, int, int]:
        """(|V_Q|, |E_Q|, d_Q) — the paper's query-complexity triple."""
        return (self.num_nodes, self.num_edges, self.diameter)

    def label_multiset(self) -> dict[Label, int]:
        counts: dict[Label, int] = {}
        for node in self.graph.nodes():
            label = self.graph.label(node)
            counts[label] = counts.get(label, 0) + 1
        return counts


@dataclass(frozen=True)
class Match:
    """A canonical match: the image subgraph (node set + edge set).

    Automorphic embeddings collapse to one :class:`Match`; the embedding
    that produced it is retained for inspection but excluded from
    equality/hashing.
    """

    nodes: frozenset[Node]
    edges: frozenset[Edge]
    embedding: tuple[tuple[Node, Node], ...]  # (pattern node, graph node)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Match):
            return NotImplemented
        return self.nodes == other.nodes and self.edges == other.edges

    def __hash__(self) -> int:
        return hash((self.nodes, self.edges))

    def mapping(self) -> dict[Node, Node]:
        """pattern node -> graph node for the retained embedding."""
        return dict(self.embedding)

    def uses_edge(self, edge: Edge) -> bool:
        return edge in self.edges


def make_match(pattern: Pattern, assignment: dict[Node, Node]) -> Match:
    """Canonicalize an embedding into a :class:`Match`."""
    nodes = frozenset(assignment.values())
    edges = frozenset(
        (assignment[source], assignment[target])
        for source, target in pattern.graph.edges()
    )
    embedding = tuple(sorted(assignment.items(), key=lambda kv: repr(kv[0])))
    return Match(nodes=nodes, edges=edges, embedding=embedding)

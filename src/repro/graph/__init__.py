"""Graph substrate: labeled digraphs, neighborhoods, generators, workloads."""

from repro.graph.digraph import (
    DEFAULT_LABEL,
    DiGraph,
    DuplicateEdgeError,
    Edge,
    GraphError,
    Label,
    MissingEdgeError,
    MissingNodeError,
    Node,
)
from repro.graph.neighborhood import (
    d_neighborhood,
    neighborhood_of_updates,
    nodes_within,
    undirected_distance,
)
from repro.graph.sharding import (
    ShardedGraphStore,
    ShardMap,
    route_updates,
    stable_shard_hash,
)

__all__ = [
    "DEFAULT_LABEL",
    "DiGraph",
    "DuplicateEdgeError",
    "Edge",
    "GraphError",
    "Label",
    "MissingEdgeError",
    "MissingNodeError",
    "Node",
    "ShardMap",
    "ShardedGraphStore",
    "d_neighborhood",
    "neighborhood_of_updates",
    "nodes_within",
    "route_updates",
    "stable_shard_hash",
    "undirected_distance",
]

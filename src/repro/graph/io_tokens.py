"""Token-level quoting for the plain-text graph/delta format.

Node identifiers and labels are arbitrary hashable values in memory but
must survive a whitespace-separated text format.  The rules:

* ``int``  — written bare; a bare all-digit token reads back as ``int``.
* ``str``  — written bare when unambiguous; quoted with backslash escapes
  when it contains whitespace, ``"``, ``\\``, ``#``, starts with ``%``
  (the persist format's directive marker — a bare ``%``-leading first
  token would masquerade as a directive line), is empty, or would read
  back as an integer.  A quoted token always reads back as ``str``, so
  ``5`` and ``"5"`` are distinct on disk just as they are in memory.
* anything else (``float``, ``bool``, tuples, ...) — refused loudly with
  :class:`SerializationError`; silently coming back as a different type
  would corrupt graphs in ways that surface far from the cause.

``bool`` is rejected despite being an ``int`` subclass because ``True``
would otherwise reload as ``1``.
"""

from __future__ import annotations

import re

__all__ = ["SerializationError", "format_token", "parse_bare_token", "tokenize"]

_NEEDS_QUOTING = re.compile(r'[\s"\\#]')

_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n", "\r": "\\r", "\t": "\\t"}
_UNESCAPES = {"\\": "\\", '"': '"', "n": "\n", "r": "\r", "t": "\t"}


class SerializationError(ValueError):
    """A node id or label cannot be written to the text format losslessly."""


def format_token(value) -> str:
    """Render one node id or label as a text token."""
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise SerializationError(
            f"cannot serialize {value!r} of type {type(value).__name__}; "
            "the text format holds only int and str values"
        )
    if isinstance(value, int):
        return str(value)
    if (
        value
        and not value.startswith("%")
        and not _NEEDS_QUOTING.search(value)
        and not _reads_back_as_int(value)
    ):
        return value
    escaped = "".join(_ESCAPES.get(char, char) for char in value)
    return f'"{escaped}"'


def _reads_back_as_int(token: str) -> bool:
    """Exactly mirrors :func:`parse_bare_token`'s int branch — including
    forms like ``1_000`` that ``int()`` accepts but a digit regex misses."""
    try:
        int(token)
    except ValueError:
        return False
    return True


def parse_bare_token(token: str):
    """Bare integers round-trip as ints; everything else stays a string."""
    # int() can only succeed when the token starts with a decimal digit
    # or a sign; checking first avoids the (slow) exception path for the
    # common string-token case in bulk parsing.
    first = token[:1]
    if first.isdigit() or first in "+-":
        try:
            return int(token)
        except ValueError:
            return token
    return token


def tokenize(line: str) -> list:
    """Split a record line into parsed tokens, honoring quotes.

    Raises ``ValueError`` on unterminated quotes or dangling escapes; the
    caller wraps it with line context.
    """
    if '"' not in line:
        # Fast path: no quoting anywhere, so whitespace-splitting is
        # exact.  Snapshot/log recovery parses millions of such lines;
        # skipping the per-character scan is a ~4x parser speedup.
        return [parse_bare_token(token) for token in line.split()]
    tokens: list = []
    position = 0
    length = len(line)
    while position < length:
        char = line[position]
        if char.isspace():
            position += 1
            continue
        if char == '"':
            position += 1
            parts: list[str] = []
            while True:
                if position >= length:
                    raise ValueError("unterminated quoted token")
                char = line[position]
                if char == '"':
                    position += 1
                    break
                if char == "\\":
                    if position + 1 >= length:
                        raise ValueError("dangling escape in quoted token")
                    escape = line[position + 1]
                    if escape not in _UNESCAPES:
                        raise ValueError(f"unknown escape sequence \\{escape}")
                    parts.append(_UNESCAPES[escape])
                    position += 2
                    continue
                parts.append(char)
                position += 1
            tokens.append("".join(parts))
        else:
            end = position
            while end < length and not line[end].isspace():
                if line[end] == '"':
                    raise ValueError("quote in the middle of a bare token")
                end += 1
            tokens.append(parse_bare_token(line[position:end]))
            position = end
    return tokens

"""Synthetic labeled-digraph generators (paper Section 6, "Graphs").

The paper evaluates on DBpedia, LiveJournal, and a synthetic generator
"controlled by the number of nodes |V| (up to 50 million) and number of
edges |E| (up to 100 million), with labels drawn from an alphabet Σ of 100
symbols".  Real dumps are unavailable offline, so :mod:`repro.workloads.
datasets` composes these primitives into profile-matched substitutes; the
raw generators here are deterministic given a seed.

All generators produce simple digraphs without parallel edges; self-loops
are excluded (real-world graph snapshots rarely carry them and the paper's
examples have none).
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.graph.digraph import DiGraph, Label


def label_alphabet(size: int, prefix: str = "L") -> list[str]:
    """Return ``size`` distinct label symbols, e.g. ``L000..L099``."""
    if size <= 0:
        raise ValueError(f"alphabet size must be positive, got {size}")
    width = max(3, len(str(size - 1)))
    return [f"{prefix}{index:0{width}d}" for index in range(size)]


def _assign_labels(
    num_nodes: int,
    alphabet: Sequence[Label],
    rng: random.Random,
    skew: float,
) -> list[Label]:
    """Draw one label per node.

    ``skew = 0`` gives uniform label frequencies; larger values produce a
    Zipf-like bias (real label distributions are heavily skewed — a few
    types dominate DBpedia).
    """
    if skew <= 0:
        return [rng.choice(alphabet) for _ in range(num_nodes)]
    weights = [1.0 / (rank + 1) ** skew for rank in range(len(alphabet))]
    return rng.choices(alphabet, weights=weights, k=num_nodes)


def uniform_random_graph(
    num_nodes: int,
    num_edges: int,
    alphabet: Sequence[Label],
    seed: int = 0,
    label_skew: float = 0.0,
) -> DiGraph:
    """G(n, m)-style digraph: ``num_edges`` distinct directed pairs chosen
    uniformly at random (no self-loops)."""
    if num_nodes < 1:
        raise ValueError("need at least one node")
    max_edges = num_nodes * (num_nodes - 1)
    if num_edges > max_edges:
        raise ValueError(
            f"{num_edges} edges requested but a simple digraph on "
            f"{num_nodes} nodes holds at most {max_edges}"
        )
    rng = random.Random(seed)
    labels = _assign_labels(num_nodes, alphabet, rng, label_skew)
    graph = DiGraph()
    for node in range(num_nodes):
        graph.add_node(node, label=labels[node])
    added = 0
    while added < num_edges:
        source = rng.randrange(num_nodes)
        target = rng.randrange(num_nodes)
        if source == target or graph.has_edge(source, target):
            continue
        graph.add_edge(source, target)
        added += 1
    return graph


def power_law_graph(
    num_nodes: int,
    num_edges: int,
    alphabet: Sequence[Label],
    seed: int = 0,
    label_skew: float = 0.0,
    out_exponent: float = 1.0,
    forward_bias: float = 0.0,
) -> DiGraph:
    """Preferential-attachment style digraph with skewed in-degrees.

    Targets are drawn from a growing repeat pool (Barabási–Albert flavour)
    so popular nodes accumulate in-links, like hub pages in DBpedia or
    celebrities in LiveJournal.  Sources are drawn near-uniformly with a
    mild bias controlled by ``out_exponent``.

    ``forward_bias`` is the probability that an edge is re-oriented from
    the smaller to the larger node id.  Knowledge graphs are hierarchical
    (few long cycles); a high bias keeps the strongly connected components
    small without changing the degree distribution.
    """
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    if not 0.0 <= forward_bias <= 1.0:
        raise ValueError("forward_bias must be within [0, 1]")
    rng = random.Random(seed)
    labels = _assign_labels(num_nodes, alphabet, rng, label_skew)
    graph = DiGraph()
    for node in range(num_nodes):
        graph.add_node(node, label=labels[node])
    # Repeat pool: every node appears once so isolated targets stay possible,
    # then each edge's target is appended to bias future draws.
    target_pool = list(range(num_nodes))
    added = 0
    attempts = 0
    max_attempts = 50 * num_edges + 1000
    while added < num_edges and attempts < max_attempts:
        attempts += 1
        if out_exponent == 1.0:
            source = rng.randrange(num_nodes)
        else:
            source = min(
                int(num_nodes * rng.random() ** out_exponent), num_nodes - 1
            )
        target = target_pool[rng.randrange(len(target_pool))]
        if source == target:
            continue
        if forward_bias and source > target and rng.random() < forward_bias:
            source, target = target, source
        if graph.has_edge(source, target):
            continue
        graph.add_edge(source, target)
        target_pool.append(target)
        added += 1
    if added < num_edges:
        raise RuntimeError(
            f"could only place {added}/{num_edges} edges after {attempts} attempts; "
            "graph too dense for the preferential pool"
        )
    return graph


def planted_scc_graph(
    num_nodes: int,
    num_edges: int,
    alphabet: Sequence[Label],
    giant_fraction: float,
    seed: int = 0,
    label_skew: float = 0.0,
) -> DiGraph:
    """Digraph with a planted giant strongly connected component.

    LiveJournal's largest SCC covers ~77% of the graph (paper Section 6,
    Exp-1(3)(c)); this generator plants a Hamiltonian cycle through a
    ``giant_fraction`` share of the nodes so that fraction is guaranteed to
    be one SCC, then sprinkles the remaining edges at random.
    """
    if not 0.0 < giant_fraction <= 1.0:
        raise ValueError(f"giant_fraction must be in (0, 1], got {giant_fraction}")
    core_size = max(2, int(num_nodes * giant_fraction))
    if num_edges < core_size:
        raise ValueError(
            f"{num_edges} edges cannot carry a planted cycle of {core_size} nodes"
        )
    rng = random.Random(seed)
    labels = _assign_labels(num_nodes, alphabet, rng, label_skew)
    graph = DiGraph()
    for node in range(num_nodes):
        graph.add_node(node, label=labels[node])
    core = list(range(num_nodes))
    rng.shuffle(core)
    core = core[:core_size]
    for position, node in enumerate(core):
        graph.add_edge(node, core[(position + 1) % core_size])
    added = core_size
    while added < num_edges:
        source = rng.randrange(num_nodes)
        target = rng.randrange(num_nodes)
        if source == target or graph.has_edge(source, target):
            continue
        graph.add_edge(source, target)
        added += 1
    return graph


def layered_dag(
    layers: int,
    width: int,
    alphabet: Sequence[Label],
    seed: int = 0,
    inter_layer_prob: float = 0.3,
) -> DiGraph:
    """Acyclic layered digraph (for SCC merge/rank stress tests).

    Nodes are arranged in ``layers`` rows of ``width``; edges go only from
    layer ``i`` to layer ``i+1`` with probability ``inter_layer_prob``.
    """
    if layers < 1 or width < 1:
        raise ValueError("layers and width must be positive")
    rng = random.Random(seed)
    graph = DiGraph()
    for layer in range(layers):
        for slot in range(width):
            graph.add_node(layer * width + slot, label=rng.choice(alphabet))
    for layer in range(layers - 1):
        for slot in range(width):
            for next_slot in range(width):
                if rng.random() < inter_layer_prob:
                    graph.add_edge(layer * width + slot, (layer + 1) * width + next_slot)
    return graph


def cycle_graph(num_nodes: int, label: Label = "c") -> DiGraph:
    """A single directed cycle — the building block of Fig. 9 gadgets."""
    if num_nodes < 1:
        raise ValueError("need at least one node")
    graph = DiGraph()
    for node in range(num_nodes):
        graph.add_node(node, label=label)
    for node in range(num_nodes):
        if num_nodes > 1:
            graph.add_edge(node, (node + 1) % num_nodes)
    return graph

"""Sharded graph storage: partition one logical graph across shards.

The paper's bounded-incremental thesis says maintenance cost should
track |CHANGED|, not |G| — but a single :class:`~repro.graph.digraph.
DiGraph` still makes every mutation, snapshot, and log append contend
on one structure.  This module partitions the *storage* of the graph
without changing its *semantics*:

* :class:`ShardMap` assigns every node to a shard — by a stable hash
  (default) or by range boundaries — deterministically across
  processes, which is what lets routed sub-deltas be shipped to
  per-shard worker processes and per-shard log segments
  (:class:`repro.persist.deltalog.SegmentedDeltaLog`) agree on
  ownership without coordination.
* :class:`ShardedGraphStore` presents the full :class:`DiGraph` API
  over a list of per-shard ``DiGraph`` instances, so the
  :class:`~repro.engine.session.Engine` and all four view classes work
  unchanged on a sharded graph.  **Every edge is owned by its source's
  shard**: a shard holds the complete out-adjacency of the nodes it
  owns, plus *ghost* copies of remote targets carrying their in-links,
  so both ``successors`` and ``predecessors`` resolve without scanning
  other shards' edges.
* :func:`route_updates` partitions one batch into per-shard sub-deltas
  under the same ownership rule — the unit the segmented delta log
  appends and the process executor ships.

Example::

    >>> store = ShardedGraphStore(shards=2, labels={1: "a", 2: "b"},
    ...                           edges=[(1, 2), (2, 1)])
    >>> sorted(store.successors(1)), sorted(store.predecessors(1))
    ([2], [2])
    >>> store.num_edges, store.num_shards
    (2, 2)
    >>> store == DiGraph(labels={1: "a", 2: "b"}, edges=[(1, 2), (2, 1)])
    True
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from collections.abc import Iterable, Iterator
from typing import Optional

from repro.graph.digraph import (
    DEFAULT_LABEL,
    DiGraph,
    Edge,
    Label,
    MissingEdgeError,
    MissingNodeError,
    Node,
)

__all__ = [
    "ShardMap",
    "ShardedGraphStore",
    "route_updates",
    "stable_shard_hash",
]

#: Partitioning strategies :class:`ShardMap` understands.
SHARD_KINDS = ("hash", "range")


def stable_shard_hash(node: Node) -> int:
    """A deterministic, process-independent hash for shard assignment.

    Python's built-in ``hash`` is salted per process for strings
    (``PYTHONHASHSEED``), so it cannot place nodes consistently across
    the worker processes and recovery runs that share a shard layout.
    Integers hash through the CRC of their decimal string (so
    consecutive ids spread across shards instead of striping), strings
    through ``zlib.crc32`` of their UTF-8 bytes, and any other hashable
    falls back to the CRC of its ``repr`` — callers that persist
    sharded graphs are already restricted to int/str nodes by the token
    format.

    Booleans hash **as their integer value**: dict semantics make
    ``True`` and ``1`` the same node key everywhere else in the graph
    layer, so they must land on the same shard too.

    >>> stable_shard_hash("v1") == stable_shard_hash("v1")
    True
    >>> stable_shard_hash(True) == stable_shard_hash(1)
    True
    """
    if isinstance(node, int):  # incl. bool: True is the same key as 1
        return zlib.crc32(str(int(node)).encode("utf-8"))
    if isinstance(node, str):
        return zlib.crc32(node.encode("utf-8"))
    return zlib.crc32(repr(node).encode("utf-8"))


def _split_token(node: Node) -> bytes:
    """Canonical bytes of a node id, matching the type normalization of
    :func:`stable_shard_hash` (bool folds into int, etc.)."""
    if isinstance(node, int):
        return str(int(node)).encode("utf-8")
    if isinstance(node, str):
        return node.encode("utf-8")
    return repr(node).encode("utf-8")


def _split_bit(node: Node, child: int) -> bool:
    """Deterministic coin flip deciding whether a hash split moves
    ``node`` to the child shard.  Salted by the child index so repeated
    splits of the same parent partition independently instead of moving
    the same half every time."""
    return bool(zlib.crc32(b"split:%d:" % child + _split_token(node)) & 1)


class ShardMap:
    """Deterministic node → shard assignment.

    Two kinds:

    * ``hash`` (default) — ``stable_shard_hash(node) % count``; spreads
      any node population evenly without configuration.
    * ``range`` — ``boundaries`` is a sorted sequence of split points;
      a node lands in the shard of the first boundary greater than it
      (``count = len(boundaries) + 1``).  All nodes must be mutually
      orderable with the boundaries (e.g. all-int or all-str node ids).

    A map is immutable; the layout is stamped into snapshot files
    (``%meta sharding``) so recovery rebuilds identical ownership.
    :meth:`split` derives a *new* map with one more shard — the base
    layout plus an ordered tuple of recorded splits, each stamped as a
    ``%meta shard-split`` line (format v5) so recovery replays the same
    growth history.

    >>> ShardMap(4).shard_of(7) == ShardMap(4).shard_of(7)
    True
    >>> ShardMap(kind="range", boundaries=[100, 200]).shard_of(150)
    1
    >>> grown = ShardMap(kind="range", boundaries=[100]).split(1, boundary=200)
    >>> grown.count, grown.shard_of(150), grown.shard_of(250)
    (3, 1, 2)
    """

    __slots__ = ("count", "kind", "boundaries", "splits")

    def __init__(
        self,
        count: int = 1,
        kind: str = "hash",
        boundaries: Optional[Iterable] = None,
        splits: Iterable[tuple] = (),
    ) -> None:
        if kind not in SHARD_KINDS:
            raise ValueError(
                f"unknown shard kind {kind!r}; expected one of {SHARD_KINDS}"
            )
        if kind == "range":
            self.boundaries = tuple(boundaries or ())
            if list(self.boundaries) != sorted(self.boundaries):
                raise ValueError("range boundaries must be sorted ascending")
            implied = len(self.boundaries) + 1
            if count not in (1, implied):  # 1 is the unspecified default
                raise ValueError(
                    f"count={count} contradicts the boundary list, which "
                    f"implies {implied} shards"
                )
            count = implied
        else:
            if boundaries is not None:
                raise ValueError("boundaries are only meaningful for kind='range'")
            self.boundaries = ()
        if count < 1:
            raise ValueError(f"shard count must be >= 1, got {count}")
        entries = tuple(tuple(entry) for entry in splits)
        want = 3 if kind == "range" else 2
        for position, entry in enumerate(entries):
            child = count + position
            if (
                len(entry) != want
                or not isinstance(entry[0], int)
                or not 0 <= entry[0] < child
                or entry[1] != child
            ):
                raise ValueError(
                    f"malformed split entry {entry!r} at position {position}: "
                    f"expected (parent < {child}, child == {child}"
                    + (", boundary)" if kind == "range" else ")")
                )
        self.count = count + len(entries)
        self.kind = kind
        self.splits = entries

    def split(self, parent: int, boundary=None) -> "ShardMap":
        """A new map with one more shard, carved out of shard ``parent``.

        The child takes the next shard index (``self.count``).  Which of
        the parent's nodes move is deterministic: a *range* split moves
        every node ``>= boundary`` (mirroring the ``bisect_right`` base
        rule); a *hash* split moves the half of the parent's nodes whose
        child-salted hash bit is set, so repeated splits keep carving
        evenly without reshuffling other shards.

        The receiver is unchanged — callers that adopt the new map must
        migrate storage themselves (see
        :meth:`ShardedGraphStore.repartition` and
        :meth:`repro.persist.snapshot.SnapshotStore.split_shard`).
        """
        if not isinstance(parent, int) or not 0 <= parent < self.count:
            raise ValueError(
                f"parent shard {parent!r} out of range 0..{self.count - 1}"
            )
        child = self.count
        if self.kind == "range":
            if boundary is None:
                raise ValueError(
                    "a range split needs the boundary separating parent "
                    "from child"
                )
            entry = (parent, child, boundary)
        else:
            if boundary is not None:
                raise ValueError("hash splits take no boundary")
            entry = (parent, child)
        base_count = self.count - len(self.splits)
        if self.kind == "range":
            return ShardMap(
                kind="range",
                boundaries=self.boundaries,
                splits=self.splits + (entry,),
            )
        return ShardMap(base_count, splits=self.splits + (entry,))

    def shard_of(self, node: Node) -> int:
        """The shard index owning ``node`` (0-based, stable)."""
        if self.kind == "hash":
            index = stable_shard_hash(node) % (self.count - len(self.splits))
        else:
            index = bisect_right(self.boundaries, node)
        for entry in self.splits:
            if entry[0] != index:
                continue
            if self.kind == "range":
                if not node < entry[2]:
                    index = entry[1]
            elif _split_bit(node, entry[1]):
                index = entry[1]
        return index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShardMap):
            return NotImplemented
        return (
            self.count == other.count
            and self.kind == other.kind
            and self.boundaries == other.boundaries
            and self.splits == other.splits
        )

    def __hash__(self) -> int:
        return hash((self.count, self.kind, self.boundaries, self.splits))

    def __repr__(self) -> str:
        extra = f", splits={list(self.splits)!r}" if self.splits else ""
        if self.kind == "range":
            return (
                f"ShardMap(kind='range', "
                f"boundaries={list(self.boundaries)!r}{extra})"
            )
        return f"ShardMap({self.count - len(self.splits)}{extra})"


def route_updates(delta, shard_map: ShardMap) -> dict[int, list]:
    """Partition a batch's unit updates by owning shard.

    Ownership follows the store's rule — an edge belongs to its
    **source's** shard — so a routed sub-delta mutates exactly one
    shard's adjacency and appends to exactly one log segment.  Returns
    ``{shard_index: [updates...]}`` with original update order
    preserved inside each shard (touched shards only); updates on the
    same edge always land in the same shard, so per-shard replay and
    per-segment net-cancellation stay order-safe.
    """
    routed: dict[int, list] = {}
    for update in delta:
        routed.setdefault(shard_map.shard_of(update.source), []).append(update)
    return routed


class ShardedGraphStore:
    """One logical labeled digraph stored across per-shard ``DiGraph``\\ s.

    The store satisfies the complete :class:`DiGraph` contract — same
    methods, same exceptions, same iteration semantics — so engines and
    views use it interchangeably.  Internally:

    * node ``v`` is *owned* by shard ``shard_map.shard_of(v)``; the
      owner shard always hosts ``v`` and holds its authoritative label
      and complete out-adjacency;
    * edge ``(u, v)`` is stored exactly once, in ``u``'s shard.  When
      ``v`` lives elsewhere, ``u``'s shard hosts a *ghost* copy of
      ``v`` (label synchronized) carrying the in-link, so
      ``predecessors(v)`` is the disjoint union of the hosting shards'
      predecessor sets — resolved through a per-node host index, never
      by scanning all shards;
    * relabels and node removals fan out to every hosting shard, and
      the store keeps its own :attr:`oob_version` tripwire with the
      same semantics as :attr:`DiGraph.oob_version`.

    Cross-shard reads cost one extra dict hop; mutations touch exactly
    one shard's adjacency (plus ghost upkeep), which is what lets
    independent shards apply, journal, and compact concurrently.

    Example::

        >>> g = ShardedGraphStore(shards=3)
        >>> g.add_edge("u", "v", source_label="a", target_label="b")
        >>> g.label("v"), g.has_edge("u", "v"), g.num_edges
        ('b', True, 1)
    """

    def __init__(
        self,
        shard_map: Optional[ShardMap] = None,
        shards: Optional[int] = None,
        edges: Optional[Iterable[Edge]] = None,
        labels: Optional[dict[Node, Label]] = None,
    ) -> None:
        if shard_map is None:
            shard_map = ShardMap(shards if shards is not None else 1)
        elif shards is not None and shards != shard_map.count:
            raise ValueError(
                f"shards={shards} contradicts shard_map.count={shard_map.count}"
            )
        #: The immutable node → shard assignment.
        self.shard_map = shard_map
        self._shards: list[DiGraph] = [DiGraph() for _ in range(shard_map.count)]
        #: node → set of shard indexes hosting it (owner first to exist;
        #: ghosts accumulate).  Key order is global insertion order.
        self._hosts: dict[Node, set[int]] = {}
        self._num_edges = 0
        self._oob_version = 0
        if labels:
            for node, label in labels.items():
                self.add_node(node, label=label)
        if edges:
            for source, target in edges:
                self.add_edge(source, target)

    # ------------------------------------------------------------------
    # Shard-level introspection
    # ------------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """Number of shards in the layout."""
        return self.shard_map.count

    def shard(self, index: int) -> DiGraph:
        """The backing ``DiGraph`` of one shard (owned + ghost nodes).

        Treat it as read-only: mutating a shard directly bypasses the
        store's host index and edge counter.
        """
        return self._shards[index]

    def shard_of(self, node: Node) -> int:
        """The shard index owning ``node`` (defined for any node)."""
        return self.shard_map.shard_of(node)

    def shard_sizes(self) -> list[tuple[int, int]]:
        """Per-shard ``(owned_nodes, owned_edges)`` — the balance view.

        Edges are counted at their owning shard; ghost nodes are not
        counted (each node counts once, at its owner).
        """
        nodes = [0] * self.num_shards
        for node in self._hosts:
            nodes[self.shard_map.shard_of(node)] += 1
        return [
            (nodes[index], self._shards[index].num_edges)
            for index in range(self.num_shards)
        ]

    def cross_shard_edges(self) -> int:
        """Number of edges whose endpoints live on different shards."""
        count = 0
        for source, target in self.edges():
            if self.shard_map.shard_of(source) != self.shard_map.shard_of(target):
                count += 1
        return count

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_digraph(
        cls, graph: DiGraph, shard_map: ShardMap
    ) -> "ShardedGraphStore":
        """Shard an existing graph (nodes and edges re-inserted in the
        source graph's iteration order, so iteration order carries
        over)."""
        store = cls(shard_map=shard_map)
        for node in graph.nodes():
            store.add_node(node, label=graph.label(node))
        for source, target in graph.edges():
            store.add_edge(source, target)
        store._oob_version = 0  # construction is not an out-of-band event
        return store

    def to_digraph(self) -> DiGraph:
        """Flatten into a single ``DiGraph`` (same nodes/labels/edges)."""
        flat = DiGraph()
        for node in self._hosts:
            flat.add_node(node, label=self.label(node))
        for source, target in self.edges():
            flat.add_edge(source, target)
        return flat

    @classmethod
    def from_labeled_edges(
        cls,
        labels: dict[Node, Label],
        edges: Iterable[Edge],
        shard_map: Optional[ShardMap] = None,
    ) -> "ShardedGraphStore":
        """Build a sharded graph from a label map and an edge list."""
        return cls(shard_map=shard_map, edges=edges, labels=labels)

    def copy(self) -> "ShardedGraphStore":
        """Independent deep copy with the same shard layout."""
        clone = ShardedGraphStore(shard_map=self.shard_map)
        clone._shards = [shard.copy() for shard in self._shards]
        clone._hosts = {node: set(hosts) for node, hosts in self._hosts.items()}
        clone._num_edges = self._num_edges
        clone._oob_version = self._oob_version
        return clone

    def repartition(self, shard_map: ShardMap) -> None:
        """Re-place nodes under a new shard layout, in memory.

        The logical graph is untouched — same nodes, labels, edges,
        iteration order, :attr:`num_edges`, and :attr:`oob_version`
        (re-placement is storage movement, not a graph mutation, so it
        must not trip the incremental-save tripwire).  Only nodes whose
        owner changes between the old and new map are migrated, so the
        cost of an online split tracks the carved-off region, not
        ``|G|``.

        Migration keeps the ownership invariants intact: each moved
        node's complete out-adjacency follows it to the new owner,
        ghost copies of remote targets are created at the destination
        and garbage-collected at the source once no local in-link needs
        them.  Growing appends empty shards; shrinking (the split
        rollback path) drops trailing shards, which must have been
        emptied by the re-placement.
        """
        old_map = self.shard_map
        if shard_map == old_map:
            return
        while len(self._shards) < shard_map.count:
            self._shards.append(DiGraph())
        moved: dict[Node, tuple[int, int]] = {}
        for node in self._hosts:
            source_index = old_map.shard_of(node)
            target_index = shard_map.shard_of(node)
            if source_index != target_index:
                moved[node] = (source_index, target_index)
        labels: dict[Node, Label] = {}
        outs: dict[Node, list[Node]] = {}
        for node, (source_index, _) in moved.items():
            shard = self._shards[source_index]
            labels[node] = shard.label(node)
            outs[node] = list(shard.successors(node))

        def label_of(node: Node) -> Label:
            if node in labels:
                return labels[node]
            return self._shards[old_map.shard_of(node)].label(node)

        # Detach every moved node's out-adjacency first, so the
        # ghost-keep decisions below see post-move in-degrees.
        for node, (source_index, _) in moved.items():
            shard = self._shards[source_index]
            for target in outs[node]:
                shard.remove_edge(node, target)
        # Place each moved node, with its out-edges, at its new owner.
        for node, (_, target_index) in moved.items():
            shard = self._shards[target_index]
            if not shard.has_node(node):
                shard.add_node(node, label=labels[node])
            self._hosts[node].add(target_index)
            for target in outs[node]:
                if not shard.has_node(target):
                    shard.add_node(target, label=label_of(target))
                shard.add_edge(node, target)
                self._hosts[target].add(target_index)
        # Drop source-shard residents stranded by the move: a moved node
        # stays behind only as a ghost (if local in-links remain), and a
        # ghost whose in-links all departed goes with them.
        candidates: set[tuple[int, Node]] = set()
        for node, (source_index, _) in moved.items():
            candidates.add((source_index, node))
            for target in outs[node]:
                candidates.add((source_index, target))
        for source_index, node in candidates:
            shard = self._shards[source_index]
            if shard_map.shard_of(node) == source_index:
                continue
            if not shard.has_node(node):
                continue
            if shard.in_degree(node) == 0 and shard.out_degree(node) == 0:
                shard.remove_node(node)
                self._hosts[node].discard(source_index)
        if len(self._shards) > shard_map.count:
            for shard in self._shards[shard_map.count :]:
                if len(shard):
                    raise ValueError(
                        "cannot drop a shard that still hosts nodes"
                    )
            del self._shards[shard_map.count :]
        self.shard_map = shard_map

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------

    def _owner(self, node: Node) -> DiGraph:
        """The shard graph owning ``node`` (which must exist)."""
        return self._shards[self.shard_map.shard_of(node)]

    def add_node(self, node: Node, label: Label = DEFAULT_LABEL) -> None:
        """Add ``node`` with ``label``; re-adding updates the label only
        (on every hosting shard, keeping ghosts synchronized)."""
        hosts = self._hosts.get(node)
        if hosts is None:
            owner = self.shard_map.shard_of(node)
            self._shards[owner].add_node(node, label=label)
            self._hosts[node] = {owner}
            return
        if self._owner(node).label(node) != label:
            self._oob_version += 1  # relabel: no delta can express this
            for index in hosts:
                self._shards[index].set_label(node, label)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and every incident edge, across all shards."""
        hosts = self._hosts.get(node)
        if hosts is None:
            raise MissingNodeError(node)
        self._oob_version += 1  # no delta can express node removal
        removed_edges = 0
        for index in hosts:
            shard = self._shards[index]
            incident = shard.out_degree(node) + shard.in_degree(node)
            if shard.has_edge(node, node):
                incident -= 1  # a self-loop is one edge, not two
            removed_edges += incident
            shard.remove_node(node)
        self._num_edges -= removed_edges
        del self._hosts[node]

    def has_node(self, node: Node) -> bool:
        """Is ``node`` in the (logical) graph?"""
        return node in self._hosts

    def label(self, node: Node) -> Label:
        """The authoritative label of ``node`` (from its owner shard)."""
        if node not in self._hosts:
            raise MissingNodeError(node)
        return self._owner(node).label(node)

    def set_label(self, node: Node, label: Label) -> None:
        """Relabel an existing node on every hosting shard."""
        hosts = self._hosts.get(node)
        if hosts is None:
            raise MissingNodeError(node)
        if self._owner(node).label(node) != label:
            self._oob_version += 1  # relabel: no delta can express this
        for index in hosts:
            self._shards[index].set_label(node, label)

    @property
    def oob_version(self) -> int:
        """Monotonic count of mutations no batch update can express
        (relabels, node removals) — same tripwire contract as
        :attr:`repro.graph.digraph.DiGraph.oob_version`."""
        return self._oob_version

    def nodes(self) -> Iterator[Node]:
        """Iterate over all logical nodes (global insertion order)."""
        return iter(self._hosts)

    def nodes_with_label(self, label: Label) -> Iterator[Node]:
        """Iterate over nodes carrying ``label`` (linear scan, each node
        reported once regardless of ghost copies)."""
        return (
            node for node in self._hosts if self._owner(node).label(node) == label
        )

    @property
    def labels(self) -> dict[Node, Label]:
        """A fresh ``{node: label}`` dict (authoritative owner labels).

        Unlike :attr:`DiGraph.labels` this is a copy, rebuilt per
        access — prefer :meth:`label` in hot paths.
        """
        return {node: self._owner(node).label(node) for node in self._hosts}

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------

    def add_edge(
        self,
        source: Node,
        target: Node,
        source_label: Label = DEFAULT_LABEL,
        target_label: Label = DEFAULT_LABEL,
    ) -> None:
        """Insert edge ``(source, target)`` into the source's shard,
        creating endpoints (and a ghost copy of a remote target) if
        absent; labels of pre-existing endpoints are left untouched."""
        if source not in self._hosts:
            self.add_node(source, label=source_label)
        if target not in self._hosts:
            self.add_node(target, label=target_label)
        owner_index = self.shard_map.shard_of(source)
        owner = self._shards[owner_index]
        target_hosts = self._hosts[target]
        if owner_index not in target_hosts and not owner.has_node(target):
            owner.add_node(target, label=self.label(target))  # the ghost
        owner.add_edge(source, target)  # raises DuplicateEdgeError intact
        target_hosts.add(owner_index)
        self._num_edges += 1

    def remove_edge(self, source: Node, target: Node) -> None:
        """Delete edge ``(source, target)``; endpoints (and ghosts)
        remain."""
        if source not in self._hosts:
            raise MissingEdgeError((source, target))
        self._owner(source).remove_edge(source, target)
        self._num_edges -= 1

    def has_edge(self, source: Node, target: Node) -> bool:
        """Is ``(source, target)`` an edge of the logical graph?"""
        return source in self._hosts and self._owner(source).has_edge(
            source, target
        )

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges, grouped by source in global node
        insertion order (each edge exactly once, from its owner
        shard)."""
        for node in self._hosts:
            owner = self._owner(node)
            for target in owner.successors(node):
                yield (node, target)

    def successors(self, node: Node) -> Iterator[Node]:
        """Iterate over ``w`` with ``(node, w)`` an edge — complete from
        the owner shard alone (it holds the node's full out-adjacency)."""
        if node not in self._hosts:
            raise MissingNodeError(node)
        return self._owner(node).successors(node)

    def predecessors(self, node: Node) -> Iterator[Node]:
        """Iterate over ``u`` with ``(u, node)`` an edge — the disjoint
        union of every hosting shard's predecessor set."""
        hosts = self._hosts.get(node)
        if hosts is None:
            raise MissingNodeError(node)
        return (
            source
            for index in hosts
            for source in self._shards[index].predecessors(node)
        )

    def successor_set(self, node: Node) -> frozenset[Node]:
        """Frozen successor set of ``node``."""
        if node not in self._hosts:
            raise MissingNodeError(node)
        return self._owner(node).successor_set(node)

    def predecessor_set(self, node: Node) -> frozenset[Node]:
        """Frozen predecessor set of ``node`` (union across shards)."""
        return frozenset(self.predecessors(node))

    def out_degree(self, node: Node) -> int:
        """Number of out-edges of ``node``."""
        if node not in self._hosts:
            raise MissingNodeError(node)
        return self._owner(node).out_degree(node)

    def in_degree(self, node: Node) -> int:
        """Number of in-edges of ``node`` (summed across hosting shards)."""
        hosts = self._hosts.get(node)
        if hosts is None:
            raise MissingNodeError(node)
        return sum(self._shards[index].in_degree(node) for index in hosts)

    # ------------------------------------------------------------------
    # Sizes and dunders
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of logical nodes (ghost copies are not counted)."""
        return len(self._hosts)

    @property
    def num_edges(self) -> int:
        """Number of edges (each stored exactly once, at its owner)."""
        return self._num_edges

    def size(self) -> int:
        """``|V| + |E|``, the paper's measure of ``|G|``."""
        return self.num_nodes + self._num_edges

    def __len__(self) -> int:
        return self.num_nodes

    def __contains__(self, node: Node) -> bool:
        return node in self._hosts

    def __eq__(self, other: object) -> bool:
        """Logical-graph equality: same nodes, labels, and edges —
        regardless of shard layout, and symmetric with ``DiGraph``."""
        if not isinstance(other, (DiGraph, ShardedGraphStore)):
            return NotImplemented
        if self.num_nodes != len(other) or self.num_edges != other.num_edges:
            return False
        for node in self._hosts:
            if not other.has_node(node):
                return False
            if self.label(node) != other.label(node):
                return False
            if self.successor_set(node) != other.successor_set(node):
                return False
        return True

    def __repr__(self) -> str:
        return (
            f"ShardedGraphStore(|V|={self.num_nodes}, |E|={self.num_edges}, "
            f"shards={self.num_shards})"
        )

    # ------------------------------------------------------------------
    # Subgraphs
    # ------------------------------------------------------------------

    def subgraph(self, nodes: Iterable[Node]) -> DiGraph:
        """The induced subgraph on ``nodes``, as a plain ``DiGraph``
        (derived read-only views do not need to stay sharded)."""
        keep = set(nodes)
        missing = keep - self._hosts.keys()
        if missing:
            raise MissingNodeError(next(iter(missing)))
        sub = DiGraph()
        for node in keep:
            sub.add_node(node, label=self.label(node))
        for node in keep:
            for target in self.successor_set(node) & keep:
                sub.add_edge(node, target)
        return sub

    def edge_subgraph(self, edges: Iterable[Edge]) -> DiGraph:
        """The (not necessarily induced) subgraph on ``edges``, as a
        plain ``DiGraph``."""
        sub = DiGraph()
        for source, target in edges:
            if not self.has_edge(source, target):
                raise MissingEdgeError((source, target))
            if source not in sub:
                sub.add_node(source, label=self.label(source))
            if target not in sub:
                sub.add_node(target, label=self.label(target))
            sub.add_edge(source, target)
        return sub

    def reverse(self) -> DiGraph:
        """A plain ``DiGraph`` with every edge direction flipped."""
        rev = DiGraph()
        for node in self._hosts:
            rev.add_node(node, label=self.label(node))
        for source, target in self.edges():
            rev.add_edge(target, source)
        return rev

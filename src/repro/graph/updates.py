"""Random update workloads (paper Section 6, "Updates").

"Updates ΔG are randomly generated ... controlled by size |ΔG| and a ratio
ρ of edge insertions to deletions.  We use ρ = 1 unless stated otherwise,
i.e., the size of the data graphs G remain stable."

The generator samples deletions from existing edges and insertions from
fresh node pairs, interleaving them so a batch is a realistic mixed stream.
It guarantees the batch is *normalized* (no insert+delete of one edge) and
applicable in sequence order.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.core.delta import Delta, Update, delete, insert
from repro.graph.digraph import DiGraph, Label


class WorkloadError(RuntimeError):
    """The requested update workload cannot be generated."""


def random_delta(
    graph: DiGraph,
    size: int,
    rho: float = 1.0,
    seed: int = 0,
    new_node_fraction: float = 0.0,
    alphabet: Sequence[Label] | None = None,
) -> Delta:
    """Generate a batch ΔG of ``size`` unit updates against ``graph``.

    Parameters
    ----------
    size:
        |ΔG| — the number of unit updates.
    rho:
        Ratio of insertions to deletions.  ``rho = 1`` keeps |G| stable,
        larger values grow the graph, smaller values shrink it.  The count
        of insertions is ``round(size * rho / (1 + rho))``.
    seed:
        RNG seed; workloads are reproducible.
    new_node_fraction:
        Fraction of insertions whose target is a brand-new node (the
        paper's "insert e, possibly with new nodes").  New nodes get labels
        drawn from ``alphabet`` (falling back to existing graph labels).
    alphabet:
        Label pool for new nodes.

    The graph itself is *not* modified; the returned delta applies cleanly
    to a copy (enforced by construction: bookkeeping sets track the edge
    set as the batch would evolve it).
    """
    if size < 0:
        raise ValueError(f"|ΔG| must be non-negative, got {size}")
    if rho < 0:
        raise ValueError(f"rho must be non-negative, got {rho}")
    if not 0.0 <= new_node_fraction <= 1.0:
        raise ValueError("new_node_fraction must be within [0, 1]")

    rng = random.Random(seed)
    num_insertions = round(size * rho / (1.0 + rho)) if size else 0
    num_deletions = size - num_insertions
    if num_deletions > graph.num_edges:
        raise WorkloadError(
            f"cannot delete {num_deletions} edges from a graph with "
            f"{graph.num_edges}"
        )

    nodes = list(graph.nodes())
    if not nodes:
        raise WorkloadError("cannot build a workload against an empty graph")
    if alphabet is None:
        alphabet = sorted({graph.label(node) for node in nodes}, key=repr)

    # Evolving view of the edge set, so generated updates stay applicable
    # and normalized regardless of interleaving.  An edge ever touched by
    # the batch (inserted or deleted) is never touched again.
    present: set[tuple] = set(graph.edges())
    ever_touched: set[tuple] = set()
    deletable: list[tuple] = list(present)
    rng.shuffle(deletable)

    next_new_node = _fresh_node_start(nodes)
    plan = [True] * num_insertions + [False] * num_deletions
    rng.shuffle(plan)

    updates: list[Update] = []
    for is_insert in plan:
        if is_insert:
            updates.append(
                _draw_insert(
                    rng,
                    nodes,
                    present,
                    ever_touched,
                    alphabet,
                    new_node_fraction,
                    next_new_node,
                )
            )
            inserted_edge = updates[-1].edge
            present.add(inserted_edge)
            ever_touched.add(inserted_edge)
            if updates[-1].target not in graph and updates[-1].target == next_new_node:
                nodes.append(next_new_node)
                next_new_node += 1
        else:
            edge = _draw_delete(rng, deletable, present, ever_touched)
            updates.append(delete(*edge))
            ever_touched.add(edge)
            present.discard(edge)
    batch = Delta(updates)
    if not batch.is_normalized():  # pragma: no cover - defensive
        raise WorkloadError("generated batch is unexpectedly unnormalized")
    return batch


def _fresh_node_start(nodes: list) -> int:
    """Pick an integer id strictly above every existing integer node id."""
    numeric = [node for node in nodes if isinstance(node, int)]
    return (max(numeric) + 1) if numeric else len(nodes)


def _draw_insert(
    rng: random.Random,
    nodes: list,
    present: set,
    ever_touched: set,
    alphabet: Sequence[Label],
    new_node_fraction: float,
    next_new_node: int,
) -> Update:
    """Draw an applicable insertion, optionally to a brand-new node."""
    if new_node_fraction and rng.random() < new_node_fraction:
        source = nodes[rng.randrange(len(nodes))]
        label = alphabet[rng.randrange(len(alphabet))]
        return insert(source, next_new_node, target_label=label)
    for _ in range(200 * max(10, len(nodes))):
        source = nodes[rng.randrange(len(nodes))]
        target = nodes[rng.randrange(len(nodes))]
        edge = (source, target)
        if source != target and edge not in present and edge not in ever_touched:
            return insert(source, target)
    raise WorkloadError("failed to find a free node pair to insert (graph too dense?)")


def _draw_delete(
    rng: random.Random,
    deletable: list,
    present: set,
    ever_touched: set,
) -> tuple:
    """Draw an applicable deletion of an *original* edge.

    Only edges untouched by this batch are deleted, preserving
    normalization.
    """
    while deletable:
        edge = deletable.pop()
        if edge in present and edge not in ever_touched:
            return edge
    raise WorkloadError("ran out of deletable edges")


def delta_fraction(graph: DiGraph, fraction: float, rho: float = 1.0, seed: int = 0) -> Delta:
    """Batch sized as a fraction of |E| — the x-axis of Figures 8(a)-(i).

    The paper varies |ΔG| as "5% to 40% of |G|"; its |G| axis is edge-count
    dominated (50M/100M), and updates are edges, so we interpret the
    percentage against |E|.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    return random_delta(graph, round(graph.num_edges * fraction), rho=rho, seed=seed)


def unit_insert_workload(graph: DiGraph, count: int, seed: int = 0) -> list[Delta]:
    """``count`` independent single-insert batches (Exp-1(5) unit updates)."""
    base = random_delta(graph, count, rho=1e9, seed=seed)
    return [Delta([update]) for update in base.insertions[:count]]


def unit_delete_workload(graph: DiGraph, count: int, seed: int = 0) -> list[Delta]:
    """``count`` independent single-delete batches (each against G itself)."""
    rng = random.Random(seed)
    edges = list(graph.edges())
    if count > len(edges):
        raise WorkloadError(f"graph has only {len(edges)} edges, {count} deletes requested")
    rng.shuffle(edges)
    return [Delta([delete(*edge)]) for edge in edges[:count]]

"""Labeled directed graphs, the substrate shared by every query class.

The paper (Section 2) models data as directed graphs ``G = (V, E, l)`` where
``l`` assigns each node a label.  Incremental algorithms walk edges in both
directions (e.g. ``IncKWS`` propagates along *predecessors*, ``IncSCC``
searches forward and backward in the contracted graph), so :class:`DiGraph`
maintains successor and predecessor adjacency simultaneously.

Nodes may be any hashable value; benchmarks use integers.  Labels may be any
hashable value; the paper draws them from a finite alphabet of strings.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Optional

Node = Hashable
Label = Hashable
Edge = tuple[Node, Node]

DEFAULT_LABEL: Label = ""


class GraphError(Exception):
    """Base error for graph-structure violations."""


class MissingNodeError(GraphError, KeyError):
    """Raised when an operation references a node that is not in the graph."""

    def __init__(self, node: Node) -> None:
        super().__init__(node)
        self.node = node

    def __str__(self) -> str:  # KeyError quotes its repr; keep it readable.
        return f"node {self.node!r} is not in the graph"


class MissingEdgeError(GraphError, KeyError):
    """Raised when an operation references an edge that is not in the graph."""

    def __init__(self, edge: Edge) -> None:
        super().__init__(edge)
        self.edge = edge

    def __str__(self) -> str:
        return f"edge {self.edge!r} is not in the graph"


class DuplicateEdgeError(GraphError, ValueError):
    """Raised when inserting an edge that already exists."""

    def __init__(self, edge: Edge) -> None:
        super().__init__(f"edge {edge!r} is already in the graph")
        self.edge = edge


class DiGraph:
    """A simple directed graph with node labels and bidirectional adjacency.

    The graph is *simple*: at most one edge per ordered node pair and no
    implicit self-loop restriction (self-loops are legal, as in the paper's
    model).  All mutators keep the successor and predecessor maps in sync.

    Example::

        g = DiGraph()
        g.add_node(1, label="a")
        g.add_node(2, label="b")
        g.add_edge(1, 2)
        assert list(g.successors(1)) == [2]
        assert list(g.predecessors(2)) == [1]
    """

    __slots__ = ("_succ", "_pred", "_labels", "_num_edges", "_oob_version")

    def __init__(
        self,
        edges: Optional[Iterable[Edge]] = None,
        labels: Optional[dict[Node, Label]] = None,
    ) -> None:
        self._succ: dict[Node, set[Node]] = {}
        self._pred: dict[Node, set[Node]] = {}
        self._labels: dict[Node, Label] = {}
        self._num_edges = 0
        self._oob_version = 0
        if labels:
            for node, label in labels.items():
                self.add_node(node, label=label)
        if edges:
            for source, target in edges:
                self.add_edge(source, target)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_labeled_edges(
        cls,
        labels: dict[Node, Label],
        edges: Iterable[Edge],
    ) -> "DiGraph":
        """Build a graph from a label map and an edge list in one call."""
        return cls(edges=edges, labels=labels)

    def copy(self) -> "DiGraph":
        """Return an independent deep copy of the structure (labels shared)."""
        clone = DiGraph()
        clone._labels = dict(self._labels)
        clone._succ = {node: set(targets) for node, targets in self._succ.items()}
        clone._pred = {node: set(sources) for node, sources in self._pred.items()}
        clone._num_edges = self._num_edges
        clone._oob_version = self._oob_version
        return clone

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------

    def add_node(self, node: Node, label: Label = DEFAULT_LABEL) -> None:
        """Add ``node`` with ``label``; re-adding updates the label only."""
        if node not in self._succ:
            self._succ[node] = set()
            self._pred[node] = set()
        elif self._labels[node] != label:
            self._oob_version += 1  # relabel: no delta can express this
        self._labels[node] = label

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and every incident edge."""
        if node not in self._succ:
            raise MissingNodeError(node)
        self._oob_version += 1  # no delta can express node removal
        for target in tuple(self._succ[node]):
            self.remove_edge(node, target)
        for source in tuple(self._pred[node]):
            self.remove_edge(source, node)
        del self._succ[node]
        del self._pred[node]
        del self._labels[node]

    def has_node(self, node: Node) -> bool:
        """Is ``node`` in the graph?"""
        return node in self._succ

    def label(self, node: Node) -> Label:
        """Return the label of ``node``."""
        try:
            return self._labels[node]
        except KeyError:
            raise MissingNodeError(node) from None

    def set_label(self, node: Node, label: Label) -> None:
        """Relabel an existing node."""
        if node not in self._succ:
            raise MissingNodeError(node)
        if self._labels[node] != label:
            self._oob_version += 1  # relabel: no delta can express this
        self._labels[node] = label

    @property
    def oob_version(self) -> int:
        """Monotonic count of mutations no batch update can express —
        relabels of existing nodes and node removals.  Edge updates flow
        through the engine's journal, so persistence derives incremental
        graph diffs from the log; this counter is the tripwire telling
        :meth:`repro.persist.SnapshotStore.save` the graph moved outside
        that channel and the diff base must be rewritten in full."""
        return self._oob_version

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes (insertion order)."""
        return iter(self._succ)

    def nodes_with_label(self, label: Label) -> Iterator[Node]:
        """Iterate over nodes carrying ``label`` (linear scan)."""
        return (node for node, node_label in self._labels.items() if node_label == label)

    @property
    def labels(self) -> dict[Node, Label]:
        """Read-only view of the label map (do not mutate)."""
        return self._labels

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------

    def add_edge(
        self,
        source: Node,
        target: Node,
        source_label: Label = DEFAULT_LABEL,
        target_label: Label = DEFAULT_LABEL,
    ) -> None:
        """Insert edge ``(source, target)``, creating endpoints if absent.

        The paper's unit insertion "(insert e), possibly with new nodes"
        (Section 2.2) is modeled by the implicit node creation; labels for
        pre-existing endpoints are left untouched.
        """
        if source not in self._succ:
            self.add_node(source, label=source_label)
        if target not in self._succ:
            self.add_node(target, label=target_label)
        if target in self._succ[source]:
            raise DuplicateEdgeError((source, target))
        self._succ[source].add(target)
        self._pred[target].add(source)
        self._num_edges += 1

    def remove_edge(self, source: Node, target: Node) -> None:
        """Delete edge ``(source, target)``; endpoints remain."""
        if source not in self._succ or target not in self._succ[source]:
            raise MissingEdgeError((source, target))
        self._succ[source].discard(target)
        self._pred[target].discard(source)
        self._num_edges -= 1

    def has_edge(self, source: Node, target: Node) -> bool:
        """Is ``(source, target)`` an edge of the graph?"""
        return source in self._succ and target in self._succ[source]

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges as ``(source, target)`` pairs."""
        for source, targets in self._succ.items():
            for target in targets:
                yield (source, target)

    def successors(self, node: Node) -> Iterator[Node]:
        """Iterate over ``w`` such that ``(node, w)`` is an edge."""
        try:
            return iter(self._succ[node])
        except KeyError:
            raise MissingNodeError(node) from None

    def predecessors(self, node: Node) -> Iterator[Node]:
        """Iterate over ``u`` such that ``(u, node)`` is an edge."""
        try:
            return iter(self._pred[node])
        except KeyError:
            raise MissingNodeError(node) from None

    def successor_set(self, node: Node) -> frozenset[Node]:
        """Frozen successor set of ``node``."""
        try:
            return frozenset(self._succ[node])
        except KeyError:
            raise MissingNodeError(node) from None

    def predecessor_set(self, node: Node) -> frozenset[Node]:
        """Frozen predecessor set of ``node``."""
        try:
            return frozenset(self._pred[node])
        except KeyError:
            raise MissingNodeError(node) from None

    def out_degree(self, node: Node) -> int:
        """Number of out-edges of ``node``."""
        try:
            return len(self._succ[node])
        except KeyError:
            raise MissingNodeError(node) from None

    def in_degree(self, node: Node) -> int:
        """Number of in-edges of ``node``."""
        try:
            return len(self._pred[node])
        except KeyError:
            raise MissingNodeError(node) from None

    # ------------------------------------------------------------------
    # Sizes and dunders
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes, ``|V|``."""
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        """Number of edges, ``|E|``."""
        return self._num_edges

    def size(self) -> int:
        """Return ``|V| + |E|``, the paper's measure of ``|G|``."""
        return self.num_nodes + self.num_edges

    def __len__(self) -> int:
        return self.num_nodes

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            self._labels == other._labels
            and self._succ == other._succ
        )

    def __repr__(self) -> str:
        return f"DiGraph(|V|={self.num_nodes}, |E|={self.num_edges})"

    # ------------------------------------------------------------------
    # Subgraphs
    # ------------------------------------------------------------------

    def subgraph(self, nodes: Iterable[Node]) -> "DiGraph":
        """Return the subgraph *induced* by ``nodes`` (paper Section 2).

        Edges are retained exactly when both endpoints lie in ``nodes``;
        labels are inherited.
        """
        keep = set(nodes)
        missing = keep - self._succ.keys()
        if missing:
            raise MissingNodeError(next(iter(missing)))
        sub = DiGraph()
        for node in keep:
            sub.add_node(node, label=self._labels[node])
        for node in keep:
            for target in self._succ[node] & keep:
                sub.add_edge(node, target)
        return sub

    def edge_subgraph(self, edges: Iterable[Edge]) -> "DiGraph":
        """Return the (not necessarily induced) subgraph on ``edges``."""
        sub = DiGraph()
        for source, target in edges:
            if not self.has_edge(source, target):
                raise MissingEdgeError((source, target))
            if source not in sub:
                sub.add_node(source, label=self._labels[source])
            if target not in sub:
                sub.add_node(target, label=self._labels[target])
            sub.add_edge(source, target)
        return sub

    def reverse(self) -> "DiGraph":
        """Return a graph with every edge direction flipped."""
        rev = DiGraph()
        for node, label in self._labels.items():
            rev.add_node(node, label=label)
        for source, target in self.edges():
            rev.add_edge(target, source)
        return rev

"""d-hop neighborhoods — the locality primitive of Section 4.1.

The paper defines, for a node ``v`` of ``G``:

* ``V_d(v)``   — all nodes within ``d`` hops of ``v`` *treating G as
  undirected* ("within d hops" uses ``dist`` over the undirected view);
* ``G_d(v)``   — the subgraph of ``G`` induced by ``V_d(v)``; its edge set
  is written ``E_d(v)``.

Localizable incremental algorithms (Theorem 3) confine their work to the
``d_Q``-neighborhoods of the endpoints of updated edges, so these helpers
are used both by :mod:`repro.iso.incremental` and by the locality assertions
in the test-suite.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.core.cost import CostMeter, NULL_METER
from repro.graph.digraph import DiGraph, MissingNodeError, Node


def nodes_within(
    graph: DiGraph,
    sources: Iterable[Node],
    d: int,
    meter: CostMeter = NULL_METER,
) -> set[Node]:
    """Return ``V_d`` of the union of ``sources``: nodes within ``d``
    undirected hops of any source.

    Sources absent from the graph raise :class:`MissingNodeError` — updates
    referencing unknown nodes indicate a workload bug, not a silent no-op.
    """
    if d < 0:
        raise ValueError(f"neighborhood radius must be non-negative, got {d}")
    frontier: deque[tuple[Node, int]] = deque()
    seen: set[Node] = set()
    for source in sources:
        if source not in graph:
            raise MissingNodeError(source)
        if source not in seen:
            seen.add(source)
            frontier.append((source, 0))
    while frontier:
        node, depth = frontier.popleft()
        meter.visit_node(node)
        if depth == d:
            continue
        for neighbor in graph.successors(node):
            meter.traverse_edge()
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append((neighbor, depth + 1))
        for neighbor in graph.predecessors(node):
            meter.traverse_edge()
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append((neighbor, depth + 1))
    return seen


def d_neighborhood(
    graph: DiGraph,
    sources: Iterable[Node],
    d: int,
    meter: CostMeter = NULL_METER,
) -> DiGraph:
    """Return ``G_d`` of the union of ``sources`` — the induced subgraph on
    :func:`nodes_within` (paper notation ``G_d(v)``)."""
    return graph.subgraph(nodes_within(graph, sources, d, meter=meter))


def neighborhood_of_updates(
    graph: DiGraph,
    edges: Iterable[tuple[Node, Node]],
    d: int,
    meter: CostMeter = NULL_METER,
) -> DiGraph:
    """Return the union of d-neighborhoods of both endpoints of ``edges``.

    This is the region a localizable algorithm may inspect:
    ``G_d(ΔG)`` in the paper's notation.  Endpoints not present in the
    graph (e.g. an edge already deleted) are skipped rather than raising,
    because batch updates may remove nodes before their neighborhood is
    requested.
    """
    endpoints = [
        node
        for edge in edges
        for node in edge
        if node in graph
    ]
    if not endpoints:
        return DiGraph()
    return d_neighborhood(graph, endpoints, d, meter=meter)


def undirected_distance(graph: DiGraph, source: Node, target: Node) -> int | None:
    """Shortest hop count between two nodes in the undirected view of
    ``graph`` or ``None`` if disconnected.  Used by tests and by pattern
    diameter computation."""
    if source not in graph:
        raise MissingNodeError(source)
    if target not in graph:
        raise MissingNodeError(target)
    if source == target:
        return 0
    seen = {source}
    frontier = deque([(source, 0)])
    while frontier:
        node, depth = frontier.popleft()
        for neighbor in set(graph.successors(node)) | set(graph.predecessors(node)):
            if neighbor == target:
                return depth + 1
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append((neighbor, depth + 1))
    return None

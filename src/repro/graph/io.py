"""Plain-text serialization for labeled digraphs and update batches.

Format (one record per line, ``#`` comments allowed)::

    n <node> <label>     # node declaration
    e <source> <target>  # edge
    + <source> <target> [<source_label> <target_label>]   # delta insert
    - <source> <target>                                   # delta delete

Node identifiers are written with ``repr``-free plain text; integers round-
trip as integers, everything else as strings.  The format is deliberately
trivial — it exists so examples can persist and reload scenario graphs and
so failures in randomized tests can be dumped for inspection.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

from repro.core.delta import Delta, delete, insert
from repro.graph.digraph import DEFAULT_LABEL, DiGraph

PathLike = Union[str, Path]


class FormatError(ValueError):
    """Malformed graph/delta text."""

    def __init__(self, line_number: int, line: str, reason: str) -> None:
        super().__init__(f"line {line_number}: {reason}: {line!r}")
        self.line_number = line_number


def _parse_node(token: str):
    """Integers round-trip as ints; everything else stays a string."""
    try:
        return int(token)
    except ValueError:
        return token


def write_graph(graph: DiGraph, destination: Union[PathLike, TextIO]) -> None:
    """Serialize ``graph`` (nodes first, then edges)."""
    stream, owned = _open(destination, "w")
    try:
        stream.write(f"# repro graph |V|={graph.num_nodes} |E|={graph.num_edges}\n")
        for node in graph.nodes():
            stream.write(f"n {node} {graph.label(node)}\n")
        for source, target in graph.edges():
            stream.write(f"e {source} {target}\n")
    finally:
        if owned:
            stream.close()


def read_graph(source: Union[PathLike, TextIO]) -> DiGraph:
    """Parse a graph written by :func:`write_graph`."""
    stream, owned = _open(source, "r")
    graph = DiGraph()
    try:
        for line_number, raw in enumerate(stream, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            tag = fields[0]
            if tag == "n":
                if len(fields) < 2:
                    raise FormatError(line_number, line, "node record needs an id")
                label = fields[2] if len(fields) > 2 else DEFAULT_LABEL
                graph.add_node(_parse_node(fields[1]), label=label)
            elif tag == "e":
                if len(fields) != 3:
                    raise FormatError(line_number, line, "edge record needs two endpoints")
                graph.add_edge(_parse_node(fields[1]), _parse_node(fields[2]))
            else:
                raise FormatError(line_number, line, f"unknown record tag {tag!r}")
    finally:
        if owned:
            stream.close()
    return graph


def write_delta(delta: Delta, destination: Union[PathLike, TextIO]) -> None:
    """Serialize a batch update."""
    stream, owned = _open(destination, "w")
    try:
        stream.write(f"# repro delta |dG|={len(delta)}\n")
        for update in delta:
            if update.is_insert:
                stream.write(
                    f"+ {update.source} {update.target} "
                    f"{update.source_label} {update.target_label}\n"
                )
            else:
                stream.write(f"- {update.source} {update.target}\n")
    finally:
        if owned:
            stream.close()


def read_delta(source: Union[PathLike, TextIO]) -> Delta:
    """Parse a batch written by :func:`write_delta`."""
    stream, owned = _open(source, "r")
    updates = []
    try:
        for line_number, raw in enumerate(stream, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            tag = fields[0]
            if tag == "+":
                if len(fields) not in (3, 5):
                    raise FormatError(line_number, line, "insert needs 2 or 4 operands")
                source_label = fields[3] if len(fields) == 5 else DEFAULT_LABEL
                target_label = fields[4] if len(fields) == 5 else DEFAULT_LABEL
                updates.append(
                    insert(
                        _parse_node(fields[1]),
                        _parse_node(fields[2]),
                        source_label=source_label,
                        target_label=target_label,
                    )
                )
            elif tag == "-":
                if len(fields) != 3:
                    raise FormatError(line_number, line, "delete needs two operands")
                updates.append(delete(_parse_node(fields[1]), _parse_node(fields[2])))
            else:
                raise FormatError(line_number, line, f"unknown record tag {tag!r}")
    finally:
        if owned:
            stream.close()
    return Delta(updates)


def graph_to_string(graph: DiGraph) -> str:
    """Serialize to an in-memory string (debug dumps in test failures)."""
    buffer = io.StringIO()
    write_graph(graph, buffer)
    return buffer.getvalue()


def _open(target: Union[PathLike, TextIO], mode: str) -> tuple[TextIO, bool]:
    """Normalize a path-or-stream argument; report stream ownership."""
    if isinstance(target, (str, Path)):
        return open(target, mode, encoding="utf-8"), True
    return target, False

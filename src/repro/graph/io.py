"""Plain-text serialization for labeled digraphs and update batches.

Format (one record per line, ``#`` comments allowed)::

    n <node> <label>     # node declaration
    e <source> <target>  # edge
    + <source> <target> [<source_label> <target_label>]   # delta insert
    - <source> <target>                                   # delta delete

(``write_delta`` always emits both insert labels — quoting makes the
empty label representable — while ``read_delta`` also accepts the
label-less 2-operand form.)

Tokens are written bare when they are unambiguous; anything else — strings
with whitespace, quotes, ``#``, the empty string, or strings that *look*
like integers — is double-quoted with backslash escapes, so every value
round-trips losslessly.  Bare integers round-trip as integers, quoted
tokens always as strings.  Values that are neither ``int`` nor ``str``
(tuples, floats, ...) raise :class:`SerializationError` at write time
rather than coming back as something else.

The format is deliberately trivial — it exists so examples can persist and
reload scenario graphs and so failures in randomized tests can be dumped
for inspection.  The record-level helpers (:func:`graph_record_lines`,
:func:`apply_graph_record`, :func:`update_to_line`,
:func:`update_from_fields`) are shared with :mod:`repro.persist`, whose
sectioned snapshot/delta-log files embed exactly these records — one
quoting discipline, one parser, everywhere state touches disk.
"""

from __future__ import annotations

import io
from collections.abc import Iterator
from pathlib import Path
from typing import TextIO, Union

from repro.core.delta import Delta, Update, delete, insert
from repro.graph.digraph import DiGraph
from repro.graph.io_tokens import SerializationError, format_token, tokenize

PathLike = Union[str, Path]

__all__ = [
    "FormatError",
    "SerializationError",
    "apply_graph_record",
    "graph_record_lines",
    "graph_to_string",
    "read_delta",
    "read_graph",
    "update_from_fields",
    "update_to_line",
    "write_delta",
    "write_graph",
]


class FormatError(ValueError):
    """Malformed graph/delta text."""

    def __init__(self, line_number: int, line: str, reason: str) -> None:
        super().__init__(f"line {line_number}: {reason}: {line!r}")
        self.line_number = line_number


def graph_record_lines(graph: DiGraph) -> Iterator[str]:
    """Yield one terminated record line per node and edge of ``graph``
    (nodes first, then edges) — the body :func:`write_graph` wraps."""
    for node in graph.nodes():
        yield f"n {format_token(node)} {format_token(graph.label(node))}\n"
    for source, target in graph.edges():
        yield f"e {format_token(source)} {format_token(target)}\n"


def apply_graph_record(graph: DiGraph, fields: list) -> None:
    """Replay one tokenized ``n``/``e`` record into ``graph``.

    Raises plain :class:`ValueError` on malformed records; stream-level
    callers wrap it with line context (:class:`FormatError`).
    """
    tag = fields[0]
    if tag == "n":
        if len(fields) not in (2, 3):
            raise ValueError("node record needs an id and at most a label")
        label = fields[2] if len(fields) == 3 else ""
        graph.add_node(fields[1], label=label)
    elif tag == "e":
        if len(fields) != 3:
            raise ValueError("edge record needs two endpoints")
        graph.add_edge(fields[1], fields[2])
    else:
        raise ValueError(f"unknown record tag {tag!r}")


def update_to_line(update: Update) -> str:
    """Render one unit update as a terminated ``+``/``-`` record line."""
    if update.is_insert:
        return (
            f"+ {format_token(update.source)} {format_token(update.target)} "
            f"{format_token(update.source_label)} "
            f"{format_token(update.target_label)}\n"
        )
    return f"- {format_token(update.source)} {format_token(update.target)}\n"


def update_from_fields(fields: list) -> Update:
    """Parse one tokenized ``+``/``-`` record back into an update.

    Raises plain :class:`ValueError` on malformed records; stream-level
    callers wrap it with line context (:class:`FormatError`).
    """
    tag = fields[0]
    if tag == "+":
        if len(fields) not in (3, 5):
            raise ValueError("insert needs 2 or 4 operands")
        source_label = fields[3] if len(fields) == 5 else ""
        target_label = fields[4] if len(fields) == 5 else ""
        return insert(
            fields[1],
            fields[2],
            source_label=source_label,
            target_label=target_label,
        )
    if tag == "-":
        if len(fields) != 3:
            raise ValueError("delete needs two operands")
        return delete(fields[1], fields[2])
    raise ValueError(f"unknown record tag {tag!r}")


def write_graph(graph: DiGraph, destination: Union[PathLike, TextIO]) -> None:
    """Serialize ``graph`` (nodes first, then edges)."""
    stream, owned = _open(destination, "w")
    try:
        stream.write(f"# repro graph |V|={graph.num_nodes} |E|={graph.num_edges}\n")
        for line in graph_record_lines(graph):
            stream.write(line)
    finally:
        if owned:
            stream.close()


def read_graph(source: Union[PathLike, TextIO]) -> DiGraph:
    """Parse a graph written by :func:`write_graph`."""
    stream, owned = _open(source, "r")
    graph = DiGraph()
    try:
        for line_number, raw in enumerate(stream, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = _fields(line_number, line)
            try:
                apply_graph_record(graph, fields)
            except ValueError as exc:
                raise FormatError(line_number, line, str(exc)) from None
    finally:
        if owned:
            stream.close()
    return graph


def write_delta(delta: Delta, destination: Union[PathLike, TextIO]) -> None:
    """Serialize a batch update."""
    stream, owned = _open(destination, "w")
    try:
        stream.write(f"# repro delta |dG|={len(delta)}\n")
        for update in delta:
            stream.write(update_to_line(update))
    finally:
        if owned:
            stream.close()


def read_delta(source: Union[PathLike, TextIO]) -> Delta:
    """Parse a batch written by :func:`write_delta`."""
    stream, owned = _open(source, "r")
    updates = []
    try:
        for line_number, raw in enumerate(stream, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = _fields(line_number, line)
            try:
                updates.append(update_from_fields(fields))
            except ValueError as exc:
                raise FormatError(line_number, line, str(exc)) from None
    finally:
        if owned:
            stream.close()
    return Delta(updates)


def graph_to_string(graph: DiGraph) -> str:
    """Serialize to an in-memory string (debug dumps in test failures)."""
    buffer = io.StringIO()
    write_graph(graph, buffer)
    return buffer.getvalue()


def _fields(line_number: int, line: str) -> list:
    try:
        return tokenize(line)
    except ValueError as exc:
        raise FormatError(line_number, line, str(exc)) from None


def _open(target: Union[PathLike, TextIO], mode: str) -> tuple[TextIO, bool]:
    """Normalize a path-or-stream argument; report stream ownership."""
    if isinstance(target, (str, Path)):
        return open(target, mode, encoding="utf-8"), True
    return target, False

"""Descriptive statistics over graphs (used by dataset profile tests and
the benchmark reports to show each synthetic substitute matches the shape
the paper reports for its real datasets)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.graph.digraph import DiGraph


@dataclass(frozen=True)
class GraphProfile:
    """Summary shape of a dataset.

    ``avg_degree`` is the undirected average (the paper quotes "the average
    node degree is 14.3 in social graphs"); ``max_scc_fraction`` is the
    share of nodes in the largest strongly connected component (the paper
    notes LiveJournal's reaches ~77%).
    """

    num_nodes: int
    num_edges: int
    num_labels: int
    avg_degree: float
    max_in_degree: int
    max_out_degree: int
    max_scc_fraction: float

    def __str__(self) -> str:
        return (
            f"|V|={self.num_nodes} |E|={self.num_edges} |Σ|={self.num_labels} "
            f"avg_deg={self.avg_degree:.2f} max_scc={self.max_scc_fraction:.0%}"
        )


def profile(graph: DiGraph) -> GraphProfile:
    """Compute a :class:`GraphProfile` for ``graph``."""
    from repro.scc.tarjan import tarjan_scc

    num_nodes = graph.num_nodes
    num_edges = graph.num_edges
    labels = {graph.label(node) for node in graph.nodes()}
    avg_degree = (2.0 * num_edges / num_nodes) if num_nodes else 0.0
    max_in = max((graph.in_degree(node) for node in graph.nodes()), default=0)
    max_out = max((graph.out_degree(node) for node in graph.nodes()), default=0)
    if num_nodes:
        components = tarjan_scc(graph).components
        largest = max((len(component) for component in components), default=0)
        max_scc_fraction = largest / num_nodes
    else:
        max_scc_fraction = 0.0
    return GraphProfile(
        num_nodes=num_nodes,
        num_edges=num_edges,
        num_labels=len(labels),
        avg_degree=avg_degree,
        max_in_degree=max_in,
        max_out_degree=max_out,
        max_scc_fraction=max_scc_fraction,
    )


def label_histogram(graph: DiGraph) -> Counter:
    """Frequency of each label (query generators sample from this)."""
    return Counter(graph.label(node) for node in graph.nodes())


def degree_histogram(graph: DiGraph) -> Counter:
    """Out-degree frequency histogram."""
    return Counter(graph.out_degree(node) for node in graph.nodes())

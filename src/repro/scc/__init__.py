"""Strongly connected components: Tarjan, contracted graph, IncSCC, DynSCC."""

from repro.scc.condensation import CompId, Condensation, CondensationError
from repro.scc.dynscc import DynSCC
from repro.scc.incremental import SCCDelta, SCCIndex, inc_scc_n
from repro.scc.tarjan import (
    EdgeKind,
    TarjanResult,
    condensation_edges,
    is_strongly_connected,
    tarjan_scc,
    verify_rank_invariant,
)

__all__ = [
    "CompId",
    "Condensation",
    "CondensationError",
    "DynSCC",
    "EdgeKind",
    "SCCDelta",
    "SCCIndex",
    "TarjanResult",
    "condensation_edges",
    "inc_scc_n",
    "is_strongly_connected",
    "tarjan_scc",
    "verify_rank_invariant",
]

"""Tarjan's SCC algorithm [43] with the paper's auxiliary outputs.

Section 5.3 incrementalizes Tarjan, which requires more than the component
partition: the incremental algorithms maintain, per node,

* ``num``     — DFS discovery order (unique integer),
* ``lowlink`` — smallest ``num`` reachable via tree arcs plus at most one
  frond/cross-link within the same component,

an *edge classification* (tree arc / frond / reverse frond / cross-link),
and a *topological rank* per component: Tarjan emits components in reverse
topological order, so ranking components by emission order yields the
invariant ``r(u) > r(v)`` for every inter-component edge ``(u, v)`` — the
property IncSCC+ capitalizes on (Fig. 7).

The implementation is iterative (explicit stacks) so graph size is not
limited by Python's recursion limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.cost import CostMeter, NULL_METER
from repro.graph.digraph import DiGraph, Edge, Node


class EdgeKind(Enum):
    """Tarjan's four DFS edge classes (paper Section 5.3)."""

    TREE_ARC = "tree"
    FROND = "frond"            # descendant -> ancestor
    REVERSE_FROND = "reverse"  # ancestor -> descendant (non-tree)
    CROSS_LINK = "cross"       # between different subtrees


@dataclass
class TarjanResult:
    """Everything a run of Tarjan produces.

    ``components`` are frozen node sets in *emission order* — reverse
    topological order of the condensation, which doubles as the initial
    topological rank assignment (component i gets rank i; see
    :mod:`repro.scc.condensation`).
    """

    components: list[frozenset[Node]] = field(default_factory=list)
    num: dict[Node, int] = field(default_factory=dict)
    lowlink: dict[Node, int] = field(default_factory=dict)
    edge_kinds: dict[Edge, EdgeKind] = field(default_factory=dict)
    component_of: dict[Node, int] = field(default_factory=dict)
    roots: list[Node] = field(default_factory=list)

    def component_containing(self, node: Node) -> frozenset[Node]:
        return self.components[self.component_of[node]]

    def partition(self) -> set[frozenset[Node]]:
        """Order-free view for equality checks against recomputation."""
        return set(self.components)

    def __len__(self) -> int:
        return len(self.components)


def tarjan_scc(
    graph: DiGraph,
    meter: CostMeter = NULL_METER,
    restrict_to: frozenset[Node] | None = None,
) -> TarjanResult:
    """Run Tarjan's algorithm over ``graph`` (or the induced subgraph on
    ``restrict_to``) and return the full :class:`TarjanResult`.

    ``restrict_to`` lets IncSCC re-run Tarjan locally on one affected
    component without materializing a subgraph copy — edges leaving the
    restriction set are ignored, matching Tarjan on ``G[restrict_to]``.
    """
    result = TarjanResult()
    num = result.num
    lowlink = result.lowlink
    edge_kinds = result.edge_kinds

    in_scope: frozenset[Node] | None = restrict_to
    counter = 0
    stack: list[Node] = []           # Tarjan's component stack
    on_stack: set[Node] = set()
    # Nodes with a decided component are "closed": edges into them from
    # later subtrees are cross-links.
    ancestors: set[Node] = set()     # nodes on the current DFS call path

    def scope(node: Node) -> bool:
        return in_scope is None or node in in_scope

    for start in graph.nodes():
        if not scope(start) or start in num:
            continue
        # Iterative DFS: each frame is (node, iterator over successors).
        num[start] = lowlink[start] = counter
        counter += 1
        meter.visit_node(start)
        meter.write()
        stack.append(start)
        on_stack.add(start)
        ancestors.add(start)
        call_stack: list[tuple[Node, list[Node], int]] = [
            (start, [s for s in graph.successors(start) if scope(s)], 0)
        ]
        while call_stack:
            node, successors, cursor = call_stack[-1]
            advanced = False
            while cursor < len(successors):
                successor = successors[cursor]
                cursor += 1
                meter.traverse_edge()
                if successor not in num:
                    edge_kinds[(node, successor)] = EdgeKind.TREE_ARC
                    num[successor] = lowlink[successor] = counter
                    counter += 1
                    meter.visit_node(successor)
                    meter.write()
                    stack.append(successor)
                    on_stack.add(successor)
                    ancestors.add(successor)
                    call_stack[-1] = (node, successors, cursor)
                    call_stack.append(
                        (successor, [s for s in graph.successors(successor) if scope(s)], 0)
                    )
                    advanced = True
                    break
                # Already discovered: classify and maybe update lowlink.
                if successor in ancestors:
                    edge_kinds[(node, successor)] = EdgeKind.FROND
                elif num[successor] > num[node]:
                    edge_kinds[(node, successor)] = EdgeKind.REVERSE_FROND
                else:
                    edge_kinds[(node, successor)] = EdgeKind.CROSS_LINK
                if successor in on_stack and num[successor] < lowlink[node]:
                    lowlink[node] = num[successor]
                    meter.write()
            if advanced:
                continue
            call_stack.pop()
            ancestors.discard(node)
            if call_stack:
                parent = call_stack[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
                    meter.write()
            if lowlink[node] == num[node]:
                # node is the root of an SCC: pop the component.
                component: list[Node] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                index = len(result.components)
                result.components.append(frozenset(component))
                result.roots.append(node)
                for member in component:
                    result.component_of[member] = index
    return result


def condensation_edges(
    graph: DiGraph,
    result: TarjanResult,
) -> dict[tuple[int, int], int]:
    """Count inter-component edges: ``(source_comp, target_comp) -> count``.

    The contracted graph G_c "maintains a counter for the number of
    cross-links from one node to another" (Section 5.3); the counter lets
    IncSCC− decrement instead of rescanning on inter-component deletions.
    """
    counters: dict[tuple[int, int], int] = {}
    component_of = result.component_of
    for source, target in graph.edges():
        source_comp = component_of[source]
        target_comp = component_of[target]
        if source_comp != target_comp:
            key = (source_comp, target_comp)
            counters[key] = counters.get(key, 0) + 1
    return counters


def is_strongly_connected(graph: DiGraph, nodes: frozenset[Node]) -> bool:
    """Check that ``nodes`` induce one SCC (test helper)."""
    if not nodes:
        return False
    result = tarjan_scc(graph, restrict_to=nodes)
    return len(result.components) == 1 and result.components[0] == nodes


def verify_rank_invariant(
    graph: DiGraph,
    result: TarjanResult,
    ranks: dict[int, int] | None = None,
) -> bool:
    """Check ``r(u) > r(v)`` for every inter-component edge ``(u, v)``.

    With ``ranks`` omitted, emission order is used (component index).
    """
    component_of = result.component_of
    rank_of = ranks if ranks is not None else {i: i for i in range(len(result.components))}
    for source, target in graph.edges():
        source_comp = component_of[source]
        target_comp = component_of[target]
        if source_comp == target_comp:
            continue
        if not rank_of[source_comp] > rank_of[target_comp]:
            return False
    return True

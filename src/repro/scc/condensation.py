"""The contracted graph G_c (paper Section 5.3, "Auxiliary structures").

Each SCC of ``G`` is contracted to a single node; G_c keeps

* a **counter** per inter-component edge (the number of underlying graph
  edges), so deletions decrement instead of rescanning,
* a **topological rank** ``r`` per component with the invariant
  ``r(u) > r(v)`` for every edge ``(u, v)`` of G_c — initialized from
  Tarjan's emission order (components are emitted in reverse topological
  order) and maintained under updates by IncSCC.

Ranks are floats (unique and ordered; contiguity is never required):
component splits inject new ranks strictly between existing ones by
interpolation, and in the rare event float precision is exhausted —
detected, never silent — :meth:`Condensation.renumber` reassigns integral
ranks from a fresh topological sort of G_c.

Merges keep the *largest* participant's identity and move the smaller
components' adjacency rows into it; splits keep the identity of the
largest surviving part and re-derive counters only from the *moved*
nodes' incident edges.  Both are the classic small-into-large
amortization: repeatedly merging satellites into a giant component costs
O(satellite), not O(giant).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.cost import CostMeter, NULL_METER
from repro.graph.digraph import DiGraph, Node
from repro.scc.tarjan import TarjanResult

CompId = int


class CondensationError(RuntimeError):
    """Internal inconsistency in the contracted graph."""


@dataclass
class Condensation:
    """Mutable contracted graph with ranks and edge counters.

    ``members`` values are live sets — treat them as read-only views;
    :meth:`partition` returns frozen copies for value comparisons.
    A merge keeps the largest participant's id; a split keeps the largest
    part's id; all other ids involved become invalid and raise loudly.
    """

    members: dict[CompId, set[Node]]
    comp_of: dict[Node, CompId]
    succ: dict[CompId, dict[CompId, int]]
    pred: dict[CompId, dict[CompId, int]]
    rank: dict[CompId, float]
    _next_id: int

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_tarjan(cls, graph: DiGraph, result: TarjanResult) -> "Condensation":
        """Build G_c from a fresh Tarjan run.

        Emission index doubles as the initial rank: component ``i`` was
        emitted before every component that can reach it, so ranks increase
        from sinks to sources — exactly ``r(u) > r(v)`` per edge ``(u, v)``.
        """
        members = {index: set(comp) for index, comp in enumerate(result.components)}
        comp_of = dict(result.component_of)
        succ: dict[CompId, dict[CompId, int]] = {index: {} for index in members}
        pred: dict[CompId, dict[CompId, int]] = {index: {} for index in members}
        for source, target in graph.edges():
            source_comp = comp_of[source]
            target_comp = comp_of[target]
            if source_comp == target_comp:
                continue
            succ[source_comp][target_comp] = succ[source_comp].get(target_comp, 0) + 1
            pred[target_comp][source_comp] = pred[target_comp].get(source_comp, 0) + 1
        rank = {index: float(index) for index in members}
        return cls(
            members=members,
            comp_of=comp_of,
            succ=succ,
            pred=pred,
            rank=rank,
            _next_id=len(members),
        )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def component(self, node: Node) -> CompId:
        try:
            return self.comp_of[node]
        except KeyError:
            raise CondensationError(f"node {node!r} has no component") from None

    def component_nodes(self, comp: CompId) -> set[Node]:
        """Live member set — do not mutate; freeze before storing."""
        return self.members[comp]

    def num_components(self) -> int:
        return len(self.members)

    def partition(self) -> set[frozenset[Node]]:
        return {frozenset(nodes) for nodes in self.members.values()}

    def components_in_rank_order(self) -> list[CompId]:
        """Sinks first (ascending rank) — reverse topological order."""
        return sorted(self.members, key=lambda comp: self.rank[comp])

    # ------------------------------------------------------------------
    # Edge counters
    # ------------------------------------------------------------------

    def add_inter_edge(self, source_comp: CompId, target_comp: CompId) -> int:
        """Record one more graph edge between two distinct components;
        returns the new counter value."""
        if source_comp == target_comp:
            raise CondensationError("intra-component edges are not tracked in G_c")
        count = self.succ[source_comp].get(target_comp, 0) + 1
        self.succ[source_comp][target_comp] = count
        self.pred[target_comp][source_comp] = count
        return count

    def remove_inter_edge(self, source_comp: CompId, target_comp: CompId) -> int:
        """Decrement the counter; drop the G_c edge when it reaches zero."""
        count = self.succ.get(source_comp, {}).get(target_comp, 0)
        if count <= 0:
            raise CondensationError(
                f"no recorded edges from component {source_comp} to {target_comp}"
            )
        count -= 1
        if count:
            self.succ[source_comp][target_comp] = count
            self.pred[target_comp][source_comp] = count
        else:
            del self.succ[source_comp][target_comp]
            del self.pred[target_comp][source_comp]
        return count

    # ------------------------------------------------------------------
    # Singleton node arrival (insertions may create new graph nodes)
    # ------------------------------------------------------------------

    def add_singleton(self, node: Node) -> CompId:
        """Register a brand-new graph node as its own component.

        A fresh node has no edges, so any rank below the current minimum
        keeps the invariant (it will be adjusted when edges arrive).
        """
        if node in self.comp_of:
            raise CondensationError(f"node {node!r} already belongs to a component")
        comp = self._fresh_id()
        self.members[comp] = {node}
        self.comp_of[node] = comp
        self.succ[comp] = {}
        self.pred[comp] = {}
        floor = min(self.rank.values(), default=0.0)
        self.rank[comp] = floor - 1.0
        return comp

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------

    def merge(self, comps: Iterable[CompId], new_rank: float) -> CompId:
        """Fuse ``comps`` into the largest of them (the *host*), moving the
        smaller components' adjacency rows over; edges interior to the
        merged set disappear from G_c.  Cost is proportional to the
        non-host components' sizes and adjacency, never the host's."""
        comp_list = list(dict.fromkeys(comps))
        if len(comp_list) < 2:
            raise CondensationError("merge needs at least two distinct components")
        host = max(comp_list, key=lambda comp: len(self.members[comp]))
        others = [comp for comp in comp_list if comp != host]
        inside = set(comp_list)

        # Remove surviving comps' mirror entries pointing at the absorbed
        # rows (entries among ``others`` die with their rows).
        for comp in others:
            for target in self.succ[comp]:
                if target not in inside:
                    del self.pred[target][comp]
                elif target == host:
                    del self.pred[host][comp]
            for source in self.pred[comp]:
                if source not in inside:
                    del self.succ[source][comp]
                elif source == host:
                    del self.succ[host][comp]

        # Host's own rows may still point at absorbed comps (when the host
        # side of the pair was iterated above the entry is gone already).
        for comp in others:
            self.succ[host].pop(comp, None)
            self.pred[host].pop(comp, None)

        # Aggregate absorbed outside-adjacency into the host.
        host_succ = self.succ[host]
        host_pred = self.pred[host]
        for comp in others:
            for target, count in self.succ[comp].items():
                if target not in inside:
                    total = host_succ.get(target, 0) + count
                    host_succ[target] = total
                    self.pred[target][host] = total
            for source, count in self.pred[comp].items():
                if source not in inside:
                    total = host_pred.get(source, 0) + count
                    host_pred[source] = total
                    self.succ[source][host] = total
            host_members = self.members[host]
            for node in self.members[comp]:
                self.comp_of[node] = host
            host_members |= self.members[comp]
            del self.members[comp]
            del self.succ[comp]
            del self.pred[comp]
            del self.rank[comp]
        self.rank[host] = new_rank
        return host

    # ------------------------------------------------------------------
    # Split
    # ------------------------------------------------------------------

    def split(
        self,
        comp: CompId,
        parts_reverse_topological: Sequence[frozenset[Node]],
        graph: DiGraph,
        meter: CostMeter = NULL_METER,
    ) -> list[CompId]:
        """Replace ``comp`` by ``parts`` (given sinks-first).

        The largest part keeps ``comp``'s identity and adjacency rows;
        counters are fixed up by scanning only the *moved* (non-host)
        nodes' incident edges.  New ranks are spread strictly between the
        highest out-neighbor rank and ``comp``'s old rank, ascending in
        the given order — preserving the global invariant without touching
        any other component's rank.
        """
        old_members = self.members[comp]
        if set().union(*parts_reverse_topological) != old_members:
            raise CondensationError("split parts must partition the component")
        if len(parts_reverse_topological) < 2:
            raise CondensationError("split needs at least two parts")
        count = len(parts_reverse_topological)
        new_ranks = self._interpolated_ranks(comp, count)
        host_position = max(
            range(count), key=lambda position: len(parts_reverse_topological[position])
        )

        new_ids: list[CompId] = []
        moved_nodes: list[tuple[Node, CompId]] = []
        for position, part in enumerate(parts_reverse_topological):
            if position == host_position:
                new_ids.append(comp)
                continue
            new_id = self._fresh_id()
            new_ids.append(new_id)
            self.members[new_id] = set(part)
            self.succ[new_id] = {}
            self.pred[new_id] = {}
            for node in part:
                self.comp_of[node] = new_id
                moved_nodes.append((node, new_id))
        self.members[comp] = set(parts_reverse_topological[host_position])
        for position, new_id in enumerate(new_ids):
            self.rank[new_id] = new_ranks[position]

        # Counter fix-up from the moved nodes' incident edges only.
        for node, node_comp in moved_nodes:
            meter.visit_node(node)
            for successor in graph.successors(node):
                meter.traverse_edge()
                successor_comp = self.comp_of[successor]
                if successor_comp == node_comp:
                    continue  # intra within the new part
                if successor in old_members:
                    # formerly intra, now inter among the parts; counted
                    # from the source side only (each edge has exactly one
                    # source scan, and host nodes are never scanned but
                    # their outgoing edges are covered by the pred pass).
                    self.add_inter_edge(node_comp, successor_comp)
                else:
                    # formerly counted as comp -> successor_comp: reassign.
                    self.remove_inter_edge(comp, successor_comp)
                    self.add_inter_edge(node_comp, successor_comp)
            for predecessor in graph.predecessors(node):
                meter.traverse_edge()
                predecessor_comp = self.comp_of[predecessor]
                if predecessor_comp == node_comp:
                    continue
                if predecessor in old_members:
                    if predecessor_comp == comp:
                        # host -> moved node: the host side is never
                        # scanned, so count it here.
                        self.add_inter_edge(comp, node_comp)
                    # moved -> moved across parts was counted by the
                    # source side's successor scan.
                else:
                    self.remove_inter_edge(predecessor_comp, comp)
                    self.add_inter_edge(predecessor_comp, node_comp)
        return new_ids

    # ------------------------------------------------------------------
    # Ranks
    # ------------------------------------------------------------------

    def _interpolated_ranks(self, comp: CompId, count: int) -> list[float]:
        """``count`` fresh strictly-increasing ranks in (low, high] where
        high is ``comp``'s rank and low the highest out-neighbor rank.

        The interior candidates are squeezed into the first unit of the
        interval and checked against every *other* component's rank:
        ranks must stay globally unique, or a later ``reallocRank`` can
        hand two components the same value and emit an inter edge between
        equal ranks.  Falls back to :meth:`renumber` once if float
        precision is exhausted or a collision is found (after renumbering,
        all other ranks are integral and the non-integral interior
        candidates cannot collide) — never silently.
        """
        low = high = 0.0
        for attempt in range(2):
            high = self.rank[comp]
            out_ranks = [self.rank[target] for target in self.succ[comp]]
            low = max(out_ranks) if out_ranks else high - 1.0
            span = min(high - low, 1.0)
            candidates = [
                high if position == count - 1
                else low + span * (position + 1) / (count + 1)
                for position in range(count)
            ]
            taken = {
                rank for cid, rank in self.rank.items() if cid != comp
            }
            ordered = all(
                earlier < later for earlier, later in zip(candidates, candidates[1:])
            )
            if (
                ordered
                and candidates[0] > low
                and candidates[-1] <= high
                and not any(candidate in taken for candidate in candidates)
            ):
                return candidates
            if attempt == 0:
                self.renumber()
        raise CondensationError(
            f"cannot interpolate {count} ranks between {low!r} and {high!r}"
        )

    def renumber(self) -> None:
        """Reassign integral ranks from a fresh topological sort of G_c.

        O(|G_c|); only invoked when float interpolation runs out of
        precision, which requires pathologically deep split chains.
        """
        in_degree = {comp: len(preds) for comp, preds in self.pred.items()}
        ready = [comp for comp, degree in in_degree.items() if degree == 0]
        order: list[CompId] = []
        while ready:
            comp = ready.pop()
            order.append(comp)
            for target in self.succ[comp]:
                in_degree[target] -= 1
                if in_degree[target] == 0:
                    ready.append(target)
        if len(order) != len(self.members):
            raise CondensationError("G_c contains a cycle; cannot renumber")
        # Sources first in ``order``; ranks must decrease along edges.
        total = len(order)
        for position, comp in enumerate(order):
            self.rank[comp] = float(total - position)

    # ------------------------------------------------------------------
    # Validation (tests + defensive fallback)
    # ------------------------------------------------------------------

    def check_rank_invariant(self) -> bool:
        """True iff every G_c edge runs from a higher to a lower rank."""
        return all(
            self.rank[source] > self.rank[target]
            for source, targets in self.succ.items()
            for target in targets
        )

    def check_against(self, graph: DiGraph) -> None:
        """Full consistency audit vs. the underlying graph (test helper).

        Raises :class:`CondensationError` on the first discrepancy.
        """
        from repro.scc.tarjan import tarjan_scc

        fresh = tarjan_scc(graph)
        if set(fresh.components) != self.partition():
            raise CondensationError("component partition diverged from recomputation")
        for node in graph.nodes():
            if self.comp_of.get(node) is None:
                raise CondensationError(f"node {node!r} missing from comp_of")
        expected: dict[tuple[CompId, CompId], int] = {}
        for source, target in graph.edges():
            source_comp = self.comp_of[source]
            target_comp = self.comp_of[target]
            if source_comp != target_comp:
                key = (source_comp, target_comp)
                expected[key] = expected.get(key, 0) + 1
        actual = {
            (source, target): count
            for source, targets in self.succ.items()
            for target, count in targets.items()
        }
        if expected != actual:
            raise CondensationError("edge counters diverged from the graph")
        if not self.check_rank_invariant():
            raise CondensationError("rank invariant violated")

    # ------------------------------------------------------------------

    def _fresh_id(self) -> CompId:
        comp = self._next_id
        self._next_id += 1
        return comp

"""DynSCC — the dynamic-SCC comparator of Section 6.

The paper's DynSCC "combines the incremental algorithm in [26] (Haeupler
et al., incremental cycle detection / strong component maintenance) to
process insertions and the decremental algorithm in [32] (Łącki) for
deletions", applied one unit update at a time.

We reproduce the *behavioural profile* the paper measures rather than the
exact data structures of [26]/[32] (both are research systems in their own
right; see DESIGN.md substitutions):

* every unit update eagerly maintains its dynamic structures — a
  reachability-oriented search per insertion that is not pruned by
  topological ranks, and a per-component decomposition recomputation per
  deletion — so "DynSCC does not do well with small |ΔG| due to its
  additional cost for maintaining dynamic data structures even when the
  output remains stable" (paper Exp-1(3)(b));
* it has no batch grouping, so grouped workloads pay the per-update price
  |ΔG| times.

The maintained output is always correct (verified against Tarjan in the
tests); only the *cost profile* distinguishes it from IncSCC.
"""

from __future__ import annotations

from repro.core.cost import CostMeter, NULL_METER
from repro.core.delta import Delta
from repro.graph.digraph import DiGraph, Node
from repro.scc.tarjan import tarjan_scc


class DynSCC:
    """One-update-at-a-time dynamic SCC maintenance."""

    def __init__(self, graph: DiGraph, meter: CostMeter = NULL_METER) -> None:
        self.graph = graph
        self.meter = meter
        result = tarjan_scc(graph, meter=meter)
        self.comp_of: dict[Node, int] = dict(result.component_of)
        self.members: dict[int, set[Node]] = {
            index: set(comp) for index, comp in enumerate(result.components)
        }
        self._next_id = len(result.components)

    # ------------------------------------------------------------------

    def components(self) -> set[frozenset[Node]]:
        return {frozenset(nodes) for nodes in self.members.values()}

    def apply(self, delta: Delta) -> None:
        """Process each unit update in order (no batching by design)."""
        for update in delta:
            if update.is_insert:
                self._insert(update.source, update.target,
                             update.source_label, update.target_label)
            else:
                self._delete(update.source, update.target)

    # ------------------------------------------------------------------

    def _insert(self, source: Node, target: Node, source_label, target_label) -> None:
        for node, label in ((source, source_label), (target, target_label)):
            if node not in self.graph:
                self.graph.add_node(node, label=label)
                comp = self._next_id
                self._next_id += 1
                self.comp_of[node] = comp
                self.members[comp] = {node}
        self.graph.add_edge(source, target)
        if self.comp_of[source] == self.comp_of[target]:
            return
        # Eager cycle detection: unpruned forward search from the target
        # component; if it reaches the source component, merge every
        # component lying on a source←...←target path.
        forward = self._component_closure_forward(self.comp_of[target])
        if self.comp_of[source] not in forward:
            return
        backward = self._component_closure_backward(self.comp_of[source])
        cycle = forward & backward
        self._merge(cycle)

    def _delete(self, source: Node, target: Node) -> None:
        self.graph.remove_edge(source, target)
        comp = self.comp_of[source]
        if comp != self.comp_of[target]:
            return
        # Decremental maintenance: recompute the decomposition of the one
        # affected component (Łącki-style component splitting).
        nodes = frozenset(self.members[comp])
        result = tarjan_scc(self.graph, meter=self.meter, restrict_to=nodes)
        if len(result.components) == 1:
            return
        del self.members[comp]
        for part in result.components:
            new_comp = self._next_id
            self._next_id += 1
            self.members[new_comp] = set(part)
            for node in part:
                self.comp_of[node] = new_comp

    # ------------------------------------------------------------------

    def _component_closure_forward(self, start: int) -> set[int]:
        """All components reachable from ``start`` (walks graph edges —
        the deliberately unpruned 'dynamic structure maintenance' cost)."""
        seen = {start}
        node_stack = list(self.members[start])
        visited_nodes = set(node_stack)
        while node_stack:
            node = node_stack.pop()
            self.meter.visit_node(node)
            for successor in self.graph.successors(node):
                self.meter.traverse_edge()
                if successor in visited_nodes:
                    continue
                visited_nodes.add(successor)
                seen.add(self.comp_of[successor])
                node_stack.append(successor)
        return seen

    def _component_closure_backward(self, start: int) -> set[int]:
        seen = {start}
        node_stack = list(self.members[start])
        visited_nodes = set(node_stack)
        while node_stack:
            node = node_stack.pop()
            self.meter.visit_node(node)
            for predecessor in self.graph.predecessors(node):
                self.meter.traverse_edge()
                if predecessor in visited_nodes:
                    continue
                visited_nodes.add(predecessor)
                seen.add(self.comp_of[predecessor])
                node_stack.append(predecessor)
        return seen

    def _merge(self, comps: set[int]) -> None:
        merged_nodes: set[Node] = set()
        for comp in comps:
            merged_nodes |= self.members.pop(comp)
        new_comp = self._next_id
        self._next_id += 1
        self.members[new_comp] = merged_nodes
        for node in merged_nodes:
            self.comp_of[node] = new_comp

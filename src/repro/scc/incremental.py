"""IncSCC — bounded incremental SCC maintenance relative to Tarjan
(paper Section 5.3, Figures 6-7, Examples 6-9).

:class:`SCCIndex` owns a graph plus Tarjan's auxiliary structures (num,
lowlink, per-component edge classification) and the contracted graph G_c
with topological ranks, and repairs all of them under updates:

* **IncSCC+** (:meth:`SCCIndex.insert_edge`, paper Fig. 7): an insertion
  within one component only refreshes num/lowlink locally; an insertion
  respecting the rank order just bumps a G_c counter; a rank-violating
  insertion triggers the bounded bidirectional search DFSf/DFSb over G_c,
  a cycle check on the affected area, and either a component merge or
  ``reallocRank``.
* **IncSCC−** (:meth:`SCCIndex.delete_edge`): an inter-component deletion
  decrements a counter; an intra-component deletion of a *reverse frond*
  is simply dropped (the DFS tree path witnesses reachability —
  Example 8); any other intra deletion re-runs Tarjan restricted to that
  component (chkReach + split, Example 9).
* **batch IncSCC** (:meth:`SCCIndex.apply`): groups intra-component
  updates per component (one local Tarjan per affected component instead
  of one per update), handles inter deletions by counters, then processes
  inter insertions.  Rank-violating inter insertions are repaired one at
  a time because the single-edge search/realloc procedure is only sound
  when every other G_c edge already satisfies the rank invariant; the
  grouped intra/deletion phases are where the batch savings shown in the
  paper's ablation arise (see DESIGN.md).

``num``/``lowlink`` values are unique *within* each component's latest
(re-)computation, which is the scope in which the algorithms consult
them; global uniqueness across components is not maintained after local
repairs.

ΔO is reported as ``(added_components, removed_components)`` per the
paper's definition ``SCC(G ⊕ ΔG) = SCC(G) ⊕ ΔO``.

Rank-window soundness (used by ``reallocRank``): for a violating insertion
``(v, w)`` let F be the components forward-reachable from scc(w) with rank
≥ r(scc(v)) and B those backward-reachable from scc(v) with rank ≤
r(scc(w)).  All F ∪ B ranks lie in the window [r(scc(v)), r(scc(w))]; a
cycle exists iff F ∩ B ≠ ∅ and then C = F ∩ B is exactly the set of
components on cycles through the new edge.  Reassigning the pooled window
ranks ascending as (F \\ C by old rank) < merged < (B \\ C by old rank)
moves F-components only down and B-components only up, which preserves
every boundary edge's orientation (nodes outside the window are either
above it or below it and stay on the correct side).
"""

from __future__ import annotations

from repro.core.cost import CostMeter, NULL_METER
from repro.core.delta import Delta, Update
from repro.engine.relevance import SubscribeAll
from repro.engine.view import ViewSnapshot
from repro.graph.digraph import DiGraph, Edge, Node
from repro.kws.kdist import node_order
from repro.scc.condensation import CompId, Condensation
from repro.scc.tarjan import EdgeKind, TarjanResult, tarjan_scc

SCCDelta = tuple[set[frozenset[Node]], set[frozenset[Node]]]


class SCCIndex:
    """Incrementally maintained SCC(G) with Tarjan's auxiliary structures."""

    def __init__(self, graph: DiGraph, meter: CostMeter = NULL_METER) -> None:
        self.graph = graph
        self.meter = meter
        # What a split's counter fix-up scan should see; the engine's
        # absorb path temporarily swaps in an _EdgeOverlay (see
        # _repair_batch) so counters and scan stay in sync.
        self._split_view: DiGraph | "_EdgeOverlay" = graph
        result = tarjan_scc(graph, meter=meter)
        self.cond = Condensation.from_tarjan(graph, result)
        self.num: dict[Node, int] = dict(result.num)
        self.lowlink: dict[Node, int] = dict(result.lowlink)
        # Edge classification per component, from that component's latest
        # Tarjan pass; consulted by the reverse-frond deletion fast path.
        self._edge_kinds: dict[CompId, dict[Edge, EdgeKind]] = {
            comp_id: {} for comp_id in self.cond.members
        }
        comp_of = self.cond.comp_of
        for edge, kind in result.edge_kinds.items():
            comp_id = comp_of[edge[0]]
            if comp_of[edge[1]] == comp_id:
                self._edge_kinds[comp_id][edge] = kind
        # Components whose num/lowlink/edge-kind caches are out of date.
        # Partition correctness never depends on them; they are refreshed
        # by the next restricted Tarjan that actually needs them.
        self._stale: set[CompId] = set()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def components(self) -> set[frozenset[Node]]:
        """The current SCC(G)."""
        return self.cond.partition()

    def component_of(self, node: Node) -> frozenset[Node]:
        return frozenset(self.cond.component_nodes(self.cond.component(node)))

    def same_component(self, first: Node, second: Node) -> bool:
        return self.cond.component(first) == self.cond.component(second)

    # ------------------------------------------------------------------
    # IncSCC+ : unit insertion (paper Fig. 7)
    # ------------------------------------------------------------------

    def insert_edge(self, source: Node, target: Node, **labels) -> SCCDelta:
        """Insert ``(source, target)`` and repair; returns ΔO."""
        added = self._realize_new_endpoints(source, target, labels)
        self.graph.add_edge(source, target, **labels)

        source_comp = self.cond.component(source)
        target_comp = self.cond.component(target)
        if source_comp == target_comp:
            # Fig. 7 lines 1-2: same component — the partition is
            # unchanged; auxiliary structures go stale and are rebuilt by
            # the next operation that needs them.
            self._mark_stale(source_comp)
            return added, set()
        if self.cond.rank[source_comp] > self.cond.rank[target_comp]:
            # Fig. 7 line 3: rank order consistent — counter bump only.
            self.cond.add_inter_edge(source_comp, target_comp)
            return added, set()
        gained, lost = self._handle_rank_violation(source_comp, target_comp)
        return _fold_delta(added, set(), gained, lost)

    def _realize_new_endpoints(
        self,
        source: Node,
        target: Node,
        labels: dict,
        mutate_graph: bool = True,
    ) -> set[frozenset[Node]]:
        """Register endpoints the graph has not seen yet as singleton
        components, placed so the incoming edge cannot violate ranks:
        a fresh *source* goes above all ranks, a fresh *target* below.

        With ``mutate_graph=False`` (the engine fan-out path) the node is
        already in the shared graph; only the condensation-side structures
        are created.
        """
        added: set[frozenset[Node]] = set()
        for node, is_source in ((source, True), (target, False)):
            if node in self.cond.comp_of or (mutate_graph and node in self.graph):
                continue
            if mutate_graph:
                label_key = "source_label" if is_source else "target_label"
                self.graph.add_node(node, label=labels.get(label_key, ""))
            comp = self.cond.add_singleton(node)
            if is_source:
                ceiling = max(
                    (rank for cid, rank in self.cond.rank.items() if cid != comp),
                    default=0.0,
                )
                self.cond.rank[comp] = ceiling + 1
            self.num[node] = 0
            self.lowlink[node] = 0
            self._edge_kinds[comp] = {}
            added.add(frozenset([node]))
        return added

    def _handle_rank_violation(
        self,
        source_comp: CompId,
        target_comp: CompId,
    ) -> SCCDelta:
        """Fig. 7 lines 4-9: bidirectional search, cycle check, merge or
        reallocRank.  The new edge is in the graph but not yet in G_c."""
        rank = self.cond.rank
        floor = rank[source_comp]     # r(scc(v))
        ceiling = rank[target_comp]   # r(scc(w))
        aff_forward = self._dfs_forward(target_comp, floor)
        aff_backward = self._dfs_backward(source_comp, ceiling)
        cycle = aff_forward & aff_backward
        if not cycle:
            # No new SCC: record the edge, then reallocate ranks so every
            # forward-affected component sits below every backward one.
            self.cond.add_inter_edge(source_comp, target_comp)
            self._realloc_ranks(aff_forward, aff_backward, merged=None, freed=[])
            return set(), set()
        # freeze before merging: the host component's member set is
        # mutated in place by cond.merge.
        removed = {frozenset(self.cond.component_nodes(comp)) for comp in cycle}
        freed = [rank[comp] for comp in cycle]
        for comp in cycle:
            self._edge_kinds.pop(comp, None)
        merged = self.cond.merge(cycle, new_rank=floor)  # placeholder, fixed below
        self._realloc_ranks(
            aff_forward - cycle, aff_backward - cycle, merged=merged, freed=freed
        )
        self._mark_stale(merged)
        added = {frozenset(self.cond.component_nodes(merged))}
        return added, removed

    def _dfs_forward(self, start: CompId, floor: float) -> set[CompId]:
        """DFSf: components reachable from ``start`` with rank ≥ ``floor``.

        The inclusive bound lets the search reach scc(v) itself, which is
        how a cycle manifests (F ∩ B ≠ ∅) even for two-component cycles.
        """
        seen = {start}
        stack = [start]
        while stack:
            comp = stack.pop()
            self.meter.visit_node(("comp", comp))
            for successor in self.cond.succ[comp]:
                self.meter.traverse_edge()
                if successor not in seen and self.cond.rank[successor] >= floor:
                    seen.add(successor)
                    stack.append(successor)
        return seen

    def _dfs_backward(self, start: CompId, ceiling: float) -> set[CompId]:
        """DFSb: components reaching ``start`` with rank ≤ ``ceiling``."""
        seen = {start}
        stack = [start]
        while stack:
            comp = stack.pop()
            self.meter.visit_node(("comp", comp))
            for predecessor in self.cond.pred[comp]:
                self.meter.traverse_edge()
                if predecessor not in seen and self.cond.rank[predecessor] <= ceiling:
                    seen.add(predecessor)
                    stack.append(predecessor)
        return seen

    def _realloc_ranks(
        self,
        aff_forward: set[CompId],
        aff_backward: set[CompId],
        merged: CompId | None,
        freed: list[float],
    ) -> None:
        """reallocRank (Fig. 7 line 9), extended to cover the merge case.

        Pool = previous ranks of all affected components plus the ranks
        freed by a merge.  Assignment ascending: forward components by
        previous rank, then the merged component, then backward components
        (which receive the *largest* pool values, preserving their old
        order).  Spare pool values after a merge are simply discarded —
        ranks need only stay unique and ordered, not contiguous.
        """
        rank = self.cond.rank
        forward_sorted = sorted(aff_forward, key=lambda comp: rank[comp])
        backward_sorted = sorted(aff_backward, key=lambda comp: rank[comp])
        pool = [rank[comp] for comp in forward_sorted]
        pool += [rank[comp] for comp in backward_sorted]
        pool += freed
        pool.sort()
        position = 0
        for comp in forward_sorted:
            self._set_rank(comp, pool[position])
            position += 1
        if merged is not None:
            self._set_rank(merged, pool[position])
        tail = len(pool) - len(backward_sorted)
        for offset, comp in enumerate(backward_sorted):
            self._set_rank(comp, pool[tail + offset])

    def _set_rank(self, comp: CompId, value: float) -> None:
        if self.cond.rank[comp] != value:
            self.cond.rank[comp] = value
            self.meter.write()

    # ------------------------------------------------------------------
    # IncSCC− : unit deletion
    # ------------------------------------------------------------------

    def delete_edge(self, source: Node, target: Node) -> SCCDelta:
        """Delete ``(source, target)`` and repair; returns ΔO."""
        self.graph.remove_edge(source, target)
        source_comp = self.cond.component(source)
        target_comp = self.cond.component(target)
        if source_comp != target_comp:
            # Deleting an inter-component edge can never change SCC(G).
            self.cond.remove_inter_edge(source_comp, target_comp)
            return set(), set()
        if source_comp not in self._stale:
            kinds = self._edge_kinds.get(source_comp)
            if kinds is not None and kinds.get((source, target)) is EdgeKind.REVERSE_FROND:
                # Example 8: a reverse frond duplicates a tree path, so the
                # component stays strongly connected and lowlink never read
                # it — delete without any traversal.
                del kinds[(source, target)]
                return set(), set()
        if self._still_reaches(source_comp, source, target):
            # chkReach succeeded: v still reaches w inside the component,
            # so it remains strongly connected; caches go stale only.
            self._mark_stale(source_comp)
            return set(), set()
        return self._recheck_component(source_comp)

    def _recheck_component(self, comp: CompId) -> SCCDelta:
        """Re-run Tarjan restricted to the component: refresh structures
        and split if strong connectivity was lost."""
        members = frozenset(self.cond.component_nodes(comp))
        result = tarjan_scc(self.graph, meter=self.meter, restrict_to=members)
        self._absorb_local_run(result)
        if len(result.components) == 1:
            # Still one SCC: structures refreshed, output unchanged.
            self._edge_kinds[comp] = dict(result.edge_kinds)
            self._stale.discard(comp)
            return set(), set()
        removed = {members}
        parts = list(result.components)  # emission order = reverse topological
        new_ids = self.cond.split(comp, parts, self._split_view, meter=self.meter)
        self._edge_kinds.pop(comp, None)
        self._stale.discard(comp)
        part_of = {
            node: position
            for position, part in enumerate(parts)
            for node in part
        }
        buckets: list[dict[Edge, EdgeKind]] = [{} for _ in parts]
        for edge, kind in result.edge_kinds.items():
            position = part_of[edge[0]]
            if part_of[edge[1]] == position:
                buckets[position][edge] = kind
        for new_id, bucket in zip(new_ids, buckets):
            self._edge_kinds[new_id] = bucket
        return set(parts), removed

    def _still_reaches(self, comp: CompId, source: Node, target: Node) -> bool:
        """chkReach: does ``source`` still reach ``target`` inside the
        component?  (Deleting (v, w) splits the SCC iff v no longer
        reaches w.)

        Bidirectional search — forward from ``source``, backward from
        ``target``, always expanding the smaller frontier — which explores
        far less of a large strongly connected component than one-sided
        BFS before the frontiers meet."""
        members = self.cond.component_nodes(comp)
        if source == target:
            return True
        forward_seen = {source}
        backward_seen = {target}
        forward_frontier = [source]
        backward_frontier = [target]
        while forward_frontier and backward_frontier:
            if len(forward_frontier) <= len(backward_frontier):
                next_frontier = []
                for node in forward_frontier:
                    self.meter.visit_node(node)
                    for successor in self.graph.successors(node):
                        self.meter.traverse_edge()
                        if successor in backward_seen:
                            return True
                        if successor in members and successor not in forward_seen:
                            forward_seen.add(successor)
                            next_frontier.append(successor)
                forward_frontier = next_frontier
            else:
                next_frontier = []
                for node in backward_frontier:
                    self.meter.visit_node(node)
                    for predecessor in self.graph.predecessors(node):
                        self.meter.traverse_edge()
                        if predecessor in forward_seen:
                            return True
                        if predecessor in members and predecessor not in backward_seen:
                            backward_seen.add(predecessor)
                            next_frontier.append(predecessor)
                backward_frontier = next_frontier
        return False

    # ------------------------------------------------------------------
    # Batch IncSCC
    # ------------------------------------------------------------------

    def apply(self, delta: Delta) -> SCCDelta:
        """Process a batch update, grouping work per affected component.

        Returns ΔO = (added components, removed components), net of
        components that appear and disappear within the batch.
        """
        if not delta.is_normalized():
            delta = delta.normalized()
        return self._repair_batch(delta, mutate=True)

    def absorb(self, delta: Delta, new_nodes) -> SCCDelta:
        """Engine fan-out path: repair the partition for a normalized
        ``delta`` the shared graph already holds; ``new_nodes`` become
        singleton components.  Same phases as :meth:`apply`, minus the
        graph mutations."""
        return self._repair_batch(delta, mutate=False)

    def _repair_batch(self, delta: Delta, mutate: bool) -> SCCDelta:
        # Phase 0: realize brand-new nodes and classify updates against
        # the component structure at batch start.
        intra_groups: dict[CompId, list[Update]] = {}
        inter_updates: list[Update] = []
        added_total: set[frozenset[Node]] = set()
        removed_total: set[frozenset[Node]] = set()

        for update in delta:
            if update.is_insert:
                added_total |= self._realize_new_endpoints(
                    update.source,
                    update.target,
                    {
                        "source_label": update.source_label,
                        "target_label": update.target_label,
                    },
                    mutate_graph=mutate,
                )
            source_comp = self.cond.component(update.source)
            target_comp = self.cond.component(update.target)
            if source_comp == target_comp:
                intra_groups.setdefault(source_comp, []).append(update)
            else:
                inter_updates.append(update)

        # Engine path: the shared graph already holds G ⊕ ΔG, but the
        # inter-edge counters are only synced in phases 2-3.  Phase 1's
        # split fix-up scans the graph to reassign counters, so it must see
        # the graph the counters currently describe — with the batch's
        # inter deletions still present and its inter insertions absent,
        # which is exactly the state the standalone path's lockstep
        # mutation provides naturally.
        if not mutate:
            hidden = {u.edge for u in inter_updates if u.is_insert}
            restored = {u.edge for u in inter_updates if u.is_delete}
            if hidden or restored:
                self._split_view = _EdgeOverlay(self.graph, hidden, restored)

        # Phase 1: intra-component updates, grouped per component.  All
        # of a component's updates are applied first; then one chkReach
        # pass over its deleted edges decides whether the component can
        # possibly have split (if every deleted (v, w) still has v ⇝ w,
        # every old path can be patched, so the component is intact and
        # only the caches go stale).  At most one restricted Tarjan runs
        # per affected component regardless of the batch size.
        try:
            for comp, updates in intra_groups.items():
                deletions_here = []
                for update in updates:
                    if update.is_insert:
                        if mutate:
                            self.graph.add_edge(
                                update.source,
                                update.target,
                                source_label=update.source_label,
                                target_label=update.target_label,
                            )
                    else:
                        if mutate:
                            self.graph.remove_edge(update.source, update.target)
                        deletions_here.append(update)
                if all(
                    self._still_reaches(comp, update.source, update.target)
                    for update in deletions_here
                ):
                    self._mark_stale(comp)
                    continue
                gained, lost = self._recheck_component(comp)
                added_total, removed_total = _fold_delta(
                    added_total, removed_total, gained, lost
                )
        finally:
            self._split_view = self.graph

        # Phase 2: inter-component deletions — counters only.  Intra
        # processing can only split components, so an edge crossing
        # components at batch start still crosses components here.
        for update in inter_updates:
            if update.is_delete:
                if mutate:
                    self.graph.remove_edge(update.source, update.target)
                self.cond.remove_inter_edge(
                    self.cond.component(update.source),
                    self.cond.component(update.target),
                )

        # Phase 3: inter-component insertions.  Components may have merged
        # meanwhile, so classification is re-evaluated per edge.
        for update in inter_updates:
            if not update.is_insert:
                continue
            if mutate:
                self.graph.add_edge(
                    update.source,
                    update.target,
                    source_label=update.source_label,
                    target_label=update.target_label,
                )
            source_comp = self.cond.component(update.source)
            target_comp = self.cond.component(update.target)
            if source_comp == target_comp:
                self._mark_stale(source_comp)
                continue
            if self.cond.rank[source_comp] > self.cond.rank[target_comp]:
                self.cond.add_inter_edge(source_comp, target_comp)
                continue
            gained, lost = self._handle_rank_violation(source_comp, target_comp)
            added_total, removed_total = _fold_delta(
                added_total, removed_total, gained, lost
            )
        return added_total, removed_total

    # ------------------------------------------------------------------
    # Engine routing (repro.engine.relevance)
    # ------------------------------------------------------------------

    def relevance(self) -> SubscribeAll:
        """The correctness escape hatch: SCC(G) depends on topology
        alone — any insertion can close a cycle and any deletion can
        break one, whatever the labels — so the view subscribes to every
        edge and is never skipped on a non-empty batch."""
        return SubscribeAll()

    def empty_output(self) -> SCCDelta:
        """The ΔO of an empty batch."""
        return set(), set()

    # ------------------------------------------------------------------
    # Persistence (repro.persist)
    # ------------------------------------------------------------------

    def snapshot(self) -> ViewSnapshot:
        """Capture the partition and ranks as token rows.

        Config row: ``(next_component_id,)``.  One record per component
        in ascending component-id order (the canonical order, so
        behaviorally identical indexes serialize byte-identically):
        ``(comp_id, rank, member...)`` with the float rank carried as its
        ``repr`` string (ranks need only stay unique and ordered;
        ``repr`` round-trips floats exactly).  Inter-edge counters are
        derived by one edge scan on restore, and the num/lowlink/
        edge-kind caches are deliberately dropped — the partition never
        depends on them, so the restored index starts with every
        component marked stale and rebuilds caches lazily, exactly like
        a component after an in-place intra-component insertion.
        """
        records = []
        for comp_id in sorted(self.cond.members):
            records.append(
                (
                    comp_id,
                    repr(self.cond.rank[comp_id]),
                    *sorted(self.cond.members[comp_id], key=node_order),
                )
            )
        return ViewSnapshot(
            kind="scc", config=(self.cond._next_id,), records=tuple(records)
        )

    @classmethod
    def restore(
        cls,
        graph: DiGraph,
        state: ViewSnapshot,
        meter: CostMeter = NULL_METER,
    ) -> "SCCIndex":
        """Rebuild an index over ``graph`` from a snapshot — one O(|E|)
        counter scan instead of a full Tarjan pass, no recursion."""
        if state.kind != "scc":
            raise ValueError(f"expected an 'scc' snapshot, got {state.kind!r}")
        index = cls.__new__(cls)
        index.graph = graph
        index.meter = meter
        index._split_view = graph
        members: dict[CompId, set[Node]] = {}
        comp_of: dict[Node, CompId] = {}
        rank: dict[CompId, float] = {}
        for row in state.records:
            comp = int(row[0])
            rank[comp] = float(row[1])
            members[comp] = set(row[2:])
            for node in row[2:]:
                comp_of[node] = comp
        succ: dict[CompId, dict[CompId, int]] = {comp: {} for comp in members}
        pred: dict[CompId, dict[CompId, int]] = {comp: {} for comp in members}
        for source, target in graph.edges():
            source_comp = comp_of[source]
            target_comp = comp_of[target]
            if source_comp == target_comp:
                continue
            count = succ[source_comp].get(target_comp, 0) + 1
            succ[source_comp][target_comp] = count
            pred[target_comp][source_comp] = count
        index.cond = Condensation(
            members=members,
            comp_of=comp_of,
            succ=succ,
            pred=pred,
            rank=rank,
            _next_id=int(state.config[0]),
        )
        index.num = {}
        index.lowlink = {}
        index._edge_kinds = {}
        index._stale = set(members)
        return index

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _mark_stale(self, comp: CompId) -> None:
        """Invalidate a component's num/lowlink/edge-kind caches.

        The partition itself stays exact; stale caches only disable the
        reverse-frond deletion fast path until the next restricted Tarjan
        (run by :meth:`_recheck_component`) rebuilds them.
        """
        self._stale.add(comp)
        self._edge_kinds.pop(comp, None)

    def refresh_component(self, comp: CompId) -> None:
        """Eagerly rebuild one component's caches (public hook; the
        algorithms themselves refresh lazily)."""
        members = self.cond.component_nodes(comp)
        result = tarjan_scc(self.graph, meter=self.meter, restrict_to=members)
        self._absorb_local_run(result)
        self._edge_kinds[comp] = dict(result.edge_kinds)
        self._stale.discard(comp)

    def _absorb_local_run(self, result: TarjanResult) -> None:
        self.num.update(result.num)
        self.lowlink.update(result.lowlink)
        self.meter.write(2 * len(result.num))

    def check_consistency(self) -> None:
        """Audit every maintained structure against recomputation."""
        self.cond.check_against(self.graph)


def _fold_delta(
    added: set[frozenset[Node]],
    removed: set[frozenset[Node]],
    gained: set[frozenset[Node]],
    lost: set[frozenset[Node]],
) -> tuple[set[frozenset[Node]], set[frozenset[Node]]]:
    """Accumulate per-step ΔO so transients net out of the batch ΔO."""
    added = set(added)
    removed = set(removed)
    for comp in lost:
        if comp in added:
            added.discard(comp)  # appeared and disappeared within the batch
        else:
            removed.add(comp)
    for comp in gained:
        if comp in removed:
            removed.discard(comp)  # disappeared and reappeared
        else:
            added.add(comp)
    return added, removed


class _EdgeOverlay:
    """Adjacency view of ``graph`` with ``hidden`` edges masked out and
    ``restored`` (already-removed) edges made visible again.

    Used by :meth:`SCCIndex.absorb` during phase 1 so
    :meth:`Condensation.split`'s counter fix-up scan sees the edge set the
    inter-edge counters describe, not the pre-applied final graph.  Only
    ``successors``/``predecessors`` are needed by the scan.
    """

    __slots__ = ("_graph", "_hidden", "_restored")

    def __init__(
        self, graph: DiGraph, hidden: set[Edge], restored: set[Edge]
    ) -> None:
        self._graph = graph
        self._hidden = hidden
        self._restored = restored

    def successors(self, node: Node):
        for target in self._graph.successors(node):
            if (node, target) not in self._hidden:
                yield target
        for source, target in self._restored:
            if source == node:
                yield target

    def predecessors(self, node: Node):
        for source in self._graph.predecessors(node):
            if (source, node) not in self._hidden:
                yield source
        for source, target in self._restored:
            if target == node:
                yield source


# ----------------------------------------------------------------------
# Unit-at-a-time baseline (IncSCCn in the paper's experiments)
# ----------------------------------------------------------------------


def inc_scc_n(index: SCCIndex, delta: Delta) -> SCCDelta:
    """Process ``delta`` one unit update at a time (no grouping).

    This is the ``IncSCCn`` comparator of Section 6: it calls the unit
    algorithms developed in this work for each update in turn.
    """
    added: set[frozenset[Node]] = set()
    removed: set[frozenset[Node]] = set()
    for update in delta:
        if update.is_insert:
            gained, lost = index.insert_edge(
                update.source,
                update.target,
                source_label=update.source_label,
                target_label=update.target_label,
            )
        else:
            gained, lost = index.delete_edge(update.source, update.target)
        added, removed = _fold_delta(added, removed, gained, lost)
    return added, removed

"""Practical boundedness conditions — the paper's future work, section 7.

"Another topic is to identify practical conditions under which unbounded
incremental problems become bounded or relatively bounded."

This module makes three such conditions concrete and *checkable*; the
accompanying tests measure (via :class:`repro.core.cost.CostMeter`) that
under each condition the incremental cost per update is O(|CHANGED|)-flat
while graphs grow, i.e. boundedness holds on the restricted update class
even though Theorem 1 rules it out in general.

1. **SSRP under insert-only streams** — the classical result [38] that
   motivated the paper's Δ-reductions: :class:`repro.core.ssrp.
   ReachabilityIndex` touches only newly reached nodes per insertion.
2. **SCC under rank-respecting insertions** — an insertion ``(v, w)``
   with ``r(scc(v)) > r(scc(w))`` (or intra-component) can never change
   SCC(G) and costs O(1): IncSCC+ takes the counter-bump (or stale-mark)
   branch without any traversal.  Streams with this property arise
   naturally when edges are ingested in topological order — e.g. loading
   a DAG-shaped provenance or build graph bottom-up.
3. **KWS under far deletions** — deleting an edge that lies on no chosen
   shortest path (``next(v) != w`` for every keyword) costs O(m): IncKWS−
   inspects the m kdist entries of the source endpoint and stops.  In
   workloads where churn is concentrated outside the b-neighborhoods of
   keyword nodes (e.g. keyword-bearing entities are stable, periphery
   churns), KWS maintenance is effectively bounded.

The checkers below classify updates; the measurements live in
``tests/test_bounded_conditions.py`` and the claim made is *per-update
cost independent of |G|* on conforming streams.
"""

from __future__ import annotations

from repro.core.delta import Delta, Update
from repro.kws.incremental import KWSIndex
from repro.scc.incremental import SCCIndex


def scc_update_is_rank_respecting(index: SCCIndex, update: Update) -> bool:
    """Would IncSCC+ handle ``update`` on its O(1) branch?

    True for intra-component insertions (partition provably unchanged)
    and inter-component insertions already consistent with the
    topological ranks; also true for inter-component deletions (counter
    decrement).  Evaluated against the index's *current* state, so a
    stream can be vetted update by update as it is applied.
    """
    if update.source not in index.graph or update.target not in index.graph:
        # brand-new endpoints are placed so the new edge cannot violate
        # ranks (fresh source above all, fresh target below all)
        return update.is_insert
    source_comp = index.cond.component(update.source)
    target_comp = index.cond.component(update.target)
    if update.is_delete:
        return source_comp != target_comp
    if source_comp == target_comp:
        return True
    return index.cond.rank[source_comp] > index.cond.rank[target_comp]


def kws_deletion_is_far(index: KWSIndex, update: Update) -> bool:
    """Would IncKWS− finish in O(m) on this deletion?

    True when the deleted edge is not the first hop of any chosen
    shortest path: no kdist entry of the source endpoint routes through
    the target, so phase A finds no affected node.
    """
    if not update.is_delete:
        return False
    for keyword in index.query.keywords:
        entry = index.kdist.get(update.source, keyword)
        if entry is not None and entry.next == update.target:
            return False
    return True


def classify_scc_stream(index: SCCIndex, delta: Delta) -> tuple[int, int]:
    """Count (bounded, unbounded-risk) updates in a stream *without*
    applying it — a dry-run classification against the current state.

    The classification is conservative: it assumes the graph/ranks do not
    change mid-stream, which holds exactly when every update classifies
    as bounded (the O(1) branches never reorder ranks).
    """
    bounded = 0
    risky = 0
    for update in delta:
        if scc_update_is_rank_respecting(index, update):
            bounded += 1
        else:
            risky += 1
    return bounded, risky


def topological_insert_stream(graph_nodes: list, edges: list) -> tuple[list, Delta]:
    """Build a rank-respecting insert-only load plan for a DAG.

    Returns ``(node_order, stream)``: register the nodes into an empty
    graph *in the returned order* (sinks first — isolated singletons get
    ascending ranks in registration order, so sinks sit lowest), then
    apply the stream; every insertion lands on IncSCC's O(1) branch
    (condition 2 above).  This is the natural way to bulk-load a
    DAG-shaped provenance/build/dependency graph incrementally.

    ``edges`` must be acyclic over ``graph_nodes``; raises ``ValueError``
    otherwise.
    """
    from graphlib import CycleError, TopologicalSorter

    sorter = TopologicalSorter()
    for node in graph_nodes:
        sorter.add(node)
    for source, target in edges:
        sorter.add(source, target)  # source depends on target: sinks first
    try:
        order = list(sorter.static_order())
    except CycleError as exc:
        raise ValueError("edge set is not acyclic") from exc
    position = {node: index for index, node in enumerate(order)}
    from repro.core.delta import insert

    ordered_edges = sorted(edges, key=lambda edge: position[edge[0]])
    stream = Delta([insert(source, target) for source, target in ordered_edges])
    return order, stream

"""Unboundedness witnesses (paper Theorem 1, Fig. 9).

Boundedness demands cost polynomial in |CHANGED| = |ΔG| + |ΔO| alone.  The
paper's impossibility proofs construct instance families where |CHANGED|
stays O(1) while any (locally persistent) incremental algorithm must
traverse Ω(n) of the graph.  These families are generated here and the
benches/tests run our instrumented incremental algorithms on them,
recording that measured work grows with n while |CHANGED| does not — the
operational content of "unbounded", and a sanity check that our algorithms
are *not* secretly claiming to beat Theorem 1.

* :func:`rpq_two_cycle_gadget` — Fig. 9 verbatim: two disjoint 2n-cycles
  (labels α1 / α2) and a tail node w (α3), query α1·α1*·α2·α2*·α3.
  Inserting e1 = (v_n, u_n) then e2 = (u_1, v_1) flips Q from empty to 2n
  matches; the paper shows the *first* insertion already forces Ω(n)
  traversal on any locally persistent algorithm even though its ΔO = ∅.
* :func:`ssrp_chain_gadget` — the classic deletion witness for SSRP [38]:
  a long chain plus a far-away back path; deleting one chain edge changes
  no reachability (ΔO = ∅) but verifying that requires inspecting the
  alternative path.
* :func:`kws_chain_gadget` / :func:`scc_cycle_gadget` — the same flavour
  for KWS (deletion forces a b-bounded re-exploration with empty ΔO) and
  SCC (a 2n-cycle chord deletion keeps one SCC but invalidates the DFS
  structure along Ω(n) nodes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.delta import Delta, delete, insert
from repro.graph.digraph import DiGraph


@dataclass(frozen=True)
class GadgetInstance:
    """A lower-bound family member: graph, the probe updates, and what the
    paper says about them."""

    graph: DiGraph
    first_update: Delta
    second_update: Delta | None
    description: str


def rpq_two_cycle_gadget(n: int) -> GadgetInstance:
    """Fig. 9: cycles v_1..v_2n (α1) and u_1..u_2n (α2), edge (v_1, w)
    with l(w) = α3; Δ1 = insert (v_n, u_n); Δ2 = insert (u_1, v_1).

    Q(G) = Q(G ⊕ Δ1) = Q(G ⊕ Δ2) = ∅ while Q(G ⊕ Δ1 ⊕ Δ2) = {(v_i, w)}.

    Transcription note: the figure is not recoverable from the paper text,
    and the stated query α1·α1*·α2·α2*·α3 cannot match any path ending
    with the (v_1, w) edge, whose last two labels are necessarily α1 α3.
    We therefore use Q = α1·α1*·α2·α2*·α1·α3 — the unique completion under
    which the paper's stated match evolution holds exactly (verified by
    tests), preserving the Theorem 1 witness property: each insertion
    alone leaves Q(G) empty, both together create 2n matches, and any
    locally persistent algorithm must traverse Ω(n) nodes on the first
    insertion although |CHANGED| = 1.
    """
    if n < 2:
        raise ValueError("gadget needs n >= 2")
    graph = DiGraph()
    for index in range(1, 2 * n + 1):
        graph.add_node(("v", index), label="alpha1")
        graph.add_node(("u", index), label="alpha2")
    graph.add_node("w", label="alpha3")
    for index in range(1, 2 * n + 1):
        nxt = index % (2 * n) + 1
        graph.add_edge(("v", index), ("v", nxt))
        graph.add_edge(("u", index), ("u", nxt))
    graph.add_edge(("v", 1), "w")
    return GadgetInstance(
        graph=graph,
        first_update=Delta([insert(("v", n), ("u", n))]),
        second_update=Delta([insert(("u", 1), ("v", 1))]),
        description=(
            "paper Fig. 9: each unit insertion alone changes nothing "
            "(|CHANGED| = 1) yet forces O(n) product-graph traversal"
        ),
    )


RPQ_GADGET_QUERY = "alpha1 . alpha1* . alpha2 . alpha2* . alpha1 . alpha3"


def ssrp_chain_gadget(n: int) -> GadgetInstance:
    """SSRP deletion witness: two parallel chains s → a_* and s → b_*,
    with a cross edge (b_{n-1}, a_0).  Deleting (s, a_0) — a BFS spanning
    tree edge — leaves every node reachable (ΔO = ∅): a_0 survives via
    the full b-chain detour.  Verifying that requires inspecting the Ω(n)
    detour; no locally persistent algorithm can shortcut it."""
    if n < 2:
        raise ValueError("gadget needs n >= 2")
    graph = DiGraph()
    graph.add_node("s", label="n")
    for index in range(n):
        graph.add_node(("a", index), label="n")
        graph.add_node(("b", index), label="n")
    graph.add_edge("s", ("a", 0))
    graph.add_edge("s", ("b", 0))
    for index in range(n - 1):
        graph.add_edge(("a", index), ("a", index + 1))
        graph.add_edge(("b", index), ("b", index + 1))
    graph.add_edge(("b", n - 1), ("a", 0))
    return GadgetInstance(
        graph=graph,
        first_update=Delta([delete("s", ("a", 0))]),
        second_update=None,
        description="tree-edge deletion with empty ΔO; detour check costs Ω(n)",
    )


def kws_chain_gadget(n: int, bound: int) -> GadgetInstance:
    """KWS deletion witness: a fan of parallel paths of length ``bound``
    from a root to a keyword node; deleting the chosen path's first edge
    leaves dist(root) unchanged via the next path, but the algorithm must
    re-derive it — and the affected region grows with the fan width n."""
    if n < 2 or bound < 2:
        raise ValueError("gadget needs n >= 2 and bound >= 2")
    graph = DiGraph()
    graph.add_node("root", label="x")
    graph.add_node("key", label="kw")
    for lane in range(n):
        previous = "root"
        for step in range(bound - 1):
            node = ("lane", lane, step)
            graph.add_node(node, label="x")
            graph.add_edge(previous, node)
            previous = node
        graph.add_edge(previous, "key")
    first_lane_head = ("lane", 0, 0)
    return GadgetInstance(
        graph=graph,
        first_update=Delta([delete("root", first_lane_head)]),
        second_update=None,
        description=(
            "deleting the chosen shortest path's first edge keeps "
            "dist(root) intact via a sibling lane (ΔO = ∅)"
        ),
    )


def scc_cycle_gadget(n: int) -> GadgetInstance:
    """SCC witness: a 2n-cycle with one chord; deleting the chord keeps the
    single SCC (ΔO = ∅), but Tarjan's auxiliary structures (num/lowlink)
    along the cycle must be revalidated — cost grows with n while
    |CHANGED| = 1."""
    if n < 2:
        raise ValueError("gadget needs n >= 2")
    graph = DiGraph()
    size = 2 * n
    for index in range(size):
        graph.add_node(index, label="x")
    for index in range(size):
        graph.add_edge(index, (index + 1) % size)
    graph.add_edge(n, 0)  # chord: a second way back
    return GadgetInstance(
        graph=graph,
        first_update=Delta([delete(n, 0)]),
        second_update=None,
        description="chord deletion keeps one SCC; revalidation walks the cycle",
    )


@dataclass(frozen=True)
class WitnessPoint:
    """One measurement: gadget size, |CHANGED|, and measured work."""

    n: int
    changed: int
    cost: int


def measure_rpq_witness(sizes: list[int]) -> list[WitnessPoint]:
    """Run IncRPQ on growing Fig. 9 gadgets; record cost of the *first*
    insertion, whose ΔO is empty (|CHANGED| = 1)."""
    from repro.core.cost import CostMeter
    from repro.rpq import RPQIndex

    points = []
    for n in sizes:
        gadget = rpq_two_cycle_gadget(n)
        meter = CostMeter()
        index = RPQIndex(gadget.graph, RPQ_GADGET_QUERY, meter=meter)
        meter.reset()
        delta_o = index.apply(gadget.first_update)
        changed = len(gadget.first_update) + len(delta_o.added) + len(delta_o.removed)
        points.append(WitnessPoint(n=n, changed=changed, cost=meter.total()))
    return points


def measure_scc_witness(sizes: list[int]) -> list[WitnessPoint]:
    from repro.core.cost import CostMeter
    from repro.scc import SCCIndex

    points = []
    for n in sizes:
        gadget = scc_cycle_gadget(n)
        meter = CostMeter()
        index = SCCIndex(gadget.graph, meter=meter)
        meter.reset()
        added, removed = index.apply(gadget.first_update)
        changed = len(gadget.first_update) + len(added) + len(removed)
        points.append(WitnessPoint(n=n, changed=changed, cost=meter.total()))
    return points


def measure_kws_witness(sizes: list[int], bound: int = 4) -> list[WitnessPoint]:
    from repro.core.cost import CostMeter
    from repro.kws import KWSIndex, KWSQuery

    points = []
    for n in sizes:
        gadget = kws_chain_gadget(n, bound)
        meter = CostMeter()
        index = KWSIndex(gadget.graph, KWSQuery(("kw",), bound), meter=meter)
        meter.reset()
        delta_o = index.apply(gadget.first_update)
        changed = (
            len(gadget.first_update)
            + len(delta_o.added)
            + len(delta_o.removed)
            + len(delta_o.rerouted)
        )
        points.append(WitnessPoint(n=n, changed=changed, cost=meter.total()))
    return points


def measure_ssrp_deletion_witness(sizes: list[int]) -> list[WitnessPoint]:
    from repro.core.cost import CostMeter
    from repro.core.ssrp import ReachabilityIndex

    points = []
    for n in sizes:
        gadget = ssrp_chain_gadget(n)
        meter = CostMeter()
        index = ReachabilityIndex(gadget.graph, "s", meter=meter)
        meter.reset()
        gained, lost = index.apply(gadget.first_update)
        changed = len(gadget.first_update) + len(gained) + len(lost)
        points.append(WitnessPoint(n=n, changed=changed, cost=meter.total()))
    return points

"""Δ-reductions (paper Section 3, Lemma 2) — executable constructions.

A Δ-reduction from query class Q1 to Q2 is a triple (f, f_i, f_o):
``f`` maps instances, ``f_i`` maps input updates, ``f_o`` maps output
changes back, all in PTIME in |ΔG1| + |ΔO1| and |Q1|.  If Q2 admits a
bounded incremental algorithm then so does Q1; contrapositively, the
reductions below transport SSRP's unboundedness under unit deletions [38]
to RPQ and SCC (Theorem 1).

Two reductions are implemented end-to-end and property-tested:

* **SSRP → RPQ** (the paper's construction, Appendix): relabel the source
  node α1 and every other node α2, take Q2 = α1 · α2*; then v is reachable
  from v_s iff (v_s', v') ∈ Q2(G2).  Updates map identically; output
  updates map back by projecting the second component.
* **SSRP → SCC** (the paper defers this to the full version; we use a
  hub construction preserving the Δ-reduction contract): add one fresh
  hub node ``h`` with edges v → h for every node v and h → v_s.  Then
  scc(v_s) in G2 equals {v : v_s ⇝ v in G1} ∪ {h}: the hub returns every
  reached node to the source, while an unreached node's hub path is
  one-way.  The hub is a fresh node, so ΔG1 can never collide with the
  reduction's static edges; h itself never appears in ΔG1 and can be
  filtered out of ΔO2 in constant time per changed node.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.delta import Delta, Update
from repro.graph.digraph import DiGraph, Node

ALPHA_SOURCE = "alpha1"
ALPHA_OTHER = "alpha2"

#: Fresh hub node for the SSRP→SCC construction.
HUB = "__ssrp_hub__"


@dataclass(frozen=True)
class SSRPInstance:
    """An SSRP instance: graph + distinguished source."""

    graph: DiGraph
    source: Node


class DeltaReduction:
    """Base interface: f (instance), f_i (updates), f_o (output changes)."""

    def map_instance(self, instance: SSRPInstance):
        raise NotImplementedError

    def map_updates(self, delta: Delta) -> Delta:
        raise NotImplementedError

    def map_output_back(self, output_delta, instance: SSRPInstance):
        raise NotImplementedError


# ----------------------------------------------------------------------
# SSRP -> RPQ
# ----------------------------------------------------------------------


class SSRPToRPQ(DeltaReduction):
    """The Appendix construction: Q2 = α1 · (α2)*.

    Every path spelling α1 α2* starts at the unique α1-node (the source),
    so Q2(G2) = {(v_s, v) : v_s ⇝ v, v ≠ v_s} plus the reflexive match
    (v_s, v_s) from the single-node path; f_o ignores the reflexive pair
    (r(v_s) is always true in SSRP).
    """

    query_text = f"{ALPHA_SOURCE} . {ALPHA_OTHER}*"

    def map_instance(self, instance: SSRPInstance) -> tuple[DiGraph, str]:
        relabeled = DiGraph()
        for node in instance.graph.nodes():
            label = ALPHA_SOURCE if node == instance.source else ALPHA_OTHER
            relabeled.add_node(node, label=label)
        for source, target in instance.graph.edges():
            relabeled.add_edge(source, target)
        return relabeled, self.query_text

    def map_updates(self, delta: Delta) -> Delta:
        """f_i: identity on edges; new nodes get the α2 label."""
        mapped = [
            Update(
                kind=update.kind,
                source=update.source,
                target=update.target,
                source_label=ALPHA_OTHER,
                target_label=ALPHA_OTHER,
            )
            for update in delta
        ]
        return Delta(mapped)

    def map_output_back(
        self,
        output_delta: tuple[frozenset, frozenset],
        instance: SSRPInstance,
    ) -> tuple[set[Node], set[Node]]:
        """f_o: pairs (v_s, v) gained/lost become r(v) flips."""
        added_pairs, removed_pairs = output_delta
        gained = {
            target
            for source, target in added_pairs
            if source == instance.source and target != instance.source
        }
        lost = {
            target
            for source, target in removed_pairs
            if source == instance.source and target != instance.source
        }
        return gained, lost


# ----------------------------------------------------------------------
# SSRP -> SCC
# ----------------------------------------------------------------------


class SSRPToSCC(DeltaReduction):
    """Hub construction: G2 = G1 + {h} + {(v, h) : v ∈ V1} + {(h, v_s)}.

    Paths through h must end ... → h → v_s, so reachability from v_s to
    any original node is the same in G1 and G2; every reached node closes
    a cycle through the hub, hence scc(v_s) = reached(v_s) ∪ {h}.
    """

    def map_instance(self, instance: SSRPInstance) -> DiGraph:
        augmented = instance.graph.copy()
        augmented.add_node(HUB, label="hub")
        for node in list(augmented.nodes()):
            if node != HUB:
                augmented.add_edge(node, HUB)
        augmented.add_edge(HUB, instance.source)
        return augmented

    def map_updates(self, delta: Delta) -> Delta:
        """f_i: identity on G1's edges.  Hub edges for brand-new nodes are
        appended by the solver (which knows the current node set); either
        way the mapping stays O(|ΔG1|)."""
        return Delta(list(delta))

    def map_output_back(
        self,
        output_delta: tuple[set[frozenset[Node]], set[frozenset[Node]]],
        instance: SSRPInstance,
    ) -> tuple[set[Node], set[Node]]:
        """f_o: membership diff of the component containing v_s, hub
        excluded."""
        added_components, removed_components = output_delta
        new_home = next(
            (comp for comp in added_components if instance.source in comp), None
        )
        old_home = next(
            (comp for comp in removed_components if instance.source in comp), None
        )
        if new_home is None and old_home is None:
            # the source's component did not change: no reachability flips
            # (other components may have reshuffled; SSRP does not care).
            return set(), set()
        if new_home is None or old_home is None:
            raise AssertionError(
                "a changed source component must appear in both halves of ΔO"
            )
        gained = set(new_home) - set(old_home) - {HUB}
        lost = set(old_home) - set(new_home) - {HUB}
        return gained, lost


# ----------------------------------------------------------------------
# End-to-end harness (used by tests and the unboundedness benches)
# ----------------------------------------------------------------------


def solve_ssrp_via_rpq(instance: SSRPInstance, delta: Delta) -> tuple[set, set]:
    """Run the SSRP→RPQ reduction end to end: build I2 = f(I1), apply
    f_i(ΔG1) with the incremental RPQ algorithm, map ΔO2 back.

    Returns (gained, lost) reachability flips — which tests compare with a
    direct SSRP run.
    """
    from repro.rpq import RPQIndex

    reduction = SSRPToRPQ()
    rpq_graph, query = reduction.map_instance(instance)
    index = RPQIndex(rpq_graph, query)
    rpq_delta = index.apply(reduction.map_updates(delta))
    return reduction.map_output_back(
        (rpq_delta.added, rpq_delta.removed), instance
    )


def solve_ssrp_via_scc(instance: SSRPInstance, delta: Delta) -> tuple[set, set]:
    """Run the SSRP→SCC reduction end to end with IncSCC.

    New nodes introduced by insertions receive their hub edge immediately
    after the batch (keeping the construction's invariant) — those extra
    edges are part of f_i's image and sized O(|ΔG1|).
    """
    from repro.core.delta import insert
    from repro.scc import SCCIndex

    reduction = SSRPToSCC()
    scc_graph = reduction.map_instance(instance)
    index = SCCIndex(scc_graph)
    mapped = list(reduction.map_updates(delta))
    hub_edges: list[Update] = []
    present = set(scc_graph.nodes())
    for update in mapped:
        if update.is_insert:
            for node in (update.source, update.target):
                if node not in present:
                    present.add(node)
                    hub_edges.append(insert(node, HUB))
    scc_delta = index.apply(Delta(mapped + hub_edges))
    return reduction.map_output_back(scc_delta, instance)

"""Theory artifacts: Δ-reductions, unboundedness witnesses, and the
practical boundedness conditions of the paper's future-work section."""

from repro.theory.bounded_conditions import (
    classify_scc_stream,
    kws_deletion_is_far,
    scc_update_is_rank_respecting,
    topological_insert_stream,
)
from repro.theory.lower_bounds import (
    RPQ_GADGET_QUERY,
    GadgetInstance,
    WitnessPoint,
    kws_chain_gadget,
    measure_kws_witness,
    measure_rpq_witness,
    measure_scc_witness,
    measure_ssrp_deletion_witness,
    rpq_two_cycle_gadget,
    scc_cycle_gadget,
    ssrp_chain_gadget,
)
from repro.theory.reductions import (
    ALPHA_OTHER,
    ALPHA_SOURCE,
    HUB,
    SSRPInstance,
    SSRPToRPQ,
    SSRPToSCC,
    solve_ssrp_via_rpq,
    solve_ssrp_via_scc,
)

__all__ = [
    "ALPHA_OTHER",
    "ALPHA_SOURCE",
    "HUB",
    "classify_scc_stream",
    "kws_deletion_is_far",
    "scc_update_is_rank_respecting",
    "topological_insert_stream",
    "GadgetInstance",
    "RPQ_GADGET_QUERY",
    "SSRPInstance",
    "SSRPToRPQ",
    "SSRPToSCC",
    "WitnessPoint",
    "kws_chain_gadget",
    "measure_kws_witness",
    "measure_rpq_witness",
    "measure_scc_witness",
    "measure_ssrp_deletion_witness",
    "rpq_two_cycle_gadget",
    "scc_cycle_gadget",
    "solve_ssrp_via_rpq",
    "solve_ssrp_via_scc",
    "ssrp_chain_gadget",
]

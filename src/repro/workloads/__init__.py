"""Workloads: dataset profiles, query generators, the paper's example."""

from repro.workloads.datasets import (
    DATASETS,
    DBPEDIA_SPEC,
    LIVEJ_SPEC,
    SYNTHETIC_SPEC,
    by_name,
    dbpedia_like,
    livej_like,
    synthetic,
)
from repro.workloads.paper_example import (
    PAPER_BATCH,
    PAPER_KWS_QUERY,
    PAPER_RPQ_QUERY,
    paper_graph,
)
from repro.workloads.queries import (
    ISO_GRID,
    KWS_GRID,
    RPQ_SIZE_GRID,
    QueryGenerationError,
    random_kws_queries,
    random_patterns,
    random_rpq_queries,
)

__all__ = [
    "DATASETS",
    "DBPEDIA_SPEC",
    "ISO_GRID",
    "KWS_GRID",
    "LIVEJ_SPEC",
    "PAPER_BATCH",
    "PAPER_KWS_QUERY",
    "PAPER_RPQ_QUERY",
    "QueryGenerationError",
    "RPQ_SIZE_GRID",
    "SYNTHETIC_SPEC",
    "by_name",
    "dbpedia_like",
    "livej_like",
    "paper_graph",
    "random_kws_queries",
    "random_patterns",
    "random_rpq_queries",
    "synthetic",
]

"""Random query generators (paper Section 6, "Query generators").

"We randomly generated 30 queries of KWS, RPQ and ISO with labels drawn
from the graphs.  (1) KWS queries are controlled by the number m of
keywords and bound b; (2) RPQ queries are controlled by the size ... and
the numbers of occurrences of ·, + and Kleene ∗; and (3) ISO queries are
controlled by the number of nodes |V_Q|, the number of edges |E_Q| and the
diameter d_Q."

Generators draw labels from the *target graph's* label histogram so the
queries are selective but non-vacuous, and every generator is seeded.
"""

from __future__ import annotations

import random

from repro.graph.digraph import DiGraph, Label
from repro.graph.stats import label_histogram
from repro.iso.patterns import Pattern, PatternError
from repro.kws.kdist import KWSQuery
from repro.rpq.regex import Concat, Epsilon, Regex, Star, Sym, Union


class QueryGenerationError(RuntimeError):
    """The requested query shape cannot be generated."""


def _label_pool(graph: DiGraph, rng: random.Random, prefer_common: bool = True) -> list[Label]:
    """Labels weighted toward common ones so queries usually have matches."""
    histogram = label_histogram(graph)
    if not histogram:
        raise QueryGenerationError("graph has no labels to draw from")
    labels, weights = zip(*histogram.most_common())
    if prefer_common:
        return list(
            rng.choices(labels, weights=weights, k=max(64, 4 * len(labels)))
        )
    return list(labels)


# ----------------------------------------------------------------------
# KWS
# ----------------------------------------------------------------------


def random_kws_queries(
    graph: DiGraph,
    count: int,
    m: int,
    bound: int,
    seed: int = 0,
) -> list[KWSQuery]:
    """``count`` keyword queries with ``m`` distinct keywords each."""
    rng = random.Random(seed)
    histogram = label_histogram(graph)
    distinct = [label for label, _ in histogram.most_common()]
    if len(distinct) < m:
        raise QueryGenerationError(
            f"graph has only {len(distinct)} labels, {m} keywords requested"
        )
    queries = []
    for _ in range(count):
        keywords = tuple(rng.sample(distinct[: max(m * 8, m)], m))
        queries.append(KWSQuery(keywords, bound))
    return queries


# ----------------------------------------------------------------------
# RPQ
# ----------------------------------------------------------------------


def random_rpq_queries(
    graph: DiGraph,
    count: int,
    size: int,
    stars: int = 1,
    unions: int = 1,
    seed: int = 0,
) -> list[Regex]:
    """``count`` regular path queries with ``size`` label occurrences,
    ``unions`` union operators and ``stars`` Kleene stars each.

    Construction: distribute the ``size`` labels into ``unions + 1``
    alternation branches grouped under concatenations, then wrap randomly
    chosen subexpressions in stars.  The result is always well-formed and
    has exactly the requested operator counts.
    """
    if size < 1:
        raise QueryGenerationError("RPQ size must be at least 1")
    if unions >= size:
        raise QueryGenerationError("need more labels than unions")
    rng = random.Random(seed)
    pool = _label_pool(graph, rng)
    queries: list[Regex] = []
    for _ in range(count):
        labels = [Sym(rng.choice(pool)) for _ in range(size)]
        # Split labels into union branches.
        branch_count = unions + 1
        cut_points = sorted(rng.sample(range(1, size), branch_count - 1)) if branch_count > 1 else []
        branches: list[Regex] = []
        start = 0
        for cut in cut_points + [size]:
            chunk = labels[start:cut]
            start = cut
            node = chunk[0]
            for sym in chunk[1:]:
                node = Concat(node, sym)
            branches.append(node)
        query: Regex = branches[0]
        for branch in branches[1:]:
            query = Union(query, branch)
        for _ in range(stars):
            query = _star_random_subterm(query, rng)
        queries.append(query)
    return queries


def _star_random_subterm(query: Regex, rng: random.Random) -> Regex:
    """Wrap one randomly chosen subterm in a Kleene star."""
    if isinstance(query, (Sym, Epsilon)):
        return Star(query)
    if isinstance(query, Concat):
        if rng.random() < 0.5:
            return Concat(_star_random_subterm(query.left, rng), query.right)
        return Concat(query.left, _star_random_subterm(query.right, rng))
    if isinstance(query, Union):
        if rng.random() < 0.34:
            return Star(query)
        if rng.random() < 0.5:
            return Union(_star_random_subterm(query.left, rng), query.right)
        return Union(query.left, _star_random_subterm(query.right, rng))
    if isinstance(query, Star):
        return Star(_star_random_subterm(query.child, rng))
    raise TypeError(query)


# ----------------------------------------------------------------------
# ISO
# ----------------------------------------------------------------------


def random_patterns(
    graph: DiGraph,
    count: int,
    num_nodes: int,
    num_edges: int,
    diameter: int,
    seed: int = 0,
    max_attempts: int = 500,
    fabricate: bool = True,
) -> list[Pattern]:
    """``count`` connected patterns with the requested (|V_Q|, |E_Q|, d_Q).

    Patterns are sampled from the data graph itself (random connected node
    sets with label inheritance) so they are realistically matchable, then
    edges are adjusted to hit |E_Q|; candidates whose diameter misses the
    target are rejected and resampled.

    With ``fabricate=False`` only *real* sampled edges are used (samples
    whose induced subgraph is too sparse are rejected): every pattern edge
    then maps back to its origin, so under the paper's non-induced match
    semantics each generated pattern is guaranteed at least one match.
    """
    if num_edges < num_nodes - 1:
        raise QueryGenerationError("too few edges for a connected pattern")
    max_possible = num_nodes * (num_nodes - 1)
    if num_edges > max_possible:
        raise QueryGenerationError("too many edges for a simple pattern")
    rng = random.Random(seed)
    nodes = list(graph.nodes())
    patterns: list[Pattern] = []
    attempts = 0
    while len(patterns) < count and attempts < max_attempts * count:
        attempts += 1
        sampled = _sample_connected_subgraph(graph, rng, num_nodes, nodes)
        if sampled is None:
            continue
        if not fabricate and sampled.num_edges < num_edges:
            continue
        candidate = _adjust_edges(sampled, num_edges, rng, fabricate=fabricate)
        if candidate is None:
            continue
        try:
            pattern = Pattern.from_graph(candidate)
        except PatternError:
            continue  # rejected sample (e.g. disconnected after adjust)
        if pattern.diameter == diameter:
            patterns.append(pattern)
    if len(patterns) < count:
        raise QueryGenerationError(
            f"could only generate {len(patterns)}/{count} patterns with "
            f"shape ({num_nodes}, {num_edges}, {diameter}); the data graph "
            "may not contain that topology"
        )
    return patterns


def _sample_connected_subgraph(
    graph: DiGraph,
    rng: random.Random,
    size: int,
    nodes: list,
) -> DiGraph | None:
    """Random undirected-connected node set grown from a seed node."""
    start = nodes[rng.randrange(len(nodes))]
    chosen = {start}
    frontier = [start]
    while frontier and len(chosen) < size:
        node = frontier.pop(rng.randrange(len(frontier)))
        neighbors = list(
            (set(graph.successors(node)) | set(graph.predecessors(node))) - chosen
        )
        rng.shuffle(neighbors)
        for neighbor in neighbors:
            if len(chosen) >= size:
                break
            chosen.add(neighbor)
            frontier.append(neighbor)
        if node not in frontier and len(chosen) < size:
            frontier.append(node) if neighbors else None
    if len(chosen) < size:
        return None
    sub = graph.subgraph(chosen)
    # relabel pattern nodes 0..k-1 to decouple from graph identity
    mapping = {node: index for index, node in enumerate(sorted(chosen, key=repr))}
    pattern = DiGraph()
    for node, index in mapping.items():
        pattern.add_node(index, label=graph.label(node))
    for source, target in sub.edges():
        pattern.add_edge(mapping[source], mapping[target])
    return pattern


def _adjust_edges(
    pattern: DiGraph,
    target_edges: int,
    rng: random.Random,
    fabricate: bool = True,
) -> DiGraph | None:
    """Add or remove edges to reach |E_Q| while keeping weak connectivity."""
    from repro.graph.neighborhood import undirected_distance

    current = pattern.copy()
    node_list = list(current.nodes())
    guard = 0
    while fabricate and current.num_edges < target_edges and guard < 200:
        guard += 1
        source = rng.choice(node_list)
        target = rng.choice(node_list)
        if source != target and not current.has_edge(source, target):
            current.add_edge(source, target)
    while current.num_edges > target_edges and guard < 400:
        guard += 1
        edges = list(current.edges())
        source, target = rng.choice(edges)
        current.remove_edge(source, target)
        # keep weak connectivity
        if undirected_distance(current, source, target) is None:
            current.add_edge(source, target)
    if current.num_edges != target_edges:
        return None
    return current


# ----------------------------------------------------------------------
# Paper parameter grids (Exp-2 x-axes)
# ----------------------------------------------------------------------

KWS_GRID = [(2, 1), (3, 2), (4, 3), (5, 4), (6, 5)]           # Fig. 8(j)
RPQ_SIZE_GRID = [3, 4, 5, 6, 7]                                # Fig. 8(k)
ISO_GRID = [(3, 5, 1), (4, 6, 2), (5, 7, 3), (6, 8, 4), (7, 9, 5)]  # Fig. 8(l)

"""The paper's running example (Fig. 2, Examples 1-9) — reconstructed.

The figure itself is not recoverable from the text, so this module encodes
the graph that satisfies every *textual* fact of the examples; the
test-suite (tests/test_paper_examples.py) verifies each of them:

* Example 1 — Q = (a, d), b = 2: Q(G) = {T_b2, T_d2}; kdist(b2)[d] =
  ⟨2, b4⟩ and kdist(c2)[d] = ⟨⊥, nil⟩ before inserting e1 = (b2, d1),
  ⟨1, d1⟩ and ⟨2, b2⟩ after; propagation stops at c2 (bound reached).
* Example 2 — deleting e2 = (c2, b3) from G1: c2 is affected w.r.t. 'a',
  its only alternative runs through b2 whose a-distance equals the bound,
  so T_c2 is removed.
* Example 3 — the full batch ΔG (insert e1, e3 = (b2, a1), e4 = (b4, b3);
  delete e2, e5 = (c1, a1)): c1 and c2 are affected w.r.t. 'a'; T_b2's
  two branches become the direct edges (b2, a1) and (b2, d1); T_b4 is
  added; T'_c2 has the a-branch (c2, b2, a1).
* Examples 4-5 — Q = c·(b·a + c)*·c: (c1, c2) ∈ Q(G); after ΔG the pairs
  (c2, c1) and (c1, c1) appear (exactly the pairs the paper adds).
* Example 9 — deleting e5 splits c1's component into three singletons.

Known deviations from the (unrecoverable) figure, kept honest in tests:
the reconstruction has six SCCs rather than four, e2 connects two
two-node components rather than lying inside a four-node scc2, and
(c2, c2) is a match only *after* ΔG.  All algorithm-level behaviours the
examples narrate are preserved.
"""

from __future__ import annotations

from repro.core.delta import Delta, delete, insert
from repro.graph.digraph import DiGraph
from repro.kws.kdist import KWSQuery

#: Node labels of the Fig. 2 graph: letter part of the name.
PAPER_LABELS = {
    "a1": "a", "a2": "a",
    "b1": "b", "b2": "b", "b3": "b", "b4": "b",
    "c1": "c", "c2": "c",
    "d1": "d", "d2": "d",
}

#: Solid edges of G, including the dotted-but-present e2 and e5.
PAPER_EDGES = [
    ("a1", "b1"),
    ("a1", "c1"),
    ("b1", "c1"),
    ("c1", "a1"),   # e5
    ("c1", "c2"),
    ("c2", "b2"),
    ("c2", "b3"),   # e2
    ("b2", "b3"),
    ("b2", "b4"),
    ("b4", "b2"),
    ("b4", "d1"),
    ("b3", "a2"),
    ("a2", "b3"),
    ("d2", "a1"),
]

E1 = insert("b2", "d1")
E2 = delete("c2", "b3")
E3 = insert("b2", "a1")
E4 = insert("b4", "b3")
E5 = delete("c1", "a1")

#: Example 3 / 5 / 8 batch: "insert edges e1, e3, e4 and delete e2 and e5".
PAPER_BATCH = Delta([E1, E3, E4, E2, E5])

#: Example 1's keyword query: Q = (a, d) with bound 2.
PAPER_KWS_QUERY = KWSQuery(("a", "d"), 2)

#: Example 4's regular path query.
PAPER_RPQ_QUERY = "c . (b . a + c)* . c"


def paper_graph() -> DiGraph:
    """A fresh copy of the reconstructed Fig. 2 graph."""
    return DiGraph(labels=dict(PAPER_LABELS), edges=list(PAPER_EDGES))

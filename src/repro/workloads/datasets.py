"""Dataset profiles standing in for the paper's evaluation graphs
(Section 6, "Graphs"; see DESIGN.md substitution table).

The paper evaluates on

* **DBpedia** — 4.3M nodes, 40.3M edges, 495 labels (knowledge graph:
  sparse, heavy label skew, shallow hub structure);
* **LiveJournal** — 4.9M nodes, 68.5M edges, 100 labels (social network:
  denser, giant SCC covering ~77% of the graph);
* **synthetic** — |V| up to 50M, |E| up to 100M, 100-symbol alphabet.

Offline we synthesize graphs matching each profile's *shape* at laptop
scale: the node/edge ratio, alphabet size, label skew and SCC structure
are preserved (verified by tests via :mod:`repro.graph.stats`), because
those are the properties the incremental-vs-batch comparison is sensitive
to.  ``scale = 1.0`` gives the default benchmark size; the Exp-3 sweep
varies ``scale`` from 0.2 to 1.0 exactly like the paper's Figures 8(m)-(p).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    label_alphabet,
    planted_scc_graph,
    power_law_graph,
    uniform_random_graph,
)

#: Default |V| at scale 1.0 — small enough for pure-Python benchmarking,
#: large enough that incremental-vs-batch gaps are far above timer noise.
BASE_NODES = 2000

DBPEDIA_ALPHABET = label_alphabet(495, prefix="T")
LIVEJ_ALPHABET = label_alphabet(100, prefix="C")
SYNTHETIC_ALPHABET = label_alphabet(100, prefix="L")


@dataclass(frozen=True)
class DatasetSpec:
    """What a profile promises; tests assert generated graphs comply."""

    name: str
    edge_node_ratio: float
    alphabet_size: int
    giant_scc_min: float  # fraction of nodes in the largest SCC, 0 if n/a


DBPEDIA_SPEC = DatasetSpec("dbpedia-like", 40.3 / 4.3, 495, 0.0)
LIVEJ_SPEC = DatasetSpec("livej-like", 68.5 / 4.9, 100, 0.7)
SYNTHETIC_SPEC = DatasetSpec("synthetic", 2.0, 100, 0.0)


def dbpedia_like(scale: float = 1.0, seed: int = 0) -> DiGraph:
    """Knowledge-graph profile: power-law in-degrees (hub entities),
    495 labels with Zipf skew (a few types dominate), |E|/|V| ≈ 9.4.

    Knowledge graphs are nearly acyclic — the contrast with LiveJournal's
    giant SCC that Exp-1(3)(c) relies on — so the base graph is a
    hierarchical DAG and ~1% of edges are made reciprocal between
    *nearby* nodes, yielding many tiny components (largest ≈ 1% of |V|)
    without touching the degree distribution.
    """
    import random as _random

    num_nodes = max(50, int(BASE_NODES * scale))
    num_edges = int(num_nodes * DBPEDIA_SPEC.edge_node_ratio)
    reciprocal_budget = max(1, int(num_edges * 0.01))
    graph = power_law_graph(
        num_nodes,
        num_edges - reciprocal_budget,
        DBPEDIA_ALPHABET,
        seed=seed,
        label_skew=1.1,
        forward_bias=1.0,
    )
    rng = _random.Random(seed + 1)
    short_span = [
        (source, target)
        for source, target in graph.edges()
        if abs(target - source) <= 10
    ]
    rng.shuffle(short_span)
    added = 0
    for source, target in short_span:
        if added >= reciprocal_budget:
            break
        if not graph.has_edge(target, source):
            graph.add_edge(target, source)
            added += 1
    return graph


def livej_like(scale: float = 1.0, seed: int = 0) -> DiGraph:
    """Social-network profile: denser (|E|/|V| ≈ 14), 100 labels, and a
    planted giant SCC near the 77% the paper reports for LiveJournal."""
    num_nodes = max(50, int(BASE_NODES * scale))
    num_edges = int(num_nodes * LIVEJ_SPEC.edge_node_ratio)
    return planted_scc_graph(
        num_nodes,
        num_edges,
        LIVEJ_ALPHABET,
        giant_fraction=0.77,
        seed=seed,
        label_skew=0.5,
    )


def synthetic(scale: float = 1.0, seed: int = 0, edge_factor: float = 2.0) -> DiGraph:
    """The paper's synthetic generator: |E| = edge_factor · |V| (their
    headline configuration is 50M nodes / 100M edges, i.e. factor 2),
    uniform 100-symbol alphabet."""
    num_nodes = max(50, int(BASE_NODES * scale))
    num_edges = int(num_nodes * edge_factor)
    return uniform_random_graph(num_nodes, num_edges, SYNTHETIC_ALPHABET, seed=seed)


DATASETS = {
    "dbpedia": (dbpedia_like, DBPEDIA_SPEC),
    "livej": (livej_like, LIVEJ_SPEC),
    "synthetic": (synthetic, SYNTHETIC_SPEC),
}


def by_name(name: str, scale: float = 1.0, seed: int = 0) -> DiGraph:
    """Fetch a dataset by profile name."""
    try:
        builder, _ = DATASETS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; choose from {sorted(DATASETS)}"
        ) from None
    return builder(scale=scale, seed=seed)


def with_selectivity(graph: DiGraph, nodes_per_label: int, seed: int = 0) -> DiGraph:
    """Relabel a graph so each label covers ≈ ``nodes_per_label`` nodes.

    Label *selectivity* (graph nodes per label), not alphabet size, is the
    scale-free quantity that drives subgraph-matching cost: DBpedia's 4.3M
    nodes over 495 labels give ≈ 8.7k nodes per label, which a laptop-scale
    graph can only mirror by shrinking the alphabet.  The ISO benches use
    this view so VF2 does paper-shaped work instead of dying instantly on
    near-unique labels (see DESIGN.md substitutions).
    """
    import random as _random

    if nodes_per_label < 1:
        raise ValueError("nodes_per_label must be at least 1")
    alphabet_size = max(2, graph.num_nodes // nodes_per_label)
    alphabet = label_alphabet(alphabet_size, prefix="S")
    rng = _random.Random(seed)
    relabeled = graph.copy()
    for node in relabeled.nodes():
        relabeled.set_label(node, rng.choice(alphabet))
    return relabeled

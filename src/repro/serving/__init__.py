"""The serving layer: many concurrent readers over one write stream.

:class:`Repository` (:mod:`repro.serving.repository`) wraps an
:class:`~repro.engine.session.Engine` in MVCC generation snapshots, a
bounded session pool, and a query cache invalidated by each view's
routed sub-delta; :class:`ServingFrontend`
(:mod:`repro.serving.frontend`) puts it on a TCP socket with
backpressure.  ``docs/SERVING.md`` specifies the contracts.
"""

from repro.serving.frontend import ServingFrontend, jsonable
from repro.serving.repository import (
    CacheStats,
    ReadSession,
    Repository,
    RepositoryPoisonedError,
    ServingError,
    SessionClosedError,
    SessionExpiredError,
    SessionLimitError,
    UnknownQueryError,
    freeze_answer,
)

__all__ = [
    "CacheStats",
    "ReadSession",
    "Repository",
    "RepositoryPoisonedError",
    "ServingError",
    "ServingFrontend",
    "SessionClosedError",
    "SessionExpiredError",
    "SessionLimitError",
    "UnknownQueryError",
    "freeze_answer",
    "jsonable",
]

"""The asyncio front door: newline-delimited JSON over TCP.

:class:`ServingFrontend` exposes a :class:`~repro.serving.repository.
Repository` on a socket.  The protocol is deliberately minimal — one
JSON object per line in, one JSON object per line out, same order —
because the interesting engineering is *behind* the socket (MVCC
sessions, the delta-invalidated cache) and *at* the socket
(backpressure), not in the framing:

* ``{"op": "open"}`` — admit a read session; replies with the session
  id and the pinned generation.  Sessions belong to the connection that
  opened them and are closed automatically on disconnect.
* ``{"op": "read", "view": V, "query": Q, "session": S}`` — answer at
  the session's pinned generation; omit ``"session"`` for a one-shot
  read at the latest generation.
* ``{"op": "close", "session": S}`` — release the session's pool slot.
* ``{"op": "apply", "updates": [["insert", u, v, lu, lv],
  ["delete", u, v], ...]}`` — push one batch through the write stream;
  replies with the newly published generation.
* ``{"op": "stats"}`` — the repository's operational snapshot.

Every reply carries ``"ok"``, and echoes the request's ``"id"`` when
one was sent — replies are written in request order per connection, so
the echo lets a pipelining client correlate without counting.
Failures are structured: ``"error"`` is a
stable token (``overloaded``, ``session_limit``, ``session_expired``,
``session_closed``, ``unknown_query``, ``bad_request``, ``poisoned``,
``serving_error``) and ``"message"`` is human-readable.

**Backpressure.**  The frontend bounds its in-flight work: at most
``max_inflight`` requests may be executing at once across all
connections.  A request arriving past the bound is not queued — it is
load-shed *immediately* with ``{"ok": false, "error": "overloaded",
"retry_after": r}`` so the client backs off instead of silently growing
an unbounded queue.  The same shape (with ``error: "session_limit"``)
is returned when the repository's session pool is exhausted — the two
bounds shed load at different depths (event loop vs. session pool) but
present one retry contract.

The event loop never blocks on the engine: repository calls (which may
wait on the engine's read/write lock) run on the default thread-pool
executor.  All frontend state (in-flight counter, per-connection
session tables) is touched only from the event-loop thread, so the
frontend itself needs no locks — the thread-safety boundary is the
:class:`Repository`.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Optional

from repro.core.delta import Update, delete, insert
from repro.serving.repository import (
    Repository,
    RepositoryPoisonedError,
    ServingError,
    SessionClosedError,
    SessionExpiredError,
    SessionLimitError,
    UnknownQueryError,
)

__all__ = ["ServingFrontend", "jsonable"]

#: Maximum accepted request-line length (bytes); longer lines indicate a
#: confused or hostile client and drop the connection.
MAX_LINE_BYTES = 1 << 20

_ERROR_TOKENS = (
    (SessionLimitError, "session_limit"),
    (SessionExpiredError, "session_expired"),
    (SessionClosedError, "session_closed"),
    (UnknownQueryError, "unknown_query"),
    (RepositoryPoisonedError, "poisoned"),
    (ServingError, "serving_error"),
)


def jsonable(value: Any) -> Any:
    """Project a frozen query answer onto JSON types, deterministically.

    Frozen answers use frozensets and tuples (see
    :func:`repro.serving.repository.freeze_answer`); JSON has neither,
    so sets become sorted lists (sorted by ``repr`` — total even over
    mixed element types) and tuples become lists.

    >>> jsonable(frozenset({frozenset({2, 1}), frozenset({3})}))
    [[1, 2], [3]]
    """
    if isinstance(value, (set, frozenset)):
        return sorted((jsonable(item) for item in value), key=repr)
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    return value


def _parse_updates(raw: Any) -> list[Update]:
    """Decode the wire form of a batch (see module docstring)."""
    if not isinstance(raw, list):
        raise ValueError("'updates' must be a list of update arrays")
    updates: list[Update] = []
    for entry in raw:
        if not isinstance(entry, list) or not entry:
            raise ValueError(f"malformed update entry: {entry!r}")
        kind, *rest = entry
        if kind == "insert" and len(rest) in (2, 4):
            updates.append(insert(*rest))
        elif kind == "delete" and len(rest) == 2:
            updates.append(delete(*rest))
        else:
            raise ValueError(f"malformed update entry: {entry!r}")
    return updates


class ServingFrontend:
    """Serve one repository over newline-delimited JSON on TCP.

    ``max_inflight`` bounds concurrently-executing requests (the
    load-shed knob); ``retry_after`` is the back-off hint (seconds)
    shed replies carry.  Use as an async context manager, or call
    :meth:`start` / :meth:`stop`:

    .. code-block:: python

        frontend = ServingFrontend(repo, host="127.0.0.1", port=0)
        await frontend.start()           # frontend.port is now bound
        ...
        await frontend.stop()
    """

    def __init__(
        self,
        repository: Repository,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 128,
        retry_after: float = 0.05,
    ) -> None:
        if max_inflight < 1:
            raise ServingError("max_inflight must be at least 1")
        self.repository = repository
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self.retry_after = retry_after
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._connections: set["asyncio.Task[None]"] = set()
        self._inflight = 0
        self._shed = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections; with ``port=0`` the
        chosen port is published on :attr:`port`."""
        if self._server is not None:
            raise ServingError("the frontend is already started")
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting, close the listener, disconnect every client,
        and wait for their handlers to release the repository sessions
        they own (idempotent): after ``stop()`` returns, no frontend
        session remains open."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        for writer in tuple(self._writers):
            writer.close()
        connections = tuple(self._connections)
        if connections:
            await asyncio.gather(*connections, return_exceptions=True)

    async def __aenter__(self) -> "ServingFrontend":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    @property
    def shed_count(self) -> int:
        """Requests load-shed with ``overloaded`` since start."""
        return self._shed

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Sessions opened over this connection, owned by it: the pool
        # slot of a client that vanishes must not leak until lease
        # expiry when the disconnect already told us it is gone.
        sessions: dict[int, Any] = {}
        self._writers.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    break  # oversized line: drop the connection
                if not line:
                    break
                reply = await self._handle_line(line, sessions)
                writer.write(json.dumps(reply).encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            self._writers.discard(writer)
            for session in sessions.values():
                session.close()
            sessions.clear()
            writer.close()
            try:
                # The handler is already done; a cancellation landing in
                # this last await (loop teardown racing the client's
                # close) must not surface as a task error.
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _handle_line(
        self, line: bytes, sessions: dict[int, Any]
    ) -> dict[str, Any]:
        try:
            request = json.loads(line)
        except json.JSONDecodeError as error:
            return self._error("bad_request", f"not JSON: {error}")
        if not isinstance(request, dict) or "op" not in request:
            return self._error("bad_request", "request must be {'op': ...}")
        reply: dict[str, Any]
        # The load-shed decision happens before any work is enqueued:
        # past max_inflight the request is refused *now*, not queued.
        if self._inflight >= self.max_inflight:
            self._shed += 1
            reply = {
                "ok": False,
                "error": "overloaded",
                "message": (
                    f"{self._inflight} requests in flight "
                    f"(max {self.max_inflight}); retry after back-off"
                ),
                "retry_after": self.retry_after,
            }
        else:
            self._inflight += 1
            try:
                reply = await self._dispatch(request, sessions)
            finally:
                self._inflight -= 1
        if "id" in request:
            reply["id"] = request["id"]
        return reply

    async def _dispatch(
        self, request: dict[str, Any], sessions: dict[int, Any]
    ) -> dict[str, Any]:
        op = request.get("op")
        loop = asyncio.get_running_loop()
        try:
            if op == "open":
                session = await loop.run_in_executor(
                    None, self.repository.session
                )
                sessions[session.session_id] = session
                return {
                    "ok": True,
                    "session": session.session_id,
                    "generation": session.generation,
                }
            if op == "read":
                view = request.get("view")
                query = request.get("query")
                if not isinstance(view, str) or not isinstance(query, str):
                    return self._error(
                        "bad_request", "read needs string 'view' and 'query'"
                    )
                session_id = request.get("session")
                if session_id is None:
                    answer = await loop.run_in_executor(
                        None, self.repository.read_latest, view, query
                    )
                    generation = self.repository.generation
                else:
                    session = sessions.get(session_id)
                    if session is None:
                        return self._error(
                            "session_closed",
                            f"session {session_id} is not open on this "
                            "connection",
                        )
                    answer = await loop.run_in_executor(
                        None, session.read, view, query
                    )
                    generation = session.generation
                return {
                    "ok": True,
                    "generation": generation,
                    "answer": jsonable(answer),
                }
            if op == "close":
                session = sessions.pop(request.get("session"), None)
                if session is None:
                    return self._error(
                        "session_closed",
                        "no such open session on this connection",
                    )
                session.close()
                return {"ok": True}
            if op == "apply":
                try:
                    updates = _parse_updates(request.get("updates"))
                except ValueError as error:
                    return self._error("bad_request", str(error))
                report = await loop.run_in_executor(
                    None, self.repository.apply, updates
                )
                return {
                    "ok": True,
                    "generation": self.repository.generation,
                    "routed": sorted(
                        name
                        for name, view_report in report.views.items()
                        if view_report.changed
                    ),
                }
            if op == "stats":
                stats = await loop.run_in_executor(None, self.repository.stats)
                stats["frontend"] = {
                    "inflight": self._inflight,
                    "max_inflight": self.max_inflight,
                    "shed": self._shed,
                }
                return {"ok": True, "stats": jsonable(stats)}
            return self._error("bad_request", f"unknown op {op!r}")
        except tuple(kind for kind, _ in _ERROR_TOKENS) as error:
            for kind, token in _ERROR_TOKENS:
                if isinstance(error, kind):
                    reply = self._error(token, str(error))
                    if token == "session_limit":
                        reply["retry_after"] = self.retry_after
                    return reply
            raise  # unreachable: the except clause matched one of them
        except Exception as error:  # surface, do not kill the connection
            return self._error("serving_error", f"{type(error).__name__}: {error}")

    @staticmethod
    def _error(token: str, message: str) -> dict[str, Any]:
        return {"ok": False, "error": token, "message": message}

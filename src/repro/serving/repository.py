"""The concurrent serving core: MVCC read sessions over one write stream.

Everything below the serving layer is a single-caller library: one
:class:`~repro.engine.session.Engine` owns the graph and its views, and
whoever holds the engine both writes and reads.  A :class:`Repository`
turns that engine into a *served* store — many concurrent readers, one
writer, with three guarantees:

* **MVCC generation snapshots.**  Every applied batch publishes a new
  *generation* (a monotonically increasing integer).  A
  :class:`ReadSession` pins the generation that is current at admission
  and every read through the session observes exactly that generation —
  never a torn mix of two — even while the write stream keeps applying.
  A generation is retired when its last pinned session closes.
* **Delta-invalidated query cache.**  Query results are cached under the
  key ``(view, query, version)`` where *version* is the generation at
  which the view last changed.  The routed sub-delta the relevance
  filters already compute (:mod:`repro.engine.relevance`) is the
  invalidation signal: a batch bumps the version of — and thereby
  invalidates — exactly the views it was routed to; entries for views
  the batch skipped survive untouched and keep serving hits.
* **Bounded admission.**  Sessions come from a bounded pool with
  lease/timeout semantics: admission blocks up to a timeout when the
  pool is full (:class:`SessionLimitError` is the load-shed signal), and
  a session that outlives its lease expires and can be reaped to make
  room.

How the cache *is* the MVCC version store
-----------------------------------------

The engine's views mutate in place, so an old generation's answers must
be captured before the batch that overwrites them.  The writer does this
lazily and proportionally to the change: before applying a batch it
*previews* the routed fan-out (same relevance filters, same label
resolution, evaluated against the pre-batch graph — see
:meth:`Repository._preview_changed_views`) and, while it still has
exclusive access, computes any registered query of a to-be-changed view
that is not already cached at the view's current version.  After the
batch, those entries are exactly the answers at every generation the
view's new version supersedes — old pinned sessions keep reading them as
cache hits.  Views the batch skips need no freeze: their live state
still *is* their state at every retained generation, so a miss can be
recomputed from the live view under the read lock.  No graph copy, no
view copy, ever.

The preview is conservative-by-construction for every filter shipped
today (filters consult endpoint labels — resolved identically pre- and
post-batch — plus pre-repair view state), and a tripwire enforces it:
if a batch's report shows a changed view the preview missed, the
repository *poisons* itself and every subsequent operation raises
:class:`RepositoryPoisonedError` rather than serving silently wrong
snapshots.  The same poison triggers when the engine is mutated behind
the repository's back (detected via
:meth:`repro.engine.session.Engine.add_apply_listener`).

>>> from repro import DiGraph, Engine, insert
>>> from repro.scc import SCCIndex
>>> engine = Engine(DiGraph(labels={1: "a", 2: "b"}, edges=[(1, 2)]))
>>> _ = engine.register("scc", lambda g, m: SCCIndex(g, meter=m))
>>> repo = Repository(engine)
>>> with repo.session() as reader:
...     before = reader.read("scc", "components")
...     _ = repo.apply([insert(2, 1)])           # writer moves on...
...     after = reader.read("scc", "components")  # ...reader does not
>>> before == after == frozenset({frozenset({1}), frozenset({2})})
True
>>> repo.read_latest("scc", "components")
frozenset({frozenset({1, 2})})
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_right
from collections.abc import Callable, Iterable, Mapping
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Optional, Union

from repro.core.delta import Delta, Update
from repro.engine.relevance import SubscribeAll
from repro.engine.session import AutosnapshotError, Engine, EngineReport
from repro.graph.digraph import Label, Node

__all__ = [
    "CacheStats",
    "ReadSession",
    "Repository",
    "RepositoryPoisonedError",
    "ServingError",
    "SessionClosedError",
    "SessionExpiredError",
    "SessionLimitError",
    "UnknownQueryError",
    "freeze_answer",
]

#: A registered query: a read-only function of one view's live state.
QueryFn = Callable[[Any], Any]

#: Cache-miss sentinel (``None`` is a legal cached answer).
_MISS = object()


class ServingError(RuntimeError):
    """A serving-layer operation is invalid."""


class SessionLimitError(ServingError):
    """The session pool stayed full past the admission timeout.

    This is the repository-level load-shed signal: the caller should
    back off and retry, or surface a retry-after to its own client
    (the asyncio front end does exactly that)."""


class SessionExpiredError(ServingError):
    """The session's lease elapsed before the read."""


class SessionClosedError(ServingError):
    """The session was closed (explicitly, or reaped after expiry)."""


class RepositoryPoisonedError(ServingError):
    """An MVCC invariant was violated; the repository refuses to serve.

    Raised by every subsequent operation once the repository detects
    either an out-of-band engine mutation (an apply/rollback that did
    not go through the repository, observed via the engine's
    publication hook) or a routed batch touching a view the freeze
    preview missed.  Serving provably-wrong snapshots would be worse
    than failing loudly."""


class UnknownQueryError(ServingError):
    """The named view or query is not registered with the repository."""


def freeze_answer(value: Any) -> Any:
    """Recursively convert a query result into an immutable value.

    Sets become frozensets, lists/tuples become tuples, dicts become
    sorted item tuples; scalars pass through.  Cached answers are
    shared between sessions and across threads, so they must not be
    mutable aliases of live view state.

    >>> freeze_answer({1: [2, 3]})
    ((1, (2, 3)),)
    """
    if isinstance(value, (set, frozenset)):
        return frozenset(freeze_answer(item) for item in value)
    if isinstance(value, (list, tuple)):
        return tuple(freeze_answer(item) for item in value)
    if isinstance(value, Mapping):
        return tuple(
            sorted(
                ((key, freeze_answer(item)) for key, item in value.items()),
                key=repr,
            )
        )
    return value


def default_queries(view: Any) -> dict[str, QueryFn]:
    """The standing queries a view exposes, discovered by duck-typing.

    The four paper indexes map to ``roots`` (KWS), ``matches`` (RPQ and
    ISO — a set attribute), and ``components`` (SCC); dataflow views
    (and anything else exposing a callable ``value``) map to ``value``.
    Any view carrying one of those surfaces gets it registered
    automatically by ``Repository(auto_queries=True)``.  Custom queries
    are added with :meth:`Repository.register_query`.
    """
    queries: dict[str, QueryFn] = {}
    if callable(getattr(view, "roots", None)):
        queries["roots"] = lambda v: v.roots()
    if callable(getattr(view, "components", None)):
        queries["components"] = lambda v: v.components()
    if isinstance(getattr(view, "matches", None), (set, frozenset)):
        queries["matches"] = lambda v: v.matches
    if callable(getattr(view, "value", None)):
        queries["value"] = lambda v: v.value()
    return queries


class _RWLock:
    """A writer-preferring readers/writer lock.

    Readers share; the writer excludes everyone.  Once a writer is
    waiting, new readers queue behind it so a steady read load cannot
    starve the write stream — the serving layer's readers either hit
    the cache (no lock at all) or hold the read side only for one
    query computation, so writer latency stays bounded.
    """

    def __init__(self) -> None:
        self._lock = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read(self) -> Iterator[None]:
        """Shared acquisition for the duration of the ``with`` block."""
        with self._lock:
            while self._writer_active or self._writers_waiting:
                self._lock.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._lock:
                self._readers -= 1
                if not self._readers:
                    self._lock.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        """Exclusive acquisition for the duration of the ``with`` block."""
        with self._lock:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._lock.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._lock:
                self._writer_active = False
                self._lock.notify_all()


@dataclass(frozen=True)
class CacheStats:
    """One moment's cache counters (see :meth:`Repository.cache_stats`).

    ``hits``/``misses`` count reads served from / past the cache;
    ``frozen`` counts entries the writer computed pre-batch to preserve
    a retained generation; ``invalidations`` counts view-version bumps
    (each one retires the view's current-version keys from future
    reads); ``evicted`` counts entries dropped because no retained
    generation can reach them any more; ``entries`` is the current
    resident count."""

    hits: int = 0
    misses: int = 0
    frozen: int = 0
    invalidations: int = 0
    evicted: int = 0
    entries: int = 0


class ReadSession:
    """One admitted reader, pinned to a single published generation.

    Sessions are created by :meth:`Repository.session` (never directly)
    and are context managers — ``with repo.session() as s: s.read(...)``.
    Every ``read`` observes the pinned generation: views the write
    stream has since moved resolve to answers the writer froze, views
    it has not are read live.  A session holds a pool slot until closed
    (or until its lease expires and the pool reaps it), so hold
    sessions for a request, not for a process lifetime.
    """

    def __init__(
        self,
        repository: "Repository",
        session_id: int,
        generation: int,
        expires_at: Optional[float],
    ) -> None:
        self._repository = repository
        self._id = session_id
        self._generation = generation
        self._expires_at = expires_at
        self._closed = False
        self._expired = False

    @property
    def session_id(self) -> int:
        """The pool-assigned identity (stable for the session's life)."""
        return self._id

    @property
    def generation(self) -> int:
        """The generation every read through this session observes."""
        return self._generation

    @property
    def closed(self) -> bool:
        """Has the session been closed (or reaped)?"""
        return self._closed

    def read(self, view: str, query: str) -> Any:
        """The named query's answer at the pinned generation.

        Raises :class:`SessionClosedError` / :class:`SessionExpiredError`
        when the lease ran out, :class:`UnknownQueryError` for names the
        repository does not serve."""
        return self._repository._session_read(self, view, query)

    def renew(self) -> None:
        """Extend the lease by the repository's configured duration."""
        self._repository._renew_session(self)

    def close(self) -> None:
        """Release the pool slot and un-pin the generation (idempotent).

        Closing the last session pinned to an old generation retires
        that generation: cache entries only it could reach are
        evicted."""
        self._repository._close_session(self)

    def __enter__(self) -> "ReadSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class Repository:
    """A served engine: one write stream, many MVCC read sessions.

    ``engine`` must already hold its registered views (lazy views are
    materialized at admission time so concurrent readers never race a
    factory).  With ``auto_queries=True`` every view's duck-typed
    standing queries (:func:`default_queries`) are registered; add more
    with :meth:`register_query` *before* readers depend on them — a
    query registered while old generations are pinned can only be
    served at generations its view has not moved past.

    Constructor knobs:

    * ``max_sessions`` — pool bound; admission past it blocks.
    * ``admission_timeout`` — default seconds :meth:`session` waits for
      a slot before raising :class:`SessionLimitError`.
    * ``session_lease`` — seconds a session may live before it expires
      (``None`` = no lease).  Expired sessions are reaped when the pool
      needs room.
    * ``cache`` — ``False`` disables the query cache *and therefore
      MVCC for changed views* (every read recomputes live at the
      current generation); exists for the serving benchmark's
      cached-vs-uncached comparison and for debugging, not production.
    * ``clock`` — monotonic time source (injectable for lease tests).
    """

    def __init__(
        self,
        engine: Engine,
        max_sessions: int = 64,
        admission_timeout: float = 5.0,
        session_lease: Optional[float] = None,
        auto_queries: bool = True,
        cache: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_sessions < 1:
            raise ServingError("max_sessions must be at least 1")
        self.engine = engine
        self._max_sessions = max_sessions
        self._admission_timeout = admission_timeout
        self._session_lease = session_lease
        self._cache_enabled = cache
        self._clock = clock
        #: Engine lock: readers share it to compute live answers, the
        #: write stream takes it exclusively for freeze+apply+publish.
        self._engine_lock = _RWLock()
        #: Metadata lock: generation table, version lists, cache,
        #: session registry, stats.  Never held while waiting on the
        #: engine lock (engine outer, meta inner).
        self._meta_lock = threading.RLock()
        self._pool_lock = threading.Condition(self._meta_lock)
        self._generation = 0
        #: generation -> open sessions pinned to it.
        self._pins: dict[int, int] = {}
        #: view -> ascending generations at which the view changed
        #: (0 = admission state).  ``_version(view, g)`` resolves reads.
        self._changes: dict[str, list[int]] = {}
        #: (view, query, version) -> frozen answer.
        self._cache: dict[tuple[str, str, int], Any] = {}
        self._queries: dict[str, dict[str, QueryFn]] = {}
        self._sessions: dict[int, ReadSession] = {}
        self._reserved = 0
        self._next_session_id = 1
        self._stats = CacheStats()
        self._poisoned: Optional[str] = None
        self._closed = False
        self._applying = False
        # Group-commit durability tracking (format v4): when the
        # engine's journal batches appends into windows, a published
        # generation is *visible* immediately but *durable* only once
        # its window seals.  The journal must already be attached
        # (SnapshotStore.attach) when the repository is built.
        journal = getattr(engine, "journal", None)
        self._window_log = (
            journal if hasattr(journal, "add_seal_listener") else None
        )
        self._durable_seq = 0
        self._durable_generation = 0
        #: (seq, generation) publishes awaiting their window's seal.
        self._published_pending: list[tuple[int, int]] = []
        if self._window_log is not None:
            self._window_log.add_seal_listener(self._on_window_seal)
        for name in engine.names():
            engine.view(name)  # materialize lazy views before threads
            self._changes[name] = [0]
            self._queries[name] = (
                default_queries(engine.view(name)) if auto_queries else {}
            )
        engine.add_apply_listener(self._on_engine_publication)

    # ------------------------------------------------------------------
    # Query registry
    # ------------------------------------------------------------------

    def register_query(self, view: str, query: str, fn: QueryFn) -> None:
        """Register ``fn(view_object) -> answer`` as a standing query.

        The function must be read-only and its result is passed through
        :func:`freeze_answer` before caching, so it may return live
        sets/dicts.  Register queries at startup: the writer freezes
        *registered* queries when it overwrites a pinned generation, so
        a query added later cannot be served at generations whose view
        state is already gone."""
        if view not in self._changes:
            raise UnknownQueryError(f"no view named {view!r} is served")
        with self._meta_lock:
            self._queries[view][query] = fn

    def queries(self) -> dict[str, tuple[str, ...]]:
        """The served surface: view name -> registered query names."""
        with self._meta_lock:
            return {
                view: tuple(sorted(table)) for view, table in self._queries.items()
            }

    # ------------------------------------------------------------------
    # Admission: the bounded session pool
    # ------------------------------------------------------------------

    def session(self, timeout: Optional[float] = None) -> ReadSession:
        """Admit a reader: block for a pool slot, pin the current
        generation, return the :class:`ReadSession`.

        ``timeout`` (default: the constructor's ``admission_timeout``)
        bounds the wait for a slot; exhaustion raises
        :class:`SessionLimitError` — the signal to shed load.  A read
        admitted after batch *k* published always observes generation
        ≥ *k* (admission orders after any in-flight write)."""
        if timeout is None:
            timeout = self._admission_timeout
        deadline = self._clock() + timeout
        with self._pool_lock:
            while True:
                self._check_serving_locked()
                self._reap_expired_locked()
                if len(self._sessions) + self._reserved < self._max_sessions:
                    self._reserved += 1
                    break
                remaining = deadline - self._clock()
                if remaining <= 0:
                    raise SessionLimitError(
                        f"session pool is full ({self._max_sessions} leases) "
                        f"and no slot freed within {timeout:.3f}s; retry later"
                    )
                self._pool_lock.wait(remaining)
        try:
            # The read lock orders admission after any in-flight write:
            # the generation pinned is always fully published, and the
            # writer's freeze decision has seen this session — or will
            # run entirely after it is registered.
            with self._engine_lock.read():
                with self._meta_lock:
                    self._check_serving_locked()
                    session = ReadSession(
                        self,
                        self._next_session_id,
                        self._generation,
                        None
                        if self._session_lease is None
                        else self._clock() + self._session_lease,
                    )
                    self._next_session_id += 1
                    self._sessions[session.session_id] = session
                    self._pins[session.generation] = (
                        self._pins.get(session.generation, 0) + 1
                    )
        finally:
            with self._meta_lock:
                self._reserved -= 1
        return session

    def _reap_expired_locked(self) -> None:
        """Force-close sessions whose lease elapsed (meta lock held)."""
        now = self._clock()
        for session in list(self._sessions.values()):
            if session._expires_at is not None and session._expires_at <= now:
                session._expired = True
                self._retire_session_locked(session)

    def _renew_session(self, session: ReadSession) -> None:
        with self._meta_lock:
            self._check_session_locked(session)
            if self._session_lease is not None:
                session._expires_at = self._clock() + self._session_lease

    def _close_session(self, session: ReadSession) -> None:
        with self._meta_lock:
            if session._closed:
                return
            self._retire_session_locked(session)

    def _retire_session_locked(self, session: ReadSession) -> None:
        session._closed = True
        self._sessions.pop(session.session_id, None)
        remaining = self._pins.get(session.generation, 0) - 1
        if remaining > 0:
            self._pins[session.generation] = remaining
        else:
            self._pins.pop(session.generation, None)
            self._evict_unreachable_locked()
        self._pool_lock.notify_all()

    @property
    def open_sessions(self) -> int:
        """Currently admitted (unexpired, unclosed) session count."""
        with self._meta_lock:
            return len(self._sessions)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    @property
    def generation(self) -> int:
        """The newest published generation (0 before any write)."""
        with self._meta_lock:
            return self._generation

    @property
    def durable_generation(self) -> int:
        """The newest published generation whose journal entry is
        durable.  Without a windowed journal this always equals
        :attr:`generation`; under group-commit windows (format v4) it
        trails by up to one window until the window auto-seals or
        :meth:`flush` is called.  Reads are unaffected — MVCC
        visibility is per-batch; this is the durability acknowledgment
        a client needs before treating an applied batch as
        crash-survivable."""
        with self._meta_lock:
            return self._durable_generation

    def flush(self) -> int:
        """Durability barrier: seal the journal's open group-commit
        window (no-op without one) so every published generation is
        durable; returns the durable generation, which now equals
        :attr:`generation`.  Raises whatever the seal raises — in that
        case the window is torn and nothing new became durable."""
        with self._engine_lock.write():
            with self._meta_lock:
                self._check_serving_locked()
            log = self._window_log
            if log is not None:
                log.flush()
            with self._meta_lock:
                # the seal listener already drained the pending list;
                # anything left had no seal to wait for
                self._published_pending.clear()
                self._durable_generation = self._generation
                return self._durable_generation

    def read_latest(self, view: str, query: str) -> Any:
        """One-shot read at the current generation, outside any session.

        Holds the read side of the engine lock across resolve+compute,
        so the answer is one consistent generation's — but unlike a
        session there is no pin: two consecutive ``read_latest`` calls
        may observe different generations."""
        with self._engine_lock.read():
            with self._meta_lock:
                generation = self._generation
            return self._read_at(view, query, generation, under_read_lock=True)

    def _session_read(self, session: ReadSession, view: str, query: str) -> Any:
        with self._meta_lock:
            self._check_session_locked(session)
        return self._read_at(view, query, session.generation, under_read_lock=False)

    def _check_session_locked(self, session: ReadSession) -> None:
        self._check_serving_locked()
        if session._expired:
            raise SessionExpiredError(
                f"session {session.session_id} outlived its lease of "
                f"{self._session_lease}s; admit a new session"
            )
        if session._closed:
            raise SessionClosedError(
                f"session {session.session_id} is closed"
            )
        if session._expires_at is not None and session._expires_at <= self._clock():
            session._expired = True
            self._retire_session_locked(session)
            raise SessionExpiredError(
                f"session {session.session_id} outlived its lease of "
                f"{self._session_lease}s; admit a new session"
            )

    def _query_fn(self, view: str, query: str) -> QueryFn:
        table = self._queries.get(view)
        if table is None:
            raise UnknownQueryError(f"no view named {view!r} is served")
        fn = table.get(query)
        if fn is None:
            raise UnknownQueryError(
                f"view {view!r} has no registered query {query!r} "
                f"(registered: {sorted(table) or 'none'})"
            )
        return fn

    def _version(self, view: str, generation: int) -> int:
        """The generation at which ``view`` last changed at or before
        ``generation`` — the cache key component (meta lock held)."""
        changes = self._changes[view]
        return changes[bisect_right(changes, generation) - 1]

    def _read_at(
        self, view: str, query: str, generation: int, under_read_lock: bool
    ) -> Any:
        fn = self._query_fn(view, query)
        with self._meta_lock:
            self._check_serving_locked()
            version = self._version(view, generation)
            if self._cache_enabled:
                answer = self._cache.get((view, query, version), _MISS)
                if answer is not _MISS:
                    self._stats = CacheStats(
                        hits=self._stats.hits + 1,
                        misses=self._stats.misses,
                        frozen=self._stats.frozen,
                        invalidations=self._stats.invalidations,
                        evicted=self._stats.evicted,
                        entries=len(self._cache),
                    )
                    return answer
        if under_read_lock:
            return self._compute_live(view, query, fn, version)
        with self._engine_lock.read():
            return self._compute_live(view, query, fn, version)

    def _compute_live(
        self, view: str, query: str, fn: QueryFn, version: int
    ) -> Any:
        """Compute a missed answer from the live view (read lock held).

        Re-checks the cache first: the writer may have frozen the entry
        while this reader was between locks.  If the view's version has
        moved past ``version`` and no frozen entry exists, the snapshot
        is unservable — with the cache enabled that is an invariant
        breach (the freeze always runs before the version bump for
        pinned generations), reported as poison rather than served
        wrong."""
        key = (view, query, version)
        with self._meta_lock:
            self._check_serving_locked()
            if self._cache_enabled:
                answer = self._cache.get(key, _MISS)
                if answer is not _MISS:
                    self._stats = CacheStats(
                        hits=self._stats.hits + 1,
                        misses=self._stats.misses,
                        frozen=self._stats.frozen,
                        invalidations=self._stats.invalidations,
                        evicted=self._stats.evicted,
                        entries=len(self._cache),
                    )
                    return answer
            current = self._changes[view][-1]
        if version != current:
            if self._cache_enabled:
                self._poison(
                    f"read of view {view!r} query {query!r} at version "
                    f"{version} found neither a frozen entry nor live state "
                    f"(view is at version {current}) — the freeze preview "
                    "missed a change or a query was registered after the "
                    "generation it is being read at"
                )
            raise ServingError(
                f"view {view!r} moved to version {current} and the cache is "
                f"disabled; reads at pinned generation/version {version} "
                "cannot be served (cache=False forfeits MVCC for changed "
                "views)"
            )
        answer = freeze_answer(fn(self.engine.view(view)))
        with self._meta_lock:
            if self._cache_enabled:
                self._cache[key] = answer
            self._stats = CacheStats(
                hits=self._stats.hits,
                misses=self._stats.misses + 1,
                frozen=self._stats.frozen,
                invalidations=self._stats.invalidations,
                evicted=self._stats.evicted,
                entries=len(self._cache),
            )
        return answer

    # ------------------------------------------------------------------
    # The write stream
    # ------------------------------------------------------------------

    def apply(self, delta: Union[Delta, Iterable[Update]]) -> EngineReport:
        """Apply one batch through the engine and publish the next
        generation.

        The whole operation holds the write side of the engine lock:
        freeze answers for views the routed preview says the batch will
        touch (only those some open session still pins), run
        ``engine.apply`` (journaling, auto-snapshotting, and fan-out
        exactly as a direct call would), then publish — bump the
        generation, bump the version of every view the report says
        changed, and evict cache entries no retained generation can
        reach.  An :class:`~repro.engine.session.AutosnapshotError`
        still publishes (the batch *is* applied) before propagating."""
        if not isinstance(delta, Delta):
            delta = Delta(list(delta))
        if not delta.is_normalized():
            delta = delta.normalized()
        with self._engine_lock.write():
            self._prepare_write(delta)
            self._applying = True
            try:
                report = self.engine.apply(delta)
            except AutosnapshotError as error:
                self._publish_locked(error.report)
                raise
            finally:
                self._applying = False
            self._publish_locked(report)
        return report

    def rollback(self, checkpoint: int = 0) -> EngineReport:
        """Roll the engine back to ``checkpoint`` and publish the undo
        as a new generation (MVCC time moves forward even when graph
        time moves back — pinned sessions keep their snapshots)."""
        with self._engine_lock.write():
            undo = self.engine.pending_undo(checkpoint)
            self._prepare_write(undo)
            self._applying = True
            try:
                report = self.engine.rollback(checkpoint)
            finally:
                self._applying = False
            self._publish_locked(report)
        return report

    def checkpoint(self) -> int:
        """The engine's current rollback mark (see
        :meth:`repro.engine.session.Engine.checkpoint`)."""
        with self._engine_lock.read():
            return self.engine.checkpoint()

    def bulk_load(
        self, edges: Union[Delta, Iterable[Any]]
    ) -> EngineReport:
        """Bulk-import ``edges`` and publish the import as *one*
        generation.

        Delegates to :meth:`repro.engine.session.Engine.bulk_load`:
        view maintenance is suspended while the edges stream into the
        graph and every view is rebuilt once at the end, so the rebuild
        cost is paid per view, not per edge.  Every view's registered
        queries are frozen first (a rebuild changes every view, so the
        conservative preview is *all* of them), which keeps pinned
        sessions reading their admitted generation throughout — readers
        admitted before the import never see a partially-loaded graph,
        readers admitted after it see the whole import or none of it."""
        with self._engine_lock.write():
            with self._meta_lock:
                self._check_serving_locked()
                pinned = bool(self._pins)
            if pinned and self._cache_enabled:
                self._freeze_views(self.engine.names())
            self._applying = True
            try:
                report = self.engine.bulk_load(edges)
            except AutosnapshotError as error:
                self._publish_locked(error.report)
                raise
            finally:
                self._applying = False
            self._publish_locked(report)
        return report

    def split_shard(
        self, store: Any, parent: int, boundary: Optional[Any] = None
    ) -> Any:
        """Split shard ``parent`` of the served engine's store online.

        Delegates to :meth:`repro.persist.SnapshotStore.split_shard`
        under the write side of the engine lock: readers drain, the
        split migrates the sub-graph and commits (or rolls back whole),
        then readers resume.  No generation is published and no view
        version moves — a split relocates state without changing any
        answer, so open sessions keep their pins and the cache keeps
        every entry.  Returns the new shard map."""
        with self._engine_lock.write():
            with self._meta_lock:
                self._check_serving_locked()
            self._applying = True
            try:
                return store.split_shard(self.engine, parent, boundary)
            finally:
                self._applying = False

    def _prepare_write(self, delta: Delta) -> None:
        """Freeze what the batch will overwrite (write lock held)."""
        with self._meta_lock:
            self._check_serving_locked()
            pinned = bool(self._pins)
        if not pinned or not self._cache_enabled:
            return
        self._freeze_views(self._preview_changed_views(delta))

    def _freeze_views(self, names: Iterable[str]) -> None:
        """Freeze every registered query of ``names`` at the views'
        current versions (write lock held, pins + cache checked by the
        caller)."""
        for name in names:
            with self._meta_lock:
                version = self._changes[name][-1]
                missing = [
                    (query, fn)
                    for query, fn in self._queries.get(name, {}).items()
                    if (name, query, version) not in self._cache
                ]
            for query, fn in missing:
                answer = freeze_answer(fn(self.engine.view(name)))
                with self._meta_lock:
                    self._cache[(name, query, version)] = answer
                    self._stats = CacheStats(
                        hits=self._stats.hits,
                        misses=self._stats.misses,
                        frozen=self._stats.frozen + 1,
                        invalidations=self._stats.invalidations,
                        evicted=self._stats.evicted,
                        entries=len(self._cache),
                    )

    def _preview_changed_views(self, delta: Delta) -> frozenset[str]:
        """The views the routed fan-out *may* deliver this batch to,
        decided before the graph mutates.

        Replicates the scheduler's skip decision exactly for every
        filter that consults only endpoint labels and pre-repair view
        state (all shipped filters do): labels of existing endpoints
        read from the pre-batch graph — updates never relabel — and
        labels of batch-new endpoints from their first declaring
        insertion, which is the label ``DiGraph.add_edge`` will stamp.
        Conservative supersets are sound (an extra freeze is just a
        warm cache entry); *missing* a changed view is what the
        publish-time tripwire poisons on."""
        graph = self.engine.graph
        new_labels: dict[Node, Label] = {}
        for update in delta:
            if not update.is_insert:
                continue
            for node, label in (
                (update.source, update.source_label),
                (update.target, update.target_label),
            ):
                if node not in graph and node not in new_labels:
                    new_labels[node] = label

        def label_of(node: Node) -> Label:
            if node in new_labels:
                return new_labels[node]
            return graph.label(node)

        broadcast_changes = bool(delta) or bool(new_labels)
        changed: set[str] = set()
        for name in self.engine.names():
            flt = self.engine.relevance_filter(name)
            if (
                not self.engine.routing
                or flt is None
                or isinstance(flt, SubscribeAll)
            ):
                if broadcast_changes:
                    changed.add(name)
                continue
            if any(
                flt.wants_update(
                    update, label_of(update.source), label_of(update.target)
                )
                for update in delta
            ):
                changed.add(name)
            elif any(
                flt.wants_node(node, label) for node, label in new_labels.items()
            ):
                changed.add(name)
        return frozenset(changed)

    def _publish_locked(self, report: EngineReport) -> None:
        """Advance the generation from a fan-out report (write lock
        held): version-bump changed views, evict unreachable entries."""
        changed = [
            name for name, view_report in report.views.items() if view_report.changed
        ]
        with self._meta_lock:
            self._generation += 1
            for name in changed:
                versions = self._changes.setdefault(name, [0])
                if self._pins and self._cache_enabled:
                    version = versions[-1]
                    missing = [
                        query
                        for query in self._queries.get(name, {})
                        if (name, query, version) not in self._cache
                    ]
                    if missing:
                        self._poison_locked(
                            f"batch changed view {name!r} but queries "
                            f"{sorted(missing)!r} were not frozen for pinned "
                            "generations — the routed preview and the "
                            "fan-out disagree"
                        )
                versions.append(self._generation)
                self._stats = CacheStats(
                    hits=self._stats.hits,
                    misses=self._stats.misses,
                    frozen=self._stats.frozen,
                    invalidations=self._stats.invalidations + 1,
                    evicted=self._stats.evicted,
                    entries=len(self._cache),
                )
            self._note_durability_locked(report)
            self._evict_unreachable_locked()

    def _note_durability_locked(self, report: EngineReport) -> None:
        """Classify the just-published generation as durable now or
        pending its window's seal (meta lock held).

        Three cases: no windowed journal / no journal entry → the
        append (if any) fsynced synchronously, durable now; the batch's
        seq already covered by a seal → durable now (the window
        auto-sealed *during* the apply, before this publish); the seq
        sits in the still-open window → pending until
        :meth:`_on_window_seal` or :meth:`flush`."""
        seq = getattr(report, "seq", None)
        log = self._window_log
        if log is None or seq is None or seq <= self._durable_seq:
            self._durable_generation = self._generation
            return
        if seq in log.open_window_seqs():
            self._published_pending.append((seq, self._generation))
        else:
            # windows were not in effect for this append (window mode
            # is per-strategy): it fsynced on its own
            self._durable_seq = max(self._durable_seq, seq)
            self._durable_generation = self._generation

    def _on_window_seal(self, window: int, seqs: tuple[int, ...]) -> None:
        """Journal seal listener: every seq the window covered is now
        durable, so the generations published for them are too."""
        with self._meta_lock:
            if self._closed:
                return
            if seqs:
                self._durable_seq = max(self._durable_seq, max(seqs))
            while (
                self._published_pending
                and self._published_pending[0][0] <= self._durable_seq
            ):
                _, generation = self._published_pending.pop(0)
                self._durable_generation = max(
                    self._durable_generation, generation
                )

    def _retained_generations_locked(self) -> list[int]:
        return sorted(set(self._pins) | {self._generation})

    def _evict_unreachable_locked(self) -> None:
        """Drop cache entries and version history no retained
        generation (a pinned one, or the current one) resolves to."""
        retained = self._retained_generations_locked()
        needed: dict[str, set[int]] = {}
        for view, versions in self._changes.items():
            keep = {
                versions[bisect_right(versions, generation) - 1]
                for generation in retained
            }
            needed[view] = keep
            floor = min(keep)
            index = versions.index(floor)
            if index:
                del versions[:index]
        doomed = [
            key for key in self._cache if key[2] not in needed.get(key[0], ())
        ]
        for key in doomed:
            del self._cache[key]
        if doomed:
            self._stats = CacheStats(
                hits=self._stats.hits,
                misses=self._stats.misses,
                frozen=self._stats.frozen,
                invalidations=self._stats.invalidations,
                evicted=self._stats.evicted + len(doomed),
                entries=len(self._cache),
            )

    # ------------------------------------------------------------------
    # Health: poison tripwires, stats, lifecycle
    # ------------------------------------------------------------------

    def _on_engine_publication(self, report: EngineReport) -> None:
        """Engine publication hook: any fan-out the repository did not
        initiate means a caller mutated the engine behind the serving
        layer — pinned snapshots can no longer be trusted."""
        if self._applying:
            return
        with self._meta_lock:
            if self._closed:
                return
            self._poisoned = (
                "the engine was mutated outside Repository.apply/rollback "
                f"(out-of-band batch of {len(report.delta)} update(s)); "
                "pinned generations can no longer be served"
            )

    def _poison(self, reason: str) -> None:
        with self._meta_lock:
            self._poison_locked(reason)

    def _poison_locked(self, reason: str) -> None:
        if self._poisoned is None:
            self._poisoned = reason
        raise RepositoryPoisonedError(self._poisoned)

    def _check_serving_locked(self) -> None:
        if self._poisoned is not None:
            raise RepositoryPoisonedError(self._poisoned)
        if self._closed:
            raise ServingError("the repository is closed")

    @property
    def poisoned(self) -> Optional[str]:
        """The poison reason, or ``None`` while the repository is
        healthy."""
        with self._meta_lock:
            return self._poisoned

    def cache_stats(self) -> CacheStats:
        """A consistent snapshot of the cache counters."""
        with self._meta_lock:
            return self._stats

    def stats(self) -> dict[str, Any]:
        """Operational snapshot for monitoring and the wire ``stats``
        op: generation, session occupancy, cache counters."""
        with self._meta_lock:
            return {
                "generation": self._generation,
                "durable_generation": self._durable_generation,
                "open_sessions": len(self._sessions),
                "max_sessions": self._max_sessions,
                "pinned_generations": sorted(self._pins),
                "poisoned": self._poisoned,
                "cache": {
                    "hits": self._stats.hits,
                    "misses": self._stats.misses,
                    "frozen": self._stats.frozen,
                    "invalidations": self._stats.invalidations,
                    "evicted": self._stats.evicted,
                    "entries": len(self._cache),
                },
            }

    def close(self) -> None:
        """Stop serving: close every session, detach the publication
        hook, and reject subsequent operations (idempotent).  The
        underlying engine is untouched and may keep being used
        directly."""
        self.engine.remove_apply_listener(self._on_engine_publication)
        if self._window_log is not None and hasattr(
            self._window_log, "remove_seal_listener"
        ):
            self._window_log.remove_seal_listener(self._on_window_seal)
        with self._meta_lock:
            if self._closed:
                return
            self._closed = True
            for session in list(self._sessions.values()):
                session._closed = True
            self._sessions.clear()
            self._pins.clear()
            self._cache.clear()
            self._pool_lock.notify_all()

    def __enter__(self) -> "Repository":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    @classmethod
    def recover(cls, store: Any, **kwargs: Any) -> "Repository":
        """Serve a persisted session: ``store.load()`` (a
        :class:`repro.persist.SnapshotStore`) rebuilds the engine —
        snapshot restore plus routed log-tail replay — and the
        repository starts a fresh serving epoch (generation 0) on top.
        Serving generations are *not* persistent identities; the log
        seq (``EngineReport.seq``) is."""
        return cls(store.load(), **kwargs)

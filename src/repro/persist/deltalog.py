"""Append-only write-ahead log of applied batch updates.

Every batch an :class:`~repro.engine.session.Engine` successfully fans
out is appended as one *log entry*::

    %batch <seq>
    + <source> <target> <source_label> <target_label>
    - <source> <target>
    %commit

``seq`` is a strictly increasing integer; the update records are exactly
the lines of :func:`repro.graph.io.write_delta`.  The ``%commit``
trailer is the durability marker: :meth:`DeltaLog.append` flushes and
fsyncs after writing it, and :meth:`DeltaLog.entries` treats any entry
whose ``%commit`` never made it to disk (a torn tail from a crash
mid-append) as not written — the batch it described was also never
acknowledged, so dropping it is the correct recovery.

Replaying the committed entries, in order, over the graph they started
from reproduces the session state; :class:`repro.persist.SnapshotStore`
pairs this log with periodic snapshots so only the tail after the last
snapshot is ever replayed.  A compacted log carries a ``%truncated
<seq>`` watermark recording the seqs that were committed and then
dropped (preceded by any snapshot-covered entries a lagging view's
relevance filter still retains), so sequence allocation and recovery
stay correct across processes.

Example::

    >>> import tempfile, pathlib
    >>> from repro.core.delta import Delta, insert
    >>> root = pathlib.Path(tempfile.mkdtemp())
    >>> log = DeltaLog(root / "deltas.log")
    >>> log.append(Delta([insert(1, 2, "a", "b")]))
    1
    >>> log.append(Delta([insert(2, 3)]))
    2
    >>> [(entry.seq, len(entry.delta)) for entry in log.entries()]
    [(1, 1), (2, 1)]
    >>> [len(entry.delta) for entry in log.entries(after=1)]
    [1]
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Union

from repro.core.delta import Delta
from repro.graph.io import update_from_fields, update_to_line
from repro.persist.format import (
    PersistFormatError,
    is_directive,
    parse_directive,
    parse_record,
    render_directive,
)

PathLike = Union[str, Path]

__all__ = ["DeltaLog", "LogEntry", "fsync_directory"]


def _directive_seq(line: str) -> int | None:
    """The integer seq operand of a stripped directive line, or ``None``
    when the line is torn/malformed — the one parsing rule every log
    scan (:meth:`DeltaLog._scan_max_seq`, :meth:`DeltaLog.last_seq`,
    :meth:`DeltaLog._scan_floor`) shares."""
    try:
        _, operands = parse_directive(line)
        return int(operands[0])
    except (ValueError, IndexError, TypeError):
        return None


def fsync_directory(directory: Path) -> None:
    """Flush a directory's entry table, making renames/creations inside
    it durable.  Best-effort on platforms whose directories cannot be
    opened or fsynced (e.g. Windows)."""
    try:
        handle = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(handle)
    except OSError:
        pass
    finally:
        os.close(handle)


@dataclass(frozen=True)
class LogEntry:
    """One committed batch: its sequence number and the batch itself."""

    seq: int
    delta: Delta


def _net_cancel_window(
    entries: list[LogEntry], after: int, graph_nodes
) -> list[LogEntry]:
    """Collapse opposing update runs per edge across the survivor window.

    Operates only on entries with ``seq > after`` (entries at or below
    the floor retained for lagging views are replayed verbatim).  For
    each edge, the window's updates alternate insert/delete (any
    committed sequence was applicable); an even-length run cancels
    entirely and an odd-length run keeps only its final update — the net
    effect on the graph is unchanged, every intermediate batch stays
    individually applicable (no other update touches the edge between
    cancelled neighbors), and each view's answer after replay still
    equals Q(final graph) because absorb is confluent.

    Cancelling an *insert* additionally requires both endpoints to
    predate the window: an insert that introduced a node leaves that
    node behind in the live graph even after the edge is deleted, so
    dropping it would lose the node on replay.  ``graph_nodes`` is the
    witness set — the nodes known to exist at the window start (the
    compaction floor).
    """
    ops: dict[tuple, list[tuple[int, int]]] = {}
    for entry_index, entry in enumerate(entries):
        if entry.seq <= after:
            continue
        for update_index, update in enumerate(entry.delta):
            ops.setdefault(update.edge, []).append((entry_index, update_index))
    pre_window = set(graph_nodes)
    dropped: set[tuple[int, int]] = set()
    for edge, positions in ops.items():
        if len(positions) < 2:
            continue
        updates = [entries[ei].delta[ui] for ei, ui in positions]
        if any(
            first.kind == second.kind
            for first, second in zip(updates, updates[1:])
        ):
            continue  # non-alternating run: corrupt or exotic — keep all
        candidates = positions[:-1] if len(positions) % 2 else positions
        candidate_updates = updates[:-1] if len(positions) % 2 else updates
        if any(
            update.is_insert
            and not (update.source in pre_window and update.target in pre_window)
            for update in candidate_updates
        ):
            continue  # cancelling would lose a window-introduced node
        dropped.update(candidates)
    if not dropped:
        return entries
    result: list[LogEntry] = []
    for entry_index, entry in enumerate(entries):
        if entry.seq <= after:
            result.append(entry)
            continue
        survivors = [
            update
            for update_index, update in enumerate(entry.delta)
            if (entry_index, update_index) not in dropped
        ]
        # an emptied entry keeps its frame: the seq stays spoken for
        result.append(LogEntry(entry.seq, Delta(survivors)))
    return result


class DeltaLog:
    """Append-only batch-update log at a fixed path.

    The file need not exist yet; the first :meth:`append` creates it.
    Instances hold no open file handle — every operation opens, works,
    and closes, so a log object is cheap and safe to share between a
    journaling engine and a :class:`~repro.persist.snapshot.
    SnapshotStore` reading it back.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._next_seq: int | None = None  # lazily derived from the file
        self._tail_known_clean = False  # our own appends end in "\n"

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def append(self, delta: Delta) -> int:
        """Durably append one batch; returns its sequence number.

        The whole entry is rendered in memory *before* the file is
        touched, so a batch that cannot be serialized (non-int/str
        labels) raises without leaving a torn entry on disk.  If a
        previous crash left the file without a trailing newline, one is
        prepended so the torn fragment cannot glue onto this entry's
        ``%batch`` line.  The entry is flushed and fsynced before
        returning, so once the caller sees the seq, recovery will
        replay the batch.
        """
        seq = self._allocate_seq()
        entry = "".join(
            [render_directive("batch", seq)]
            + [update_to_line(update) for update in delta]
            + [render_directive("commit")]
        )
        created = not self.path.exists()
        if self._missing_trailing_newline():
            entry = "\n" + entry
        with open(self.path, "a", encoding="utf-8") as stream:
            stream.write(entry)
            stream.flush()
            os.fsync(stream.fileno())
        if created:
            fsync_directory(self.path.parent)  # the file's name itself
        self._next_seq = seq + 1
        return seq

    def _missing_trailing_newline(self) -> bool:
        """Probe the last byte — but only before this object's first
        append; our own entries always end in a newline, so afterwards
        the probe would be dead work on the per-batch hot path."""
        if self._tail_known_clean:
            return False
        self._tail_known_clean = True
        try:
            with open(self.path, "rb") as stream:
                stream.seek(0, os.SEEK_END)
                if stream.tell() == 0:
                    return False
                stream.seek(-1, os.SEEK_END)
                return stream.read(1) != b"\n"
        except FileNotFoundError:
            return False

    def _allocate_seq(self) -> int:
        if self._next_seq is None:
            self._next_seq = self._scan_max_seq() + 1
        return self._next_seq

    def _scan_max_seq(self) -> int:
        """Highest seq *mentioned* in the file — committed, torn, or
        recorded by a ``%truncated`` compaction floor — so a reused log
        never hands out a seq twice."""
        highest = 0
        if not self.path.exists():
            return highest
        with open(self.path, "r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if line.startswith(("%batch", "%truncated")):
                    seq = _directive_seq(line)
                    if seq is not None:  # torn mid-line; entries() reports it
                        highest = max(highest, seq)
        return highest

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def entries(self, after: int = 0) -> list[LogEntry]:
        """All committed entries with ``seq > after``, in log order.

        The reading rule: **committed content must parse; everything
        outside intact** ``%batch`` .. ``%commit`` **framing is torn
        debris.**  A crash mid-append (whether at end-of-file or mid-file
        before a healed-over later append) leaves an entry *prefix* —
        ``%batch`` line possibly truncated, records possibly truncated,
        ``%commit`` missing — and every such fragment is skipped: its
        batch was never acknowledged as applied.  A ``%commit`` whose
        entry failed to parse, by contrast, is structural corruption of
        *acknowledged* data and raises :class:`PersistFormatError` —
        errors must never pass silently.

        Entries with ``seq <= after`` are skipped at the framing level —
        their records are not tokenized or materialized — so recovery
        read cost is sized by the tail, not the whole uncompacted log.
        """
        result: list[LogEntry] = []
        if not self.path.exists():
            return result
        source = str(self.path)
        open_seq: int | None = None
        open_updates: list = []
        poisoned = False  # inside a torn fragment, awaiting the next %batch
        previous_seq = 0
        with open(self.path, "r", encoding="utf-8") as stream:
            for line_number, raw in enumerate(stream, start=1):
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                if is_directive(line):
                    try:
                        keyword, operands = parse_directive(line)
                    except ValueError:
                        open_seq = None  # torn mid-directive
                        poisoned = True
                        continue
                    if keyword == "batch":
                        if len(operands) != 1 or not isinstance(operands[0], int):
                            open_seq = None  # "%batch" torn before its seq
                            poisoned = True
                            continue
                        # an open entry at this point was never committed
                        open_seq = operands[0]
                        open_updates = []
                        poisoned = False
                        if open_seq <= previous_seq:
                            raise PersistFormatError(
                                source,
                                line_number,
                                f"seq {open_seq} does not increase over {previous_seq}",
                            )
                    elif keyword == "commit":
                        if poisoned or open_seq is None:
                            raise PersistFormatError(
                                source,
                                line_number,
                                "%commit closes an entry that did not parse — "
                                "corrupt committed data",
                            )
                        previous_seq = open_seq
                        if open_seq > after:
                            result.append(LogEntry(open_seq, Delta(open_updates)))
                        open_seq = None
                        open_updates = []
                    elif keyword == "truncated":
                        # compaction floor: entries <= this seq were
                        # committed and then compacted away.
                        if len(operands) != 1 or not isinstance(operands[0], int):
                            raise PersistFormatError(
                                source, line_number, "%truncated needs one integer seq"
                            )
                        previous_seq = max(previous_seq, operands[0])
                    else:
                        open_seq = None  # torn directive prefix, e.g. "%bat"
                        poisoned = True
                    continue
                # record line
                if poisoned:
                    continue  # torn fragment's records
                if open_seq is None:
                    raise PersistFormatError(
                        source, line_number, "update record outside a %batch entry"
                    )
                if open_seq <= after:
                    continue  # covered by the snapshot; framing only
                try:
                    open_updates.append(update_from_fields(list(parse_record(line))))
                except ValueError:
                    open_seq = None  # torn mid-record
                    poisoned = True
        return result

    def last_seq(self) -> int:
        """Seq of the newest committed entry (0 for an empty/new log).

        A light line scan — no :class:`Delta` materialization — so
        periodic :meth:`~repro.persist.snapshot.SnapshotStore.save`
        calls stay cheap on long uncompacted logs.
        """
        last = 0
        pending: int | None = None
        if not self.path.exists():
            return last
        with open(self.path, "r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if line.startswith("%batch"):
                    # None on torn framing; entries() decides
                    pending = _directive_seq(line)
                elif line.startswith("%truncated"):
                    floor = _directive_seq(line)
                    if floor is not None:
                        last = max(last, floor)
                elif line.startswith("%commit") and pending is not None:
                    last = pending
                    pending = None
        return last

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def compact(
        self,
        after: int,
        *,
        lagging=(),
        label_of=None,
        graph_nodes=None,
    ) -> int:
        """Drop committed entries with ``seq <= after`` (they are covered
        by a snapshot); returns the number of entries kept.

        The compacted file opens with a ``%truncated <floor>`` marker so
        a fresh process reading the log still knows those seqs were used
        — without it, seq allocation could restart below the snapshot's
        ``last-seq`` stamp and newly journaled batches would be invisible
        to the next recovery.  Rewrites the file via a temp-and-rename so
        a crash mid-compaction leaves either the old or the new log,
        never a hybrid.

        **Relevance-aware retention** (``lagging``): a sequence of
        ``(cursor, filter)`` pairs, one per view whose snapshot replay
        cursor lags the snapshot's graph seq.  An entry with
        ``seq <= after`` is only dropped when every lagging pair with
        ``cursor < seq`` provably does not want it — ``filter`` is a
        :class:`~repro.engine.relevance.DeltaFilter` consulted per
        update (``None`` means the view broadcasts, so its entries are
        conservatively kept).  ``label_of`` resolves endpoint labels for
        the filters; without it no filter can be consulted, so every
        lagging window is conservatively retained.  Retained entries at
        or below the watermark are written *before* the ``%truncated``
        marker (readers fold a mid-file marker into their monotone
        floor), so the watermark itself never shrinks — dropping it
        below a committed seq would let a fresh process re-allocate that
        seq, and recovery would never apply the reused batch to the
        graph.

        **Net-cancellation** (``graph_nodes``): within the survivor
        window (``seq > after``), opposing update runs on the same edge
        collapse to their net effect — an edge inserted in one batch and
        deleted two batches later vanishes from both.  ``graph_nodes``
        is the set of nodes known to exist at the window start (for
        :meth:`repro.persist.SnapshotStore.compact_log`: the nodes of
        the snapshot's graph section); an insert is only cancelled when
        both endpoints are in it, because cancelling an insert that
        introduced a node would lose that node — edge deletion never
        removes endpoints, so the node survives in the live graph and
        must survive replay.  Emptied survivor entries keep their
        ``%batch``/``%commit`` frame: their seqs stay spoken for, so
        allocation and cursors never regress.  Pass ``graph_nodes=None``
        (the default) to skip cancellation entirely.
        """
        lagging = list(lagging)
        retained: list[LogEntry] = []
        if lagging:
            read_from = min([after] + [cursor for cursor, _ in lagging])
            for entry in self.entries(after=read_from):
                if entry.seq > after or self._wanted_by_lagging(
                    entry, lagging, label_of
                ):
                    retained.append(entry)
        else:
            retained = self.entries(after=after)
        if graph_nodes is not None:
            retained = _net_cancel_window(retained, after, graph_nodes)
        # The allocation watermark must never shrink: every seq <= after
        # was committed (whether or not a lagging view retains it), and a
        # previous compaction's floor may sit even higher.  Writing a
        # lower watermark would let a fresh process re-allocate a covered
        # seq, whose batch the next recovery would then never apply to
        # the graph (it reads as snapshot-covered) — silent data loss.
        watermark = max(after, self._scan_floor())
        low = [entry for entry in retained if entry.seq <= watermark]
        high = [entry for entry in retained if entry.seq > watermark]

        def write_entry(stream, entry: LogEntry) -> None:
            stream.write(render_directive("batch", entry.seq))
            for update in entry.delta:
                stream.write(update_to_line(update))
            stream.write(render_directive("commit"))

        temp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(temp, "w", encoding="utf-8") as stream:
            # retained lagging entries precede the watermark marker —
            # the reader folds a mid-file %truncated into its monotone
            # floor, so their (lower) seqs still parse cleanly.
            for entry in low:
                write_entry(stream, entry)
            stream.write(render_directive("truncated", watermark))
            for entry in high:
                write_entry(stream, entry)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temp, self.path)
        fsync_directory(self.path.parent)
        return len(retained)

    def _scan_floor(self) -> int:
        """Highest ``%truncated`` watermark already recorded in the file
        (0 when absent) — committed-and-dropped seqs must stay spoken
        for across repeated compactions."""
        floor = 0
        if not self.path.exists():
            return floor
        with open(self.path, "r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if line.startswith("%truncated"):
                    watermark = _directive_seq(line)
                    if watermark is not None:
                        floor = max(floor, watermark)
        return floor

    @staticmethod
    def _wanted_by_lagging(entry: LogEntry, lagging, label_of) -> bool:
        """Does any lagging view still need this snapshot-covered entry?"""
        for cursor, delta_filter in lagging:
            if cursor >= entry.seq:
                continue  # this view already absorbed the entry
            if delta_filter is None or (label_of is None and entry.delta):
                # broadcast view — or no label resolver to consult the
                # filter with: either way, conservatively retain (the
                # unsafe direction would be dropping an entry a lagging
                # view still needs).
                return True
            for update in entry.delta:
                if delta_filter.wants_update(
                    update, label_of(update.source), label_of(update.target)
                ):
                    return True
        return False
